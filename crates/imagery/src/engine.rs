//! Batched, runtime-dispatched SIMD transcode engine and the physical
//! representation lattice (paper §V-B, Definition 6).
//!
//! Every deployment scenario pays the transform pipeline per frame: CAMERA
//! transforms on the critical path, ARCHIVE transforms after each full-frame
//! decode, and ONGOING transcodes every ingested frame into the whole
//! configured representation set before it ever reaches a model. This module
//! gives that pipeline the same treatment the GEMM hot path got in
//! `tahoma_nn`: explicit `std::arch` kernels behind runtime feature
//! detection, precomputed per-shape tables, reusable scratch, and a plan
//! that shares work across the representations of one frame.
//!
//! # Separable resize with precomputed span tables
//!
//! The scalar `resize_bilinear` recomputes `fx`, `x0`, `x1`, `wx` for every
//! output pixel of every plane of every frame. Here each axis is planned
//! once per `(input, output)` shape ([`ResizePlan`], cached inside the
//! engine): per output column the two source indices and lerp weights, per
//! output row the two source rows and their weights. Execution is a
//! streaming two-pass sweep — source rows are horizontally resampled into a
//! two-row ring (each needed row exactly once; the vertical pass reads at
//! most `2 * out_h` distinct rows, so heavy downscales never touch most of
//! the input), then each output row is one vertical lerp of two cached
//! rows. Per output pixel the arithmetic is literally the scalar
//! reference's `top = p[y0][x0]*(1-wx) + p[y0][x1]*wx; out = top*(1-wy) +
//! bot*wy` chain, evaluated in the same order with plain IEEE mul/add (no
//! FMA contraction), so every kernel tier is **bitwise identical** to the
//! scalar reference.
//!
//! # Kernel tiers
//!
//! [`Kernel`] mirrors `tahoma_nn::gemm::Kernel`: `Auto` resolves through
//! `is_x86_feature_detected!` to AVX-512, AVX2, or the portable fallback.
//! The three per-frame sweeps are vectorized: the horizontal resize pass
//! (gathered loads through the span tables), the vertical pass + RGB→gray
//! luma reduction (contiguous), and `standardize`'s mean/variance/normalize
//! sweeps. The standardize reductions accumulate into **eight f64 lanes**
//! (element `i` into lane `i % 8`, fixed pairwise tree to finish) in every
//! tier, so SIMD and portable agree bitwise there too.
//!
//! # The representation lattice
//!
//! When one frame must be materialized into several representations —
//! ONGOING ingest, cascade levels, zoo training sets — the naive loop runs
//! the full `convert → resize` pipeline per representation from the RGB
//! frame. But the representations of §V-B form a lattice under "can be
//! derived from": every single-channel plane of the source is already the
//! full-resolution R/G/B representation (a borrow, not a copy), and one
//! full-resolution luma pass yields a gray plane every gray target can be
//! resized from. [`TranscodePlan`] encodes that sharing:
//!
//! * the shared luma plane is computed **once** per frame (the naive loop
//!   recomputes it for every gray target);
//! * R/G/B targets resize straight from the source's planes — the
//!   extraction copy disappears entirely;
//! * each target is then exactly one (possibly trivial) resize.
//!
//! Every planned output is **bitwise identical** to the direct
//! `Representation::apply` path, because the plan only reuses values the
//! direct path would compute with the same operations. Chained derivations
//! (e.g. 30x30-gray from 60x60-gray) were considered and rejected: the
//! streaming resize's cost scales with the *output* size, so a chained
//! source saves nothing over the full-size gray plane while introducing
//! resampling error and train/serve skew. The plan is priced with
//! [`TranscodeCosts`] (fed from `tahoma-costmodel`'s calibrated transform
//! constants via `TransformCostModel::transcode_costs`) and orders targets
//! cheapest-first, so planner-visible costs stay honest about the sharing.
//!
//! This is one of the four files sanctioned to contain raw-pointer
//! arithmetic; see `SAFETY.md` at the repository root for the unsafe
//! policy and the `checked-kernels` feature that asserts the span-table
//! bounds and gather indices here at runtime.

#![deny(unsafe_op_in_unsafe_fn)]

use crate::color::{ColorMode, LUMA_WEIGHTS};
use crate::error::ImageryError;
use crate::image::Image;
use crate::repr::Representation;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::HashMap;
use tahoma_mathx::checked;
use tahoma_mathx::simd_policy::{self, OpClass, SimdTier};

/// Kernel-tier selection. `Auto` (the default) resolves **per op class**
/// through the global [`tahoma_mathx::simd_policy`] table — each dispatcher
/// below looks up its own class (`resize-h-gather`, `resize-v`, `luma`,
/// `standardize`), falling back to `is_x86_feature_detected!` for untuned
/// `SimdTier::Auto` entries. The heuristic default pins the gathered
/// horizontal-resize pass to AVX2 (measurably ~25% faster than the AVX-512
/// gather on the parts profiled so far) while the contiguous sweeps keep
/// detection; a measured calibration (`tahoma_costmodel::kernels`) or the
/// `TAHOMA_KERNEL_POLICY` env override replaces those choices wholesale.
/// The explicit variants exist so the benches and property tests can pin a
/// tier. Forcing (or policy-selecting) a tier the running CPU does not
/// support resolves to detection instead (never to an illegal
/// instruction) — and since every tier is bitwise identical, any
/// resolution is equally correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Detect the best supported tier at call time.
    #[default]
    Auto,
    /// Plain scalar loops (any CPU) — the bitwise reference.
    Portable,
    /// Explicit AVX2 intrinsics (x86-64 with `avx2`).
    Avx2,
    /// Explicit AVX-512 intrinsics (x86-64 with `avx512f`).
    Avx512,
}

impl Kernel {
    /// The best tier the running CPU supports.
    pub fn detect() -> Kernel {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Kernel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return Kernel::Avx2;
            }
        }
        Kernel::Portable
    }

    /// Every tier the running CPU can execute, portable first (benches and
    /// property tests iterate this to compare tiers).
    pub fn available() -> Vec<Kernel> {
        let mut out = vec![Kernel::Portable];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                out.push(Kernel::Avx2);
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                out.push(Kernel::Avx512);
            }
        }
        out
    }

    /// Whether the running CPU can execute this tier (`Auto` trivially).
    fn supported(self) -> bool {
        match self {
            Kernel::Auto | Kernel::Portable => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Resolve `Auto` for one op class: look the class up in the global
    /// [`tahoma_mathx::simd_policy`] table, falling back to feature
    /// detection when the policy says `Auto` or names a tier this CPU
    /// cannot run. Explicitly requested tiers bypass the policy (demoted
    /// to detection only when unsupported).
    pub fn resolve_class(self, class: OpClass) -> Kernel {
        let requested = match self {
            Kernel::Auto => Kernel::from_tier(simd_policy::global_tier(class)),
            k => k,
        };
        match requested {
            Kernel::Auto => Kernel::detect(),
            k if k.supported() => k,
            _ => Kernel::detect(),
        }
    }

    /// The crate-local kernel for a policy tier.
    pub fn from_tier(tier: SimdTier) -> Kernel {
        match tier {
            SimdTier::Auto => Kernel::Auto,
            SimdTier::Portable => Kernel::Portable,
            SimdTier::Avx2 => Kernel::Avx2,
            SimdTier::Avx512 => Kernel::Avx512,
        }
    }

    /// This kernel's policy-tier name (inverse of [`Kernel::from_tier`]).
    pub fn tier(self) -> SimdTier {
        match self {
            Kernel::Auto => SimdTier::Auto,
            Kernel::Portable => SimdTier::Portable,
            Kernel::Avx2 => SimdTier::Avx2,
            Kernel::Avx512 => SimdTier::Avx512,
        }
    }

    /// Short stable name for bench labels.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Auto => "auto",
            Kernel::Portable => "portable",
            Kernel::Avx2 => "avx2",
            Kernel::Avx512 => "avx512",
        }
    }
}

/// One axis of a bilinear resize: per output coordinate, the two source
/// indices and their lerp weights, computed exactly as the scalar reference
/// does per pixel (`f = ((o + 0.5) * in/out - 0.5).max(0)`, floor, clamp).
#[derive(Debug, Clone)]
struct AxisPlan {
    /// Left/top source index per output coordinate (i32 so the SIMD
    /// gathers load the table directly).
    i0: Vec<i32>,
    /// Right/bottom source index (clamped to the last sample).
    i1: Vec<i32>,
    /// Weight of `i0` (`1 - frac`).
    w0: Vec<f32>,
    /// Weight of `i1` (`frac`).
    w1: Vec<f32>,
    /// Largest index in `i1` (bounds precondition for the gather kernels).
    max_index: usize,
}

impl AxisPlan {
    fn new(n_in: usize, n_out: usize) -> AxisPlan {
        let scale = n_in as f32 / n_out as f32;
        let mut plan = AxisPlan {
            i0: Vec::with_capacity(n_out),
            i1: Vec::with_capacity(n_out),
            w0: Vec::with_capacity(n_out),
            w1: Vec::with_capacity(n_out),
            max_index: 0,
        };
        for o in 0..n_out {
            let f = ((o as f32 + 0.5) * scale - 0.5).max(0.0);
            let a = (f as usize).min(n_in - 1);
            let b = (a + 1).min(n_in - 1);
            let w = f - a as f32;
            plan.i0.push(a as i32);
            plan.i1.push(b as i32);
            plan.w0.push(1.0 - w);
            plan.w1.push(w);
            plan.max_index = plan.max_index.max(b);
        }
        plan
    }
}

/// Precomputed separable bilinear resize tables for one `(in, out)` shape.
/// Built once and cached in the engine; reused across planes, frames, and
/// batches.
#[derive(Debug, Clone)]
pub struct ResizePlan {
    in_w: usize,
    in_h: usize,
    out_w: usize,
    out_h: usize,
    x: AxisPlan,
    y: AxisPlan,
}

impl ResizePlan {
    /// Build the per-axis span/weight tables.
    pub fn new(in_w: usize, in_h: usize, out_w: usize, out_h: usize) -> ResizePlan {
        assert!(in_w > 0 && in_h > 0 && out_w > 0 && out_h > 0);
        ResizePlan {
            in_w,
            in_h,
            out_w,
            out_h,
            x: AxisPlan::new(in_w, out_w),
            y: AxisPlan::new(in_h, out_h),
        }
    }

    /// Source and target shapes (`(in_w, in_h), (out_w, out_h)`) the plan
    /// was built for.
    pub fn shapes(&self) -> ((usize, usize), (usize, usize)) {
        ((self.in_w, self.in_h), (self.out_w, self.out_h))
    }

    /// Number of distinct source rows the streaming vertical pass touches —
    /// the quantity the honest resize pricing is based on.
    pub fn rows_touched(&self) -> usize {
        axis_rows_touched(&self.y)
    }
}

/// Distinct source rows a y-axis span table makes the streaming pass
/// resample. Shared by [`ResizePlan::rows_touched`] and the plan pricing
/// (which builds only the y-axis table — the x-axis is irrelevant to the
/// row count).
fn axis_rows_touched(y: &AxisPlan) -> usize {
    let mut rows = 0usize;
    let mut last: Option<(i32, i32)> = None;
    for oy in 0..y.i0.len() {
        let (a, b) = (y.i0[oy], y.i1[oy]);
        let prev = last.unwrap_or((-1, -1));
        if a != prev.0 && a != prev.1 {
            rows += 1;
        }
        if b != a && b != prev.1 {
            rows += 1;
        }
        last = Some((a, b));
    }
    rows
}

// ---------------------------------------------------------------------------
// Kernels. Every tier runs the same IEEE operations in the same order, so
// all tiers are bitwise identical (property-tested in `tests/proptests.rs`).
// ---------------------------------------------------------------------------

/// Horizontal resize pass: `dst[o] = src[i0[o]]*w0[o] + src[i1[o]]*w1[o]`.
/// Gathered loads — its own policy class (`resize-h-gather`), the one
/// where AVX-512 measured slower than AVX2.
fn hlerp(kernel: Kernel, src: &[f32], x: &AxisPlan, dst: &mut [f32]) {
    assert_eq!(dst.len(), x.i0.len());
    assert!(x.max_index < src.len(), "axis plan exceeds source row");
    // Audit mode verifies what the asserts above only imply: the three
    // sibling tables really cover `dst.len()` lanes, and every individual
    // gather index (not just the plan's recorded max) is inside `src`.
    if checked::active() {
        checked::span(x.i1.len(), 0, dst.len(), "hlerp i1 table");
        checked::span(x.w0.len(), 0, dst.len(), "hlerp w0 table");
        checked::span(x.w1.len(), 0, dst.len(), "hlerp w1 table");
        checked::gather(&x.i0, src.len(), "hlerp i0");
        checked::gather(&x.i1, src.len(), "hlerp i1");
    }
    match kernel.resolve_class(OpClass::ResizeHGather) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `kernel` was resolved through `Kernel::supported`, so the
        // required CPU features are present; slice preconditions asserted
        // above.
        Kernel::Avx2 => unsafe { x86::hlerp_avx2(src, &x.i0, &x.i1, &x.w0, &x.w1, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, avx512f runtime-detected.
        Kernel::Avx512 => unsafe { x86::hlerp_avx512(src, &x.i0, &x.i1, &x.w0, &x.w1, dst) },
        _ => {
            for o in 0..dst.len() {
                dst[o] = src[x.i0[o] as usize] * x.w0[o] + src[x.i1[o] as usize] * x.w1[o];
            }
        }
    }
}

/// Vertical resize pass: `dst[i] = top[i]*w0 + bot[i]*w1` (contiguous;
/// policy class `resize-v`).
fn vlerp(kernel: Kernel, top: &[f32], bot: &[f32], w0: f32, w1: f32, dst: &mut [f32]) {
    assert!(top.len() >= dst.len() && bot.len() >= dst.len());
    checked::span(top.len(), 0, dst.len(), "vlerp top row");
    checked::span(bot.len(), 0, dst.len(), "vlerp bottom row");
    match kernel.resolve_class(OpClass::ResizeV) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: features runtime-detected; lengths asserted above.
        Kernel::Avx2 => unsafe { x86::vlerp_avx2(top, bot, w0, w1, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Kernel::Avx512 => unsafe { x86::vlerp_avx512(top, bot, w0, w1, dst) },
        _ => {
            for i in 0..dst.len() {
                dst[i] = top[i] * w0 + bot[i] * w1;
            }
        }
    }
}

/// RGB→gray luma sweep: `dst[i] = (wr*r[i] + wg*g[i]) + wb*b[i]`, the exact
/// evaluation order of the scalar `convert_mode` (policy class `luma`).
fn luma(kernel: Kernel, r: &[f32], g: &[f32], b: &[f32], dst: &mut [f32]) {
    let n = dst.len();
    assert!(r.len() >= n && g.len() >= n && b.len() >= n);
    if checked::active() {
        checked::span(r.len(), 0, n, "luma red plane");
        checked::span(g.len(), 0, n, "luma green plane");
        checked::span(b.len(), 0, n, "luma blue plane");
    }
    let [wr, wg, wb] = LUMA_WEIGHTS;
    match kernel.resolve_class(OpClass::Luma) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: features runtime-detected; lengths asserted above.
        Kernel::Avx2 => unsafe { x86::luma_avx2(r, g, b, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Kernel::Avx512 => unsafe { x86::luma_avx512(r, g, b, dst) },
        _ => {
            for i in 0..n {
                dst[i] = wr * r[i] + wg * g[i] + wb * b[i];
            }
        }
    }
}

/// Number of f64 accumulator lanes in the standardize reductions. Fixed
/// across tiers (AVX-512 holds all 8 in one register, AVX2 in two, the
/// portable loop in an array) so every tier produces bitwise-identical
/// sums.
const RED_LANES: usize = 8;

/// Fixed pairwise reduction tree over the 8 lanes — identical in every
/// tier, so the final scalar is too.
fn fold_lanes(acc: [f64; RED_LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Lane-strided sum: element `i` accumulates into lane `i % 8` in f64
/// (policy class `standardize`, with the other two standardize sweeps).
fn sum_lanes(kernel: Kernel, data: &[f32]) -> [f64; RED_LANES] {
    checked::aligned(data.as_ptr(), "standardize sum input");
    let mut acc = [0.0f64; RED_LANES];
    let chunks = data.chunks_exact(RED_LANES);
    let tail = chunks.remainder();
    match kernel.resolve_class(OpClass::Standardize) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: features runtime-detected.
        Kernel::Avx2 => unsafe { x86::sum_lanes_avx2(data, &mut acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Kernel::Avx512 => unsafe { x86::sum_lanes_avx512(data, &mut acc) },
        _ => {
            for c in chunks {
                for j in 0..RED_LANES {
                    acc[j] += c[j] as f64;
                }
            }
        }
    }
    for (j, &v) in tail.iter().enumerate() {
        acc[j] += v as f64;
    }
    acc
}

/// Lane-strided sum of squared deviations from `mean`, f64.
fn sq_dev_lanes(kernel: Kernel, data: &[f32], mean: f64) -> [f64; RED_LANES] {
    checked::aligned(data.as_ptr(), "standardize sq-dev input");
    let mut acc = [0.0f64; RED_LANES];
    let chunks = data.chunks_exact(RED_LANES);
    let tail = chunks.remainder();
    match kernel.resolve_class(OpClass::Standardize) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: features runtime-detected.
        Kernel::Avx2 => unsafe { x86::sq_dev_lanes_avx2(data, mean, &mut acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Kernel::Avx512 => unsafe { x86::sq_dev_lanes_avx512(data, mean, &mut acc) },
        _ => {
            for c in chunks {
                for j in 0..RED_LANES {
                    let d = c[j] as f64 - mean;
                    acc[j] += d * d;
                }
            }
        }
    }
    for (j, &v) in tail.iter().enumerate() {
        let d = v as f64 - mean;
        acc[j] += d * d;
    }
    acc
}

/// Normalize sweep: `dst[i] = (src[i] - mean) * inv` in f32 (policy class
/// `standardize`).
fn scale_shift(kernel: Kernel, src: &[f32], mean: f32, inv: f32, dst: &mut [f32]) {
    assert!(src.len() >= dst.len());
    checked::span(src.len(), 0, dst.len(), "scale-shift source");
    match kernel.resolve_class(OpClass::Standardize) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: features runtime-detected; length asserted above.
        Kernel::Avx2 => unsafe { x86::scale_shift_avx2(src, mean, inv, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Kernel::Avx512 => unsafe { x86::scale_shift_avx512(src, mean, inv, dst) },
        _ => {
            for i in 0..dst.len() {
                dst[i] = (src[i] - mean) * inv;
            }
        }
    }
}

/// Explicit `std::arch` kernels. Each function carries the
/// `#[target_feature]` set its caller must have runtime-detected (that is
/// the entire unsafety of calling them); inside, the only unsafe operations
/// are raw-pointer vector loads/stores and gathers whose bounds the safe
/// dispatchers assert on entry. Main loops cover `len - len % LANES`
/// elements; tails run the identical scalar expression.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{LUMA_WEIGHTS, RED_LANES};
    use core::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub(super) fn hlerp_avx2(
        src: &[f32],
        i0: &[i32],
        i1: &[i32],
        w0: &[f32],
        w1: &[f32],
        dst: &mut [f32],
    ) {
        let n = dst.len();
        let main = n - n % 8;
        let sp = src.as_ptr();
        let mut o = 0;
        while o < main {
            // SAFETY: o + 8 <= n == table lengths (asserted by the
            // dispatcher), and every gathered index is <= max_index <
            // src.len().
            unsafe {
                let idx0 = _mm256_loadu_si256(i0.as_ptr().add(o) as *const __m256i);
                let idx1 = _mm256_loadu_si256(i1.as_ptr().add(o) as *const __m256i);
                let g0 = _mm256_i32gather_ps::<4>(sp, idx0);
                let g1 = _mm256_i32gather_ps::<4>(sp, idx1);
                let vw0 = _mm256_loadu_ps(w0.as_ptr().add(o));
                let vw1 = _mm256_loadu_ps(w1.as_ptr().add(o));
                let v = _mm256_add_ps(_mm256_mul_ps(g0, vw0), _mm256_mul_ps(g1, vw1));
                _mm256_storeu_ps(dst.as_mut_ptr().add(o), v);
            }
            o += 8;
        }
        for j in main..n {
            dst[j] = src[i0[j] as usize] * w0[j] + src[i1[j] as usize] * w1[j];
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) fn hlerp_avx512(
        src: &[f32],
        i0: &[i32],
        i1: &[i32],
        w0: &[f32],
        w1: &[f32],
        dst: &mut [f32],
    ) {
        let n = dst.len();
        let main = n - n % 16;
        let sp = src.as_ptr();
        let mut o = 0;
        while o < main {
            // SAFETY: o + 16 <= n == table lengths (asserted by the
            // dispatcher); gathered indices bounded by max_index.
            unsafe {
                let idx0 = _mm512_loadu_epi32(i0.as_ptr().add(o));
                let idx1 = _mm512_loadu_epi32(i1.as_ptr().add(o));
                let g0 = _mm512_i32gather_ps::<4>(idx0, sp);
                let g1 = _mm512_i32gather_ps::<4>(idx1, sp);
                let vw0 = _mm512_loadu_ps(w0.as_ptr().add(o));
                let vw1 = _mm512_loadu_ps(w1.as_ptr().add(o));
                let v = _mm512_add_ps(_mm512_mul_ps(g0, vw0), _mm512_mul_ps(g1, vw1));
                _mm512_storeu_ps(dst.as_mut_ptr().add(o), v);
            }
            o += 16;
        }
        for j in main..n {
            dst[j] = src[i0[j] as usize] * w0[j] + src[i1[j] as usize] * w1[j];
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn vlerp_avx2(top: &[f32], bot: &[f32], w0: f32, w1: f32, dst: &mut [f32]) {
        let n = dst.len();
        let main = n - n % 8;
        let (vw0, vw1) = (_mm256_set1_ps(w0), _mm256_set1_ps(w1));
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= n <= top.len(), bot.len() (asserted by the
            // dispatcher).
            unsafe {
                let t = _mm256_loadu_ps(top.as_ptr().add(i));
                let b = _mm256_loadu_ps(bot.as_ptr().add(i));
                let v = _mm256_add_ps(_mm256_mul_ps(t, vw0), _mm256_mul_ps(b, vw1));
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), v);
            }
            i += 8;
        }
        for j in main..n {
            dst[j] = top[j] * w0 + bot[j] * w1;
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) fn vlerp_avx512(top: &[f32], bot: &[f32], w0: f32, w1: f32, dst: &mut [f32]) {
        let n = dst.len();
        let main = n - n % 16;
        let (vw0, vw1) = (_mm512_set1_ps(w0), _mm512_set1_ps(w1));
        let mut i = 0;
        while i < main {
            // SAFETY: i + 16 <= n <= top.len(), bot.len() (asserted by the
            // dispatcher).
            unsafe {
                let t = _mm512_loadu_ps(top.as_ptr().add(i));
                let b = _mm512_loadu_ps(bot.as_ptr().add(i));
                let v = _mm512_add_ps(_mm512_mul_ps(t, vw0), _mm512_mul_ps(b, vw1));
                _mm512_storeu_ps(dst.as_mut_ptr().add(i), v);
            }
            i += 16;
        }
        for j in main..n {
            dst[j] = top[j] * w0 + bot[j] * w1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn luma_avx2(r: &[f32], g: &[f32], b: &[f32], dst: &mut [f32]) {
        let n = dst.len();
        let main = n - n % 8;
        let [wr, wg, wb] = LUMA_WEIGHTS;
        let (vr, vg, vb) = (_mm256_set1_ps(wr), _mm256_set1_ps(wg), _mm256_set1_ps(wb));
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= n <= r/g/b.len() (asserted by the
            // dispatcher).
            unsafe {
                let pr = _mm256_mul_ps(vr, _mm256_loadu_ps(r.as_ptr().add(i)));
                let pg = _mm256_mul_ps(vg, _mm256_loadu_ps(g.as_ptr().add(i)));
                let pb = _mm256_mul_ps(vb, _mm256_loadu_ps(b.as_ptr().add(i)));
                let v = _mm256_add_ps(_mm256_add_ps(pr, pg), pb);
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), v);
            }
            i += 8;
        }
        for j in main..n {
            dst[j] = wr * r[j] + wg * g[j] + wb * b[j];
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) fn luma_avx512(r: &[f32], g: &[f32], b: &[f32], dst: &mut [f32]) {
        let n = dst.len();
        let main = n - n % 16;
        let [wr, wg, wb] = LUMA_WEIGHTS;
        let (vr, vg, vb) = (_mm512_set1_ps(wr), _mm512_set1_ps(wg), _mm512_set1_ps(wb));
        let mut i = 0;
        while i < main {
            // SAFETY: i + 16 <= n <= r/g/b.len() (asserted by the
            // dispatcher).
            unsafe {
                let pr = _mm512_mul_ps(vr, _mm512_loadu_ps(r.as_ptr().add(i)));
                let pg = _mm512_mul_ps(vg, _mm512_loadu_ps(g.as_ptr().add(i)));
                let pb = _mm512_mul_ps(vb, _mm512_loadu_ps(b.as_ptr().add(i)));
                let v = _mm512_add_ps(_mm512_add_ps(pr, pg), pb);
                _mm512_storeu_ps(dst.as_mut_ptr().add(i), v);
            }
            i += 16;
        }
        for j in main..n {
            dst[j] = wr * r[j] + wg * g[j] + wb * b[j];
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn sum_lanes_avx2(data: &[f32], acc: &mut [f64; RED_LANES]) {
        let main = data.len() - data.len() % RED_LANES;
        // Lanes 0..4 in one ymm of f64, lanes 4..8 in another — the same
        // per-lane add sequence as the portable loop.
        let mut lo = _mm256_setzero_pd();
        let mut hi = _mm256_setzero_pd();
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= main <= data.len().
            unsafe {
                let p = data.as_ptr().add(i);
                lo = _mm256_add_pd(lo, _mm256_cvtps_pd(_mm_loadu_ps(p)));
                hi = _mm256_add_pd(hi, _mm256_cvtps_pd(_mm_loadu_ps(p.add(4))));
            }
            i += RED_LANES;
        }
        let mut lanes = [0.0f64; RED_LANES];
        // SAFETY: the two halves of `lanes` are 4 f64 each.
        unsafe {
            _mm256_storeu_pd(lanes.as_mut_ptr(), lo);
            _mm256_storeu_pd(lanes.as_mut_ptr().add(4), hi);
        }
        for (a, l) in acc.iter_mut().zip(lanes) {
            *a += l;
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) fn sum_lanes_avx512(data: &[f32], acc: &mut [f64; RED_LANES]) {
        let main = data.len() - data.len() % RED_LANES;
        let mut v = _mm512_setzero_pd();
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= main <= data.len().
            unsafe {
                v = _mm512_add_pd(v, _mm512_cvtps_pd(_mm256_loadu_ps(data.as_ptr().add(i))));
            }
            i += RED_LANES;
        }
        let mut lanes = [0.0f64; RED_LANES];
        // SAFETY: `lanes` holds 8 f64.
        unsafe { _mm512_storeu_pd(lanes.as_mut_ptr(), v) };
        for (a, l) in acc.iter_mut().zip(lanes) {
            *a += l;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn sq_dev_lanes_avx2(data: &[f32], mean: f64, acc: &mut [f64; RED_LANES]) {
        let main = data.len() - data.len() % RED_LANES;
        let m = _mm256_set1_pd(mean);
        let mut lo = _mm256_setzero_pd();
        let mut hi = _mm256_setzero_pd();
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= main <= data.len().
            unsafe {
                let p = data.as_ptr().add(i);
                let d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(p)), m);
                let d1 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(p.add(4))), m);
                lo = _mm256_add_pd(lo, _mm256_mul_pd(d0, d0));
                hi = _mm256_add_pd(hi, _mm256_mul_pd(d1, d1));
            }
            i += RED_LANES;
        }
        let mut lanes = [0.0f64; RED_LANES];
        // SAFETY: the two halves of `lanes` are 4 f64 each.
        unsafe {
            _mm256_storeu_pd(lanes.as_mut_ptr(), lo);
            _mm256_storeu_pd(lanes.as_mut_ptr().add(4), hi);
        }
        for (a, l) in acc.iter_mut().zip(lanes) {
            *a += l;
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) fn sq_dev_lanes_avx512(data: &[f32], mean: f64, acc: &mut [f64; RED_LANES]) {
        let main = data.len() - data.len() % RED_LANES;
        let m = _mm512_set1_pd(mean);
        let mut v = _mm512_setzero_pd();
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= main <= data.len().
            unsafe {
                let d = _mm512_sub_pd(_mm512_cvtps_pd(_mm256_loadu_ps(data.as_ptr().add(i))), m);
                v = _mm512_add_pd(v, _mm512_mul_pd(d, d));
            }
            i += RED_LANES;
        }
        let mut lanes = [0.0f64; RED_LANES];
        // SAFETY: `lanes` holds 8 f64.
        unsafe { _mm512_storeu_pd(lanes.as_mut_ptr(), v) };
        for (a, l) in acc.iter_mut().zip(lanes) {
            *a += l;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn scale_shift_avx2(src: &[f32], mean: f32, inv: f32, dst: &mut [f32]) {
        let n = dst.len();
        let main = n - n % 8;
        let (vm, vi) = (_mm256_set1_ps(mean), _mm256_set1_ps(inv));
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= n <= src.len() (asserted by the dispatcher).
            unsafe {
                let v = _mm256_loadu_ps(src.as_ptr().add(i));
                let out = _mm256_mul_ps(_mm256_sub_ps(v, vm), vi);
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), out);
            }
            i += 8;
        }
        for j in main..n {
            dst[j] = (src[j] - mean) * inv;
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) fn scale_shift_avx512(src: &[f32], mean: f32, inv: f32, dst: &mut [f32]) {
        let n = dst.len();
        let main = n - n % 16;
        let (vm, vi) = (_mm512_set1_ps(mean), _mm512_set1_ps(inv));
        let mut i = 0;
        while i < main {
            // SAFETY: i + 16 <= n <= src.len() (asserted by the
            // dispatcher).
            unsafe {
                let v = _mm512_loadu_ps(src.as_ptr().add(i));
                let out = _mm512_mul_ps(_mm512_sub_ps(v, vm), vi);
                _mm512_storeu_ps(dst.as_mut_ptr().add(i), out);
            }
            i += 16;
        }
        for j in main..n {
            dst[j] = (src[j] - mean) * inv;
        }
    }
}

// ---------------------------------------------------------------------------
// Transcode plan: the exact representation lattice.
// ---------------------------------------------------------------------------

/// Per-unit transform costs used to price a [`TranscodePlan`]. The defaults
/// mirror `tahoma-costmodel`'s calibrated constants; when planning on
/// behalf of the cost model, build this through
/// `TransformCostModel::transcode_costs()` so the two stay in sync (a
/// costmodel test pins the defaults against the calibration constants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranscodeCosts {
    /// Fixed overhead per materialized target, seconds.
    pub op_overhead_s: f64,
    /// Per-pixel cost of a plane copy (same-size extraction), seconds.
    pub extract_s_per_pixel: f64,
    /// Per-source-pixel cost of the shared luma sweep, seconds.
    pub gray_s_per_pixel: f64,
    /// Per-gathered-input-sample cost of the resize read path, seconds.
    pub resize_s_per_in_sample: f64,
    /// Per-output-sample cost of the resize write path, seconds.
    pub resize_s_per_out_sample: f64,
}

impl Default for TranscodeCosts {
    fn default() -> Self {
        // Mirrors tahoma_costmodel::calibration — pinned by a test there.
        TranscodeCosts {
            op_overhead_s: 15e-6,
            extract_s_per_pixel: 2.5e-9,
            gray_s_per_pixel: 8e-9,
            resize_s_per_in_sample: 8e-9,
            resize_s_per_out_sample: 4e-9,
        }
    }
}

/// How one target representation is produced from the source frame under
/// the lattice plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranscodeStep {
    /// Full-size RGB: clone of the source frame.
    Identity,
    /// Same-size single channel: one plane copy (channel index, or the
    /// shared luma plane for gray).
    CopyPlane,
    /// Resize from the source's own plane(s) or the shared luma plane.
    Resize,
}

/// A cheapest-source materialization plan for one representation set from
/// one source shape. See the module docs for the lattice; every planned
/// output is bitwise identical to the direct per-representation path.
#[derive(Debug, Clone)]
pub struct TranscodePlan {
    source_w: usize,
    source_h: usize,
    reps: Vec<Representation>,
    /// Execution order: indices into `reps`, cheapest target first
    /// (deterministic; ties broken by the representation's `Ord`).
    order: Vec<usize>,
    /// Whether the shared full-size luma plane is materialized.
    share_luma: bool,
    steps: Vec<TranscodeStep>,
    per_rep_cost_s: Vec<f64>,
    luma_cost_s: f64,
    costs: TranscodeCosts,
}

impl TranscodePlan {
    /// Plan materializing `reps` from a `source_w x source_h` RGB frame.
    pub fn new(
        source_w: usize,
        source_h: usize,
        reps: &[Representation],
        costs: &TranscodeCosts,
    ) -> TranscodePlan {
        assert!(source_w > 0 && source_h > 0);
        let share_luma = reps.iter().any(|r| r.mode == ColorMode::Gray);
        let src_px = (source_w * source_h) as f64;
        let mut steps = Vec::with_capacity(reps.len());
        let mut per_rep_cost_s = Vec::with_capacity(reps.len());
        for rep in reps {
            let same_size = rep.size == source_w && rep.size == source_h;
            let out_px = (rep.size * rep.size) as f64;
            let (step, cost) = if same_size && rep.mode == ColorMode::Rgb {
                // Clone of the already-materialized frame; priced 0 to stay
                // consistent with `TransformCostModel::transform_time`.
                (TranscodeStep::Identity, 0.0)
            } else if same_size {
                // Gray's full-size plane is written once by the shared luma
                // sweep (priced below) directly into the target's buffer;
                // R/G/B pay one plane copy.
                let copy = if rep.mode == ColorMode::Gray {
                    0.0
                } else {
                    costs.extract_s_per_pixel * out_px
                };
                (TranscodeStep::CopyPlane, costs.op_overhead_s + copy)
            } else {
                let ch = rep.mode.channels() as f64;
                // The streaming H-pass gathers 2 source samples per output
                // column of each touched row; the V-pass writes out_px.
                // Only the y-axis table is needed to count touched rows.
                let rows = axis_rows_touched(&AxisPlan::new(source_h, rep.size));
                let in_samples = (rows * 2 * rep.size) as f64;
                (
                    TranscodeStep::Resize,
                    costs.op_overhead_s
                        + ch * (costs.resize_s_per_in_sample * in_samples
                            + costs.resize_s_per_out_sample * out_px),
                )
            };
            steps.push(step);
            per_rep_cost_s.push(cost);
        }
        let luma_cost_s = if share_luma {
            costs.gray_s_per_pixel * src_px
        } else {
            0.0
        };
        let mut order: Vec<usize> = (0..reps.len()).collect();
        order.sort_by(|&a, &b| {
            per_rep_cost_s[a]
                .total_cmp(&per_rep_cost_s[b])
                .then_with(|| reps[a].cmp(&reps[b]))
        });
        TranscodePlan {
            source_w,
            source_h,
            reps: reps.to_vec(),
            order,
            share_luma,
            steps,
            per_rep_cost_s,
            luma_cost_s,
            costs: *costs,
        }
    }

    /// The targets, in the order they were given (the order
    /// [`TranscodeEngine::apply_planned`] returns them in).
    pub fn reps(&self) -> &[Representation] {
        &self.reps
    }

    /// Cheapest-first execution order (indices into [`TranscodePlan::reps`]).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Whether the plan materializes the shared full-size luma plane.
    pub fn shares_luma(&self) -> bool {
        self.share_luma
    }

    /// How each target (by input index) is produced.
    pub fn steps(&self) -> &[TranscodeStep] {
        &self.steps
    }

    /// Source shape the plan was built for.
    pub fn source_shape(&self) -> (usize, usize) {
        (self.source_w, self.source_h)
    }

    /// Total planned seconds: the shared luma sweep plus every per-target
    /// step.
    pub fn planned_cost_s(&self) -> f64 {
        self.luma_cost_s + self.per_rep_cost_s.iter().sum::<f64>()
    }

    /// What the naive loop would pay: every target materialized
    /// independently from the full RGB frame with the seed pipeline (color
    /// pass over the whole source, then an all-rows resize).
    pub fn direct_cost_s(&self) -> f64 {
        let src_px = (self.source_w * self.source_h) as f64;
        let c = &self.costs;
        self.reps
            .iter()
            .map(|rep| {
                if rep.size == self.source_w
                    && rep.size == self.source_h
                    && rep.mode == ColorMode::Rgb
                {
                    return 0.0;
                }
                let mut t = c.op_overhead_s;
                match rep.mode {
                    ColorMode::Rgb => {}
                    ColorMode::Gray => t += c.gray_s_per_pixel * src_px,
                    _ => t += c.extract_s_per_pixel * src_px,
                }
                if rep.size != self.source_w || rep.size != self.source_h {
                    let ch = rep.mode.channels() as f64;
                    let out_px = (rep.size * rep.size) as f64;
                    t += ch
                        * (c.resize_s_per_in_sample * src_px + c.resize_s_per_out_sample * out_px);
                }
                t
            })
            .sum()
    }
}

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

/// Two-row ring for the streaming separable resize: holds the last two
/// horizontally resampled source rows, keyed by source row index.
#[derive(Debug, Default)]
struct RowCache {
    top: Vec<f32>,
    bot: Vec<f32>,
    top_idx: i64,
    bot_idx: i64,
}

/// Upper bound on pooled output buffers (see
/// [`TranscodeEngine::recycle`]) — enough for a whole `paper_set`
/// materialization plus slack, small enough that a shape change cannot
/// strand unbounded memory.
const POOL_CAP: usize = 64;

/// Reusable transcode state: kernel selection, cached [`ResizePlan`]s, the
/// streaming-row scratch, the shared luma plane, and a pool of recycled
/// output buffers. Keep one per call site (or use [`with_local_engine`])
/// so plans, scratch, and buffers amortize across frames and batches.
#[derive(Debug)]
pub struct TranscodeEngine {
    kernel: Kernel,
    plans: HashMap<(usize, usize, usize, usize), ResizePlan>,
    rows: RowCache,
    luma_plane: Vec<f32>,
    /// Recycled output buffers keyed by exact length. Large materialized
    /// images churn the allocator hard (every buffer past the malloc mmap
    /// threshold is a fresh kernel mapping); consumers that drop their
    /// outputs per frame hand them back via [`TranscodeEngine::recycle`]
    /// and steady-state transcoding allocates nothing.
    pool: HashMap<usize, Vec<Vec<f32>>>,
    pooled: usize,
    /// Reusable byte scratch for the store's positioned-read (pread) fetch
    /// path, so persistent-tier fetches stay allocation-free in steady
    /// state just like the pixel pool above.
    io_buf: Vec<u8>,
}

impl Default for TranscodeEngine {
    fn default() -> Self {
        TranscodeEngine::new()
    }
}

impl TranscodeEngine {
    /// Engine with runtime kernel detection.
    pub fn new() -> TranscodeEngine {
        TranscodeEngine::with_kernel(Kernel::Auto)
    }

    /// Engine pinned to one kernel tier (benches, property tests).
    pub fn with_kernel(kernel: Kernel) -> TranscodeEngine {
        TranscodeEngine {
            kernel,
            plans: HashMap::new(),
            rows: RowCache::default(),
            luma_plane: Vec::new(),
            pool: HashMap::new(),
            pooled: 0,
            io_buf: Vec::new(),
        }
    }

    /// The configured kernel tier (possibly `Auto`).
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Hand back materialized images whose pixels are no longer needed so
    /// their buffers feed the next transcode instead of the allocator.
    /// Purely an optimization — recycling nothing is always correct; every
    /// output is fully overwritten before it is handed out again.
    pub fn recycle(&mut self, images: impl IntoIterator<Item = Image>) {
        for img in images {
            if self.pooled >= POOL_CAP {
                return;
            }
            self.recycle_buffer(img.into_data());
        }
    }

    /// Return a bare buffer to the pool — the counterpart of
    /// [`TranscodeEngine::take_buffer`] for callers that peeled the pixels
    /// out of an [`Image`] themselves (e.g. a scorer's per-item input
    /// cache handing its standardized buffers back at cascade end).
    pub fn recycle_buffer(&mut self, data: Vec<f32>) {
        if self.pooled >= POOL_CAP {
            return;
        }
        self.pool.entry(data.len()).or_default().push(data);
        self.pooled += 1;
    }

    /// Borrow the engine's byte scratch for a positioned read (the
    /// persistent store's pread fetch path). Pair with
    /// [`TranscodeEngine::put_io_buf`] so its capacity amortizes.
    pub(crate) fn take_io_buf(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.io_buf)
    }

    /// Return the byte scratch taken by [`TranscodeEngine::take_io_buf`].
    pub(crate) fn put_io_buf(&mut self, buf: Vec<u8>) {
        if buf.capacity() > self.io_buf.capacity() {
            self.io_buf = buf;
        }
    }

    /// A pooled length-`n` buffer for callers that fill outputs themselves
    /// — the representation store's pooled decode path
    /// (`RepresentationStore::fetch_into`) borrows its buffers here.
    /// Contents are stale; overwrite (or clear-and-refill) all `n`
    /// elements before use.
    pub fn take_buffer(&mut self, n: usize) -> Vec<f32> {
        Self::out_buf(&mut self.pool, &mut self.pooled, n)
    }

    /// A length-`n` output buffer: recycled when one of exactly this length
    /// is pooled (content is stale — every caller overwrites all `n`
    /// elements), freshly zeroed otherwise.
    fn out_buf(pool: &mut HashMap<usize, Vec<Vec<f32>>>, pooled: &mut usize, n: usize) -> Vec<f32> {
        if let Some(buf) = pool.get_mut(&n).and_then(|q| q.pop()) {
            *pooled -= 1;
            return buf;
        }
        vec![0.0f32; n]
    }

    /// Resize one plane through the cached plan for this shape.
    #[allow(clippy::too_many_arguments)]
    fn resize_plane(
        kernel: Kernel,
        plans: &mut HashMap<(usize, usize, usize, usize), ResizePlan>,
        rows: &mut RowCache,
        src: &[f32],
        in_w: usize,
        in_h: usize,
        out_w: usize,
        out_h: usize,
        dst: &mut [f32],
    ) {
        debug_assert_eq!(src.len(), in_w * in_h);
        debug_assert_eq!(dst.len(), out_w * out_h);
        let plan = plans
            .entry((in_w, in_h, out_w, out_h))
            .or_insert_with(|| ResizePlan::new(in_w, in_h, out_w, out_h));
        rows.top.resize(out_w, 0.0);
        rows.bot.resize(out_w, 0.0);
        // Invalidate: cached rows belong to whatever plane was resized last.
        rows.top_idx = -1;
        rows.bot_idx = -1;
        for oy in 0..out_h {
            let y0 = plan.y.i0[oy] as i64;
            let y1 = plan.y.i1[oy] as i64;
            // Ensure `top` holds row y0 (y0 is non-decreasing, so a needed
            // row is either cached or new — never evicted-then-needed).
            if rows.top_idx != y0 {
                if rows.bot_idx == y0 {
                    std::mem::swap(&mut rows.top, &mut rows.bot);
                    std::mem::swap(&mut rows.top_idx, &mut rows.bot_idx);
                } else {
                    let r = y0 as usize;
                    hlerp(
                        kernel,
                        &src[r * in_w..(r + 1) * in_w],
                        &plan.x,
                        &mut rows.top,
                    );
                    rows.top_idx = y0;
                }
            }
            if y1 != y0 && rows.bot_idx != y1 {
                let r = y1 as usize;
                hlerp(
                    kernel,
                    &src[r * in_w..(r + 1) * in_w],
                    &plan.x,
                    &mut rows.bot,
                );
                rows.bot_idx = y1;
            }
            let dst_row = &mut dst[oy * out_w..(oy + 1) * out_w];
            let (w0, w1) = (plan.y.w0[oy], plan.y.w1[oy]);
            let bot = if y1 == y0 { &rows.top } else { &rows.bot };
            vlerp(kernel, &rows.top, bot, w0, w1, dst_row);
        }
    }

    /// Bilinear resize to `(out_w, out_h)` — the engine-backed counterpart
    /// of `transform::resize_bilinear`, bitwise identical to the scalar
    /// reference on every kernel tier.
    pub fn resize_bilinear(
        &mut self,
        src: &Image,
        out_w: usize,
        out_h: usize,
    ) -> Result<Image, ImageryError> {
        if out_w == 0 || out_h == 0 {
            return Err(ImageryError::InvalidDimensions {
                width: out_w,
                height: out_h,
            });
        }
        let kernel = self.kernel;
        let (in_w, in_h) = (src.width(), src.height());
        let n = out_w * out_h;
        let mut data = Self::out_buf(&mut self.pool, &mut self.pooled, n * src.channels());
        for c in 0..src.channels() {
            Self::resize_plane(
                kernel,
                &mut self.plans,
                &mut self.rows,
                src.plane(c),
                in_w,
                in_h,
                out_w,
                out_h,
                &mut data[c * n..(c + 1) * n],
            );
        }
        Image::from_planar(out_w, out_h, src.mode(), data)
    }

    /// Compute the luma plane of an RGB image into the shared scratch,
    /// returning its length.
    fn fill_luma(&mut self, src: &Image) -> usize {
        let n = src.width() * src.height();
        self.luma_plane.resize(n, 0.0);
        luma(
            self.kernel,
            src.plane(0),
            src.plane(1),
            src.plane(2),
            &mut self.luma_plane,
        );
        n
    }

    /// Engine-backed color conversion with the same defined conversions as
    /// `transform::convert_mode`. The identity conversion borrows the
    /// source instead of cloning it.
    pub fn convert_mode<'a>(
        &mut self,
        src: &'a Image,
        target: ColorMode,
    ) -> Result<Cow<'a, Image>, ImageryError> {
        if src.mode() == target {
            return Ok(Cow::Borrowed(src));
        }
        let (w, h) = (src.width(), src.height());
        match (src.mode(), target) {
            (ColorMode::Rgb, t) => {
                if let Some(c) = t.source_channel() {
                    let mut buf = Self::out_buf(&mut self.pool, &mut self.pooled, w * h);
                    buf.copy_from_slice(src.plane(c));
                    return Ok(Cow::Owned(Image::from_planar(w, h, t, buf)?));
                }
                let mut buf = Self::out_buf(&mut self.pool, &mut self.pooled, w * h);
                luma(
                    self.kernel,
                    src.plane(0),
                    src.plane(1),
                    src.plane(2),
                    &mut buf,
                );
                Ok(Cow::Owned(Image::from_planar(w, h, ColorMode::Gray, buf)?))
            }
            (from, ColorMode::Gray) if from.channels() == 1 => {
                let mut buf = Self::out_buf(&mut self.pool, &mut self.pooled, w * h);
                buf.copy_from_slice(src.data());
                Ok(Cow::Owned(Image::from_planar(w, h, ColorMode::Gray, buf)?))
            }
            (from, to) => Err(ImageryError::UnsupportedConversion {
                from: from.tag(),
                to: to.tag(),
            }),
        }
    }

    /// Standardize to zero mean / unit variance per image. All kernel tiers
    /// use the eight-lane f64 reduction (see module docs) and agree
    /// bitwise; results can differ from a naive sequential sum by float
    /// reassociation only.
    pub fn standardize(&mut self, src: &Image) -> Image {
        let kernel = self.kernel;
        let data = src.data();
        let n = data.len() as f64;
        let mean = fold_lanes(sum_lanes(kernel, data)) / n;
        let var = fold_lanes(sq_dev_lanes(kernel, data, mean)) / n;
        let sd = var.sqrt();
        let inv = if sd > 1e-6 { 1.0 / sd } else { 0.0 };
        let (mean, inv) = (mean as f32, inv as f32);
        let mut out = Self::out_buf(&mut self.pool, &mut self.pooled, data.len());
        scale_shift(kernel, data, mean, inv, &mut out);
        Image::from_planar(src.width(), src.height(), src.mode(), out)
            .expect("same shape as source")
    }

    /// Grayscale thumbnail of any image as a flat `side x side` buffer —
    /// the difference-detector front end (`tahoma-video`) runs this per
    /// real frame.
    pub fn luma_thumbnail(&mut self, src: &Image, side: usize) -> Result<Vec<f32>, ImageryError> {
        if side == 0 {
            return Err(ImageryError::InvalidDimensions {
                width: side,
                height: side,
            });
        }
        let kernel = self.kernel;
        let (w, h) = (src.width(), src.height());
        let mut out = Self::out_buf(&mut self.pool, &mut self.pooled, side * side);
        if src.mode() == ColorMode::Rgb {
            let n = self.fill_luma(src);
            debug_assert_eq!(n, w * h);
            Self::resize_plane(
                kernel,
                &mut self.plans,
                &mut self.rows,
                &self.luma_plane,
                w,
                h,
                side,
                side,
                &mut out,
            );
        } else {
            Self::resize_plane(
                kernel,
                &mut self.plans,
                &mut self.rows,
                src.plane(0),
                w,
                h,
                side,
                side,
                &mut out,
            );
        }
        Ok(out)
    }

    /// Materialize one representation from a full RGB frame — the
    /// engine-backed counterpart of `Representation::apply`, bitwise
    /// identical to it on every kernel tier.
    pub fn apply(&mut self, full: &Image, rep: Representation) -> Result<Image, ImageryError> {
        if full.mode() != ColorMode::Rgb {
            return Err(ImageryError::NotRgbSource);
        }
        let kernel = self.kernel;
        let (w, h) = (full.width(), full.height());
        let same_size = rep.size == w && rep.size == h;
        let n = rep.size * rep.size;
        match rep.mode {
            ColorMode::Rgb => {
                if same_size {
                    let mut buf =
                        Self::out_buf(&mut self.pool, &mut self.pooled, full.value_count());
                    buf.copy_from_slice(full.data());
                    return Image::from_planar(rep.size, rep.size, ColorMode::Rgb, buf);
                }
                self.resize_bilinear(full, rep.size, rep.size)
            }
            ColorMode::Gray => {
                if same_size {
                    // Luma straight into the output buffer — no scratch
                    // plane, no copy.
                    let mut buf = Self::out_buf(&mut self.pool, &mut self.pooled, n);
                    luma(
                        kernel,
                        full.plane(0),
                        full.plane(1),
                        full.plane(2),
                        &mut buf,
                    );
                    return Image::from_planar(rep.size, rep.size, ColorMode::Gray, buf);
                }
                self.fill_luma(full);
                let mut out = Self::out_buf(&mut self.pool, &mut self.pooled, n);
                Self::resize_plane(
                    kernel,
                    &mut self.plans,
                    &mut self.rows,
                    &self.luma_plane,
                    w,
                    h,
                    rep.size,
                    rep.size,
                    &mut out,
                );
                Image::from_planar(rep.size, rep.size, ColorMode::Gray, out)
            }
            mode => {
                let c = mode.source_channel().expect("R/G/B modes have a channel");
                if same_size {
                    let mut buf = Self::out_buf(&mut self.pool, &mut self.pooled, n);
                    buf.copy_from_slice(full.plane(c));
                    return Image::from_planar(rep.size, rep.size, mode, buf);
                }
                let mut out = Self::out_buf(&mut self.pool, &mut self.pooled, n);
                Self::resize_plane(
                    kernel,
                    &mut self.plans,
                    &mut self.rows,
                    full.plane(c),
                    w,
                    h,
                    rep.size,
                    rep.size,
                    &mut out,
                );
                Image::from_planar(rep.size, rep.size, mode, out)
            }
        }
    }

    /// Execute a [`TranscodePlan`] on one frame. The returned images are
    /// aligned with `plan.reps()` (input order); internally targets run in
    /// the plan's cheapest-first order with the shared luma plane computed
    /// at most once. A frame whose shape differs from the plan's source
    /// shape returns `InvalidDimensions`.
    pub fn apply_planned(
        &mut self,
        full: &Image,
        plan: &TranscodePlan,
    ) -> Result<Vec<Image>, ImageryError> {
        if full.mode() != ColorMode::Rgb {
            return Err(ImageryError::NotRgbSource);
        }
        if (full.width(), full.height()) != plan.source_shape() {
            // The plan's tables are shape-specific; a mismatched frame is a
            // recoverable input error, not a programming invariant.
            return Err(ImageryError::InvalidDimensions {
                width: full.width(),
                height: full.height(),
            });
        }
        let kernel = self.kernel;
        let (w, h) = (full.width(), full.height());
        // A same-size gray target doubles as the shared luma plane: luma
        // straight into its output buffer and let every other gray target
        // resize from it — no scratch fill, no extra copy. Otherwise the
        // shared plane lives in the engine scratch.
        let mut gray_owner: Option<(usize, Image)> = None;
        if plan.share_luma {
            let owner = plan
                .steps
                .iter()
                .zip(&plan.reps)
                .position(|(s, r)| *s == TranscodeStep::CopyPlane && r.mode == ColorMode::Gray);
            match owner {
                Some(i) => {
                    let mut buf = Self::out_buf(&mut self.pool, &mut self.pooled, w * h);
                    luma(
                        kernel,
                        full.plane(0),
                        full.plane(1),
                        full.plane(2),
                        &mut buf,
                    );
                    gray_owner = Some((i, Image::from_planar(w, h, ColorMode::Gray, buf)?));
                }
                None => {
                    self.fill_luma(full);
                }
            }
        }
        let mut out: Vec<Option<Image>> = (0..plan.reps.len()).map(|_| None).collect();
        for &i in &plan.order {
            if gray_owner.as_ref().is_some_and(|(gi, _)| *gi == i) {
                continue;
            }
            let rep = plan.reps[i];
            let n = rep.size * rep.size;
            let gray_src: &[f32] = match &gray_owner {
                Some((_, img)) => img.plane(0),
                None => &self.luma_plane,
            };
            let img = match plan.steps[i] {
                TranscodeStep::Identity => {
                    let mut buf =
                        Self::out_buf(&mut self.pool, &mut self.pooled, full.value_count());
                    buf.copy_from_slice(full.data());
                    Image::from_planar(w, h, ColorMode::Rgb, buf)?
                }
                TranscodeStep::CopyPlane => {
                    let plane: &[f32] = match rep.mode {
                        ColorMode::Gray => gray_src,
                        mode => full.plane(mode.source_channel().expect("single channel")),
                    };
                    let mut buf = Self::out_buf(&mut self.pool, &mut self.pooled, plane.len());
                    buf.copy_from_slice(plane);
                    Image::from_planar(rep.size, rep.size, rep.mode, buf)?
                }
                TranscodeStep::Resize => match rep.mode {
                    ColorMode::Rgb => {
                        let mut data = Self::out_buf(&mut self.pool, &mut self.pooled, 3 * n);
                        for c in 0..3 {
                            Self::resize_plane(
                                kernel,
                                &mut self.plans,
                                &mut self.rows,
                                full.plane(c),
                                w,
                                h,
                                rep.size,
                                rep.size,
                                &mut data[c * n..(c + 1) * n],
                            );
                        }
                        Image::from_planar(rep.size, rep.size, ColorMode::Rgb, data)?
                    }
                    mode => {
                        let plane: &[f32] = match mode {
                            ColorMode::Gray => gray_src,
                            m => full.plane(m.source_channel().expect("single channel")),
                        };
                        let mut data = Self::out_buf(&mut self.pool, &mut self.pooled, n);
                        Self::resize_plane(
                            kernel,
                            &mut self.plans,
                            &mut self.rows,
                            plane,
                            w,
                            h,
                            rep.size,
                            rep.size,
                            &mut data,
                        );
                        Image::from_planar(rep.size, rep.size, mode, data)?
                    }
                },
            };
            out[i] = Some(img);
        }
        if let Some((i, img)) = gray_owner {
            out[i] = Some(img);
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("every slot filled"))
            .collect())
    }

    /// Materialize a whole representation set from one frame (plans with
    /// default costs, then executes). For repeated shapes prefer building
    /// the [`TranscodePlan`] once and calling
    /// [`TranscodeEngine::apply_planned`].
    pub fn apply_set(
        &mut self,
        full: &Image,
        reps: &[Representation],
    ) -> Result<Vec<Image>, ImageryError> {
        let plan = TranscodePlan::new(
            full.width(),
            full.height(),
            reps,
            &TranscodeCosts::default(),
        );
        self.apply_planned(full, &plan)
    }

    /// Materialize a representation set for every frame of a batch,
    /// reusing one plan and the engine scratch across the whole batch.
    /// Frames must share one shape (the plan's source shape).
    pub fn apply_batch(
        &mut self,
        frames: &[Image],
        reps: &[Representation],
    ) -> Result<Vec<Vec<Image>>, ImageryError> {
        let Some(first) = frames.first() else {
            return Ok(Vec::new());
        };
        let plan = TranscodePlan::new(
            first.width(),
            first.height(),
            reps,
            &TranscodeCosts::default(),
        );
        frames
            .iter()
            .map(|frame| self.apply_planned(frame, &plan))
            .collect()
    }
}

thread_local! {
    static LOCAL_ENGINE: RefCell<TranscodeEngine> = RefCell::new(TranscodeEngine::new());
}

/// Run `f` against this thread's shared [`TranscodeEngine`] — the backing
/// store for the one-shot `transform::*` functions and
/// `Representation::apply`, so even per-call API users amortize plan tables
/// and scratch. Do not call recursively from inside `f` (the engine is a
/// `RefCell`).
pub fn with_local_engine<R>(f: impl FnOnce(&mut TranscodeEngine) -> R) -> R {
    LOCAL_ENGINE.with(|e| f(&mut e.borrow_mut()))
}

// ---------------------------------------------------------------------------
// Calibration entry points. `tahoma_costmodel::kernels` microbenchmarks each
// op class per tier through these (and `TranscodeEngine::standardize` for
// the standardize class); they run exactly one sweep of the named class so
// the measured medians isolate that class's kernel. Not intended for
// production transcoding — use the engine methods.
// ---------------------------------------------------------------------------

/// One horizontal gather pass (`resize-h-gather` class): resample `src`
/// (one source row of the plan's input width) through the plan's x-axis
/// span tables into `dst` (the plan's output width).
pub fn hlerp_span(kernel: Kernel, src: &[f32], plan: &ResizePlan, dst: &mut [f32]) {
    assert_eq!(src.len(), plan.in_w, "source row width");
    assert_eq!(dst.len(), plan.out_w, "destination row width");
    hlerp(kernel, src, &plan.x, dst);
}

/// One vertical lerp pass (`resize-v` class) over a pair of resampled rows.
pub fn vlerp_rows(kernel: Kernel, top: &[f32], bot: &[f32], w0: f32, w1: f32, dst: &mut [f32]) {
    vlerp(kernel, top, bot, w0, w1, dst);
}

/// One RGB→gray luma sweep (`luma` class) over three equal-length planes.
pub fn luma_sweep(kernel: Kernel, r: &[f32], g: &[f32], b: &[f32], dst: &mut [f32]) {
    luma(kernel, r, g, b, dst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::PAPER_SIZES;

    fn frame(w: usize, h: usize) -> Image {
        Image::from_fn(w, h, ColorMode::Rgb, |c, y, x| {
            (((c * 31 + y * 7 + x * 3) % 13) as f32) / 13.0
        })
        .unwrap()
    }

    #[test]
    fn kernel_detection_is_consistent() {
        let tiers = Kernel::available();
        assert_eq!(tiers[0], Kernel::Portable);
        assert!(tiers.contains(&Kernel::detect()));
        // A class whose policy entry is untuned resolves by detection
        // (skip when an env override or calibration pinned it).
        if simd_policy::global_policy().tier(OpClass::Luma) == SimdTier::Auto {
            assert_eq!(Kernel::Auto.resolve_class(OpClass::Luma), Kernel::detect());
        }
    }

    /// The ROADMAP AVX-512-gather regression, pinned heuristically: with
    /// no calibration installed (the heuristic default policy), `Auto` on
    /// both resize passes must resolve to the AVX2 tier on any machine
    /// that has it — never to the slower AVX-512 gather, and never to a
    /// mixed-license h/v pair (the two passes interleave row by row, so an
    /// AVX-512 vertical pass would drag the AVX2 gathers into the reduced
    /// 512-bit frequency license).
    #[test]
    fn auto_resize_tiers_default_to_avx2() {
        let policy = simd_policy::global_policy();
        for class in [OpClass::ResizeHGather, OpClass::ResizeV] {
            // Only meaningful when nothing (calibration, env) overrode the
            // heuristic for this class.
            if policy.tier(class) != SimdTier::Avx2 {
                continue;
            }
            let resolved = Kernel::Auto.resolve_class(class);
            if Kernel::Avx2.supported() {
                assert_eq!(
                    resolved,
                    Kernel::Avx2,
                    "{:?} must not prefer AVX-512",
                    class
                );
            } else {
                assert_eq!(resolved, Kernel::detect());
            }
        }
    }

    #[test]
    fn engine_resize_matches_reference_bitwise_on_all_tiers() {
        let img = frame(37, 23);
        let reference = crate::transform::resize_bilinear_reference(&img, 11, 17).unwrap();
        for kernel in Kernel::available() {
            let mut e = TranscodeEngine::with_kernel(kernel);
            let got = e.resize_bilinear(&img, 11, 17).unwrap();
            assert_eq!(got.data(), reference.data(), "tier {}", kernel.name());
        }
    }

    #[test]
    fn engine_apply_matches_reference_bitwise() {
        let img = frame(60, 60);
        for kernel in Kernel::available() {
            let mut e = TranscodeEngine::with_kernel(kernel);
            for &size in &PAPER_SIZES {
                for &mode in &ColorMode::ALL {
                    let rep = Representation::new(size, mode);
                    let want = crate::repr::apply_reference(&img, rep).unwrap();
                    let got = e.apply(&img, rep).unwrap();
                    assert_eq!(
                        got.data(),
                        want.data(),
                        "tier {} rep {}",
                        kernel.name(),
                        rep
                    );
                    assert_eq!(got.mode(), want.mode());
                }
            }
        }
    }

    #[test]
    fn planned_set_matches_per_rep_apply_bitwise() {
        let img = frame(120, 120);
        let reps = Representation::paper_set();
        for kernel in Kernel::available() {
            let mut e = TranscodeEngine::with_kernel(kernel);
            let set = e.apply_set(&img, &reps).unwrap();
            assert_eq!(set.len(), reps.len());
            for (rep, got) in reps.iter().zip(&set) {
                let want = crate::repr::apply_reference(&img, *rep).unwrap();
                assert_eq!(
                    got.data(),
                    want.data(),
                    "tier {} rep {}",
                    kernel.name(),
                    rep
                );
            }
        }
    }

    #[test]
    fn apply_batch_matches_per_frame() {
        let frames = vec![frame(48, 48), frame(48, 48), frame(48, 48)];
        let reps = vec![
            Representation::new(12, ColorMode::Gray),
            Representation::new(24, ColorMode::Rgb),
        ];
        let mut e = TranscodeEngine::new();
        let batched = e.apply_batch(&frames, &reps).unwrap();
        assert_eq!(batched.len(), 3);
        for (f, per_frame) in frames.iter().zip(&batched) {
            for (rep, got) in reps.iter().zip(per_frame) {
                assert_eq!(got.data(), e.apply(f, *rep).unwrap().data());
            }
        }
        assert!(e.apply_batch(&[], &reps).unwrap().is_empty());
    }

    #[test]
    fn recycled_buffers_produce_identical_results() {
        let img = frame(64, 64);
        let reps = Representation::paper_set();
        let mut e = TranscodeEngine::new();
        let plan = TranscodePlan::new(64, 64, &reps, &TranscodeCosts::default());
        let first = e.apply_planned(&img, &plan).unwrap();
        let want: Vec<Vec<f32>> = first.iter().map(|i| i.data().to_vec()).collect();
        e.recycle(first);
        // Steady state: every output buffer is recycled, contents must be
        // fully overwritten.
        for _ in 0..3 {
            let next = e.apply_planned(&img, &plan).unwrap();
            for (img2, w) in next.iter().zip(&want) {
                assert_eq!(img2.data(), w.as_slice());
            }
            e.recycle(next);
        }
    }

    #[test]
    fn standardize_tiers_agree_bitwise() {
        for n in [1usize, 7, 8, 9, 64, 113] {
            let img = Image::from_fn(n, 3, ColorMode::Gray, |_, y, x| {
                ((y * 131 + x * 17) % 29) as f32 / 29.0 - 0.3
            })
            .unwrap();
            let mut base: Option<Image> = None;
            for kernel in Kernel::available() {
                let mut e = TranscodeEngine::with_kernel(kernel);
                let s = e.standardize(&img);
                match &base {
                    None => base = Some(s),
                    Some(b) => assert_eq!(b.data(), s.data(), "tier {}", kernel.name()),
                }
            }
        }
    }

    #[test]
    fn standardize_has_zero_mean_unit_var() {
        let img = frame(16, 16);
        let s = TranscodeEngine::new().standardize(&img);
        let data = s.data();
        let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
        let var: f32 =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / data.len() as f32;
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-3);
        let flat = Image::from_fn(5, 5, ColorMode::Gray, |_, _, _| 0.4).unwrap();
        assert!(TranscodeEngine::new()
            .standardize(&flat)
            .data()
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn luma_thumbnail_shapes_and_values() {
        let img = frame(40, 30);
        let mut e = TranscodeEngine::new();
        let t = e.luma_thumbnail(&img, 8).unwrap();
        assert_eq!(t.len(), 64);
        // Constant image -> constant luma thumbnail.
        let flat = Image::from_fn(20, 20, ColorMode::Rgb, |_, _, _| 0.5).unwrap();
        let t = e.luma_thumbnail(&flat, 4).unwrap();
        for v in t {
            assert!((v - 0.5).abs() < 1e-6);
        }
        // Single-plane sources skip the luma pass.
        let gray = Image::from_fn(10, 10, ColorMode::Gray, |_, y, _| y as f32 / 10.0).unwrap();
        assert_eq!(e.luma_thumbnail(&gray, 5).unwrap().len(), 25);
        assert!(e.luma_thumbnail(&gray, 0).is_err());
    }

    #[test]
    fn plan_shares_luma_and_is_cheaper_than_direct() {
        let costs = TranscodeCosts::default();
        let plan = TranscodePlan::new(224, 224, &Representation::paper_set(), &costs);
        assert!(plan.shares_luma());
        assert!(
            plan.planned_cost_s() < plan.direct_cost_s() / 2.0,
            "planned {} vs direct {}",
            plan.planned_cost_s(),
            plan.direct_cost_s()
        );
        // No gray targets -> no luma sweep.
        let rgb_only =
            TranscodePlan::new(224, 224, &[Representation::new(60, ColorMode::Rgb)], &costs);
        assert!(!rgb_only.shares_luma());
    }

    #[test]
    fn plan_order_is_cheapest_first() {
        let plan = TranscodePlan::new(
            224,
            224,
            &Representation::paper_set(),
            &TranscodeCosts::default(),
        );
        let costs: Vec<f64> = plan
            .order()
            .iter()
            .map(|&i| plan.per_rep_cost_s[i])
            .collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn resize_plan_rows_touched_bounds() {
        let p = ResizePlan::new(224, 224, 30, 30);
        assert!(p.rows_touched() <= 60);
        assert!(p.rows_touched() >= 30);
        let up = ResizePlan::new(30, 30, 224, 224);
        assert!(up.rows_touched() <= 30);
    }

    #[test]
    fn planned_shape_mismatch_is_an_error_not_a_panic() {
        let reps = vec![Representation::new(8, ColorMode::Gray)];
        let plan = TranscodePlan::new(32, 32, &reps, &TranscodeCosts::default());
        let mut e = TranscodeEngine::new();
        let odd = frame(16, 32);
        assert!(matches!(
            e.apply_planned(&odd, &plan),
            Err(ImageryError::InvalidDimensions {
                width: 16,
                height: 32
            })
        ));
    }

    #[test]
    fn apply_requires_rgb() {
        let gray = Image::zeros(8, 8, ColorMode::Gray).unwrap();
        let mut e = TranscodeEngine::new();
        assert!(matches!(
            e.apply(&gray, Representation::new(4, ColorMode::Gray)),
            Err(ImageryError::NotRgbSource)
        ));
        assert!(e
            .apply_set(&gray, &[Representation::new(4, ColorMode::Gray)])
            .is_err());
    }

    #[test]
    fn local_engine_is_usable() {
        let img = frame(16, 16);
        let a = with_local_engine(|e| e.resize_bilinear(&img, 8, 8).unwrap());
        let b = TranscodeEngine::new().resize_bilinear(&img, 8, 8).unwrap();
        assert_eq!(a.data(), b.data());
    }
}

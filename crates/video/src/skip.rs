//! Frame skipping (paper §VII-C: "both systems used basic frame skipping,
//! only processing one of every 30 frames").

use crate::stream::Frame;

/// Samples one of every `stride` frames.
#[derive(Debug, Clone, Copy)]
pub struct FrameSkipper {
    /// Keep every `stride`-th frame (stride >= 1).
    pub stride: usize,
}

impl FrameSkipper {
    /// The paper's setting: 1 of every 30 frames.
    pub fn paper_default() -> FrameSkipper {
        FrameSkipper { stride: 30 }
    }

    /// Whether a frame index is sampled.
    #[inline]
    pub fn keeps(&self, idx: u64) -> bool {
        idx.is_multiple_of(self.stride.max(1) as u64)
    }

    /// Filter a frame sequence down to the sampled frames.
    pub fn sample<'a>(&self, frames: &'a [Frame]) -> Vec<&'a Frame> {
        frames.iter().filter(|f| self.keeps(f.idx)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{StreamConfig, VideoStream};

    #[test]
    fn keeps_every_nth() {
        let s = FrameSkipper { stride: 30 };
        assert!(s.keeps(0));
        assert!(!s.keeps(1));
        assert!(!s.keeps(29));
        assert!(s.keeps(30));
        assert!(s.keeps(600));
    }

    #[test]
    fn stride_one_keeps_all() {
        let s = FrameSkipper { stride: 1 };
        assert!((0..100).all(|i| s.keeps(i)));
    }

    #[test]
    fn sample_reduces_by_stride() {
        let mut stream = VideoStream::new(StreamConfig::coral(1));
        let frames = stream.take_frames(900);
        let sampled = FrameSkipper::paper_default().sample(&frames);
        assert_eq!(sampled.len(), 30);
        assert!(sampled.iter().all(|f| f.idx % 30 == 0));
    }
}

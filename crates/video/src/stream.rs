//! Temporally coherent synthetic video streams.
//!
//! Object presence follows a two-state Markov chain (bursty runs, like a
//! fish passing a reef camera or a car crossing an intersection), the
//! background drifts slowly, and each frame carries a small grayscale
//! thumbnail whose content reflects both — exactly what a difference
//! detector needs to be *usefully* imperfect.

use tahoma_mathx::DetRng;

/// One video frame's query-relevant state.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame index in the stream.
    pub idx: u64,
    /// Ground truth: target object present.
    pub label: bool,
    /// Classification difficulty in [0, 1].
    pub difficulty: f32,
    /// Small grayscale thumbnail (side x side) for difference detection.
    pub thumb: Vec<f32>,
}

impl Frame {
    /// Build a frame from a real raster image: the difference-detector
    /// thumbnail is the engine's luma downscale (`side x side`, SIMD
    /// bilinear through cached span tables — this runs once per ingested
    /// frame, so it shares the transcode engine's hot path). Pass the same
    /// engine across frames to amortize its resize plan and scratch.
    pub fn from_image(
        idx: u64,
        label: bool,
        difficulty: f32,
        image: &tahoma_imagery::Image,
        thumb_side: usize,
        engine: &mut tahoma_imagery::TranscodeEngine,
    ) -> Frame {
        let thumb = engine
            .luma_thumbnail(image, thumb_side)
            .expect("thumbnail side is nonzero and image dims are valid");
        Frame {
            idx,
            label,
            difficulty,
            thumb,
        }
    }
}

/// Stream generation parameters.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Stream name (for reports).
    pub name: String,
    /// Per-frame probability of the object appearing when absent.
    pub p_enter: f64,
    /// Per-frame probability of the object leaving when present.
    pub p_exit: f64,
    /// Background drift per frame (0 = static camera).
    pub drift: f64,
    /// Per-frame thumbnail pixel noise.
    pub noise: f64,
    /// Object contrast in the thumbnail.
    pub object_contrast: f64,
    /// Difficulty random-walk step.
    pub difficulty_step: f64,
    /// Difficulty walk start value.
    pub difficulty_start: f64,
    /// Difficulty walk lower clamp.
    pub difficulty_min: f64,
    /// Difficulty walk upper clamp.
    pub difficulty_max: f64,
    /// Thumbnail side length.
    pub thumb_side: usize,
    /// Root seed.
    pub seed: u64,
}

impl StreamConfig {
    /// A coral-reef-like stream (paper's `coral` dataset): static camera,
    /// long presence runs, low drift — a difference detector can reuse many
    /// results (NoScope reported 25.2% reuse; footnote 2).
    pub fn coral(seed: u64) -> StreamConfig {
        StreamConfig {
            name: "coral".into(),
            p_enter: 0.02,
            p_exit: 0.015,
            drift: 0.002,
            noise: 0.008,
            object_contrast: 0.5,
            difficulty_step: 0.02,
            // Reef scenes are easy: big fish against static coral.
            difficulty_start: 0.25,
            difficulty_min: 0.02,
            difficulty_max: 0.55,
            thumb_side: 16,
            seed,
        }
    }

    /// A street-intersection-like stream (paper's `jackson` dataset): busier
    /// scene, short presence runs, higher drift — little reuse (3.8%) and a
    /// harder classification task.
    pub fn jackson(seed: u64) -> StreamConfig {
        StreamConfig {
            name: "jackson".into(),
            p_enter: 0.10,
            p_exit: 0.18,
            drift: 0.004,
            noise: 0.012,
            object_contrast: 0.3,
            difficulty_step: 0.05,
            // Busy intersections are hard: small, occluded, variable.
            difficulty_start: 0.50,
            difficulty_min: 0.20,
            difficulty_max: 0.75,
            thumb_side: 16,
            seed,
        }
    }
}

/// Deterministic frame generator.
#[derive(Debug, Clone)]
pub struct VideoStream {
    config: StreamConfig,
    rng: DetRng,
    background: Vec<f64>,
    object_pattern: Vec<f64>,
    present: bool,
    difficulty: f64,
    next_idx: u64,
}

impl VideoStream {
    /// Create a stream from its config.
    pub fn new(config: StreamConfig) -> VideoStream {
        let mut rng = DetRng::new(config.seed ^ 0x51DE0);
        let n = config.thumb_side * config.thumb_side;
        let background: Vec<f64> = (0..n).map(|_| rng.uniform_in(0.3, 0.7)).collect();
        // The object occupies a fixed soft blob in the thumbnail.
        let side = config.thumb_side;
        let (cx, cy) = (side as f64 * 0.5, side as f64 * 0.55);
        let object_pattern: Vec<f64> = (0..n)
            .map(|i| {
                let x = (i % side) as f64;
                let y = (i / side) as f64;
                let d2 = (x - cx).powi(2) + (y - cy).powi(2);
                (-d2 / (side as f64 * 0.8)).exp()
            })
            .collect();
        let difficulty = config.difficulty_start;
        VideoStream {
            config,
            rng,
            background,
            object_pattern,
            present: false,
            difficulty,
            next_idx: 0,
        }
    }

    /// The stream's config.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Index of the next frame [`VideoStream::next_frame`] will produce
    /// (equals the number of frames generated so far).
    pub fn position(&self) -> u64 {
        self.next_idx
    }

    /// Generate the next frame.
    pub fn next_frame(&mut self) -> Frame {
        let cfg = &self.config;
        // Markov presence transition.
        self.present = if self.present {
            !self.rng.bernoulli(cfg.p_exit)
        } else {
            self.rng.bernoulli(cfg.p_enter)
        };
        // Background drift.
        for v in &mut self.background {
            *v = (*v + cfg.drift * self.rng.standard_normal()).clamp(0.0, 1.0);
        }
        // Difficulty random walk, clamped to the stream's hardness band.
        self.difficulty += cfg.difficulty_step * self.rng.standard_normal();
        self.difficulty = self
            .difficulty
            .clamp(cfg.difficulty_min, cfg.difficulty_max);
        // Thumbnail.
        let thumb: Vec<f32> = self
            .background
            .iter()
            .zip(&self.object_pattern)
            .map(|(&bg, &obj)| {
                let signal = if self.present {
                    cfg.object_contrast * obj
                } else {
                    0.0
                };
                ((bg + signal + cfg.noise * self.rng.standard_normal()).clamp(0.0, 1.0)) as f32
            })
            .collect();
        let frame = Frame {
            idx: self.next_idx,
            label: self.present,
            difficulty: self.difficulty as f32,
            thumb,
        };
        self.next_idx += 1;
        frame
    }

    /// Generate `n` frames.
    pub fn take_frames(&mut self, n: usize) -> Vec<Frame> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

/// Mean squared difference between two equally sized thumbnails.
pub fn thumb_mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "thumbnail size mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = VideoStream::new(StreamConfig::coral(7));
        let mut b = VideoStream::new(StreamConfig::coral(7));
        for _ in 0..50 {
            let fa = a.next_frame();
            let fb = b.next_frame();
            assert_eq!(fa.label, fb.label);
            assert_eq!(fa.thumb, fb.thumb);
        }
    }

    #[test]
    fn presence_is_bursty_on_coral() {
        let mut s = VideoStream::new(StreamConfig::coral(3));
        let frames = s.take_frames(4000);
        // Count label transitions; a bursty chain has far fewer transitions
        // than a Bernoulli sequence of the same rate.
        let transitions = frames
            .windows(2)
            .filter(|w| w[0].label != w[1].label)
            .count();
        let positives = frames.iter().filter(|f| f.label).count();
        assert!(positives > 100, "object never appears ({positives})");
        let rate = positives as f64 / frames.len() as f64;
        let bernoulli_expected = 2.0 * rate * (1.0 - rate) * frames.len() as f64;
        assert!(
            (transitions as f64) < bernoulli_expected * 0.25,
            "transitions {transitions} not bursty (bernoulli {bernoulli_expected:.0})"
        );
    }

    #[test]
    fn jackson_changes_faster_than_coral() {
        let mut coral = VideoStream::new(StreamConfig::coral(5));
        let mut jackson = VideoStream::new(StreamConfig::jackson(5));
        let fc = coral.take_frames(800);
        let fj = jackson.take_frames(800);
        let mean_mse = |fs: &[Frame]| {
            fs.windows(2)
                .map(|w| thumb_mse(&w[0].thumb, &w[1].thumb))
                .sum::<f64>()
                / (fs.len() - 1) as f64
        };
        assert!(
            mean_mse(&fj) > mean_mse(&fc) * 1.5,
            "jackson should drift faster"
        );
    }

    #[test]
    fn object_presence_changes_the_thumbnail() {
        let mut s = VideoStream::new(StreamConfig::coral(11));
        let frames = s.take_frames(4000);
        let mean_center = |fs: &[&Frame]| {
            let side = 16;
            fs.iter()
                .map(|f| f.thumb[(side / 2) * side + side / 2] as f64)
                .sum::<f64>()
                / fs.len().max(1) as f64
        };
        let pos: Vec<&Frame> = frames.iter().filter(|f| f.label).collect();
        let neg: Vec<&Frame> = frames.iter().filter(|f| !f.label).collect();
        assert!(!pos.is_empty() && !neg.is_empty());
        assert!(
            mean_center(&pos) > mean_center(&neg) + 0.05,
            "object blob not visible in thumbnails"
        );
    }

    #[test]
    fn difficulty_stays_in_unit_interval() {
        let mut s = VideoStream::new(StreamConfig::jackson(13));
        for f in s.take_frames(1000) {
            assert!((0.0..=1.0).contains(&f.difficulty));
        }
    }

    #[test]
    fn thumb_mse_basics() {
        assert_eq!(thumb_mse(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert!((thumb_mse(&[0.0, 1.0], &[1.0, 1.0]) - 0.5).abs() < 1e-9);
    }
}

//! NoScope-style difference detector (paper §VII-C).
//!
//! "The difference detector measures the similarity between the current
//! frame and previously seen ones and reuses previous results if the
//! compared frames meet a similarity threshold." This implementation
//! compares against the last *labeled* (processed) frame: if the thumbnail
//! MSE is under the threshold, the previous label is reused and no
//! classifier runs.

use crate::stream::{thumb_mse, Frame};

/// What to do with a frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DdDecision {
    /// Reuse the previous label (classifiers skipped).
    Reuse(bool),
    /// Frame differs; run the classifier pipeline and then `commit`.
    Process,
}

/// Stateful difference detector.
#[derive(Debug, Clone)]
pub struct DifferenceDetector {
    /// MSE threshold under which frames count as unchanged.
    pub threshold: f64,
    last_thumb: Option<Vec<f32>>,
    last_label: bool,
    reused: u64,
    processed: u64,
}

impl DifferenceDetector {
    /// Create a detector with the given similarity threshold.
    pub fn new(threshold: f64) -> DifferenceDetector {
        DifferenceDetector {
            threshold,
            last_thumb: None,
            last_label: false,
            reused: 0,
            processed: 0,
        }
    }

    /// Inspect a frame. `Reuse` carries the label to emit; `Process` means
    /// the caller must classify and then call [`DifferenceDetector::commit`].
    pub fn inspect(&mut self, frame: &Frame) -> DdDecision {
        if let Some(last) = &self.last_thumb {
            if thumb_mse(last, &frame.thumb) < self.threshold {
                self.reused += 1;
                return DdDecision::Reuse(self.last_label);
            }
        }
        DdDecision::Process
    }

    /// Record a processed frame's label as the new reference.
    pub fn commit(&mut self, frame: &Frame, label: bool) {
        self.last_thumb = Some(frame.thumb.clone());
        self.last_label = label;
        self.processed += 1;
    }

    /// Replace the label attached to the last committed keyframe.
    ///
    /// The Reuse/Process partition depends only on thumbnail similarity, so
    /// batched runners can commit keyframes with placeholder labels, classify
    /// every Process frame in one batch, and patch the final label in
    /// afterwards without changing any decision.
    pub fn relabel_last(&mut self, label: bool) {
        self.last_label = label;
    }

    /// The label attached to the last committed keyframe (`false` before
    /// any commit).
    pub fn last_label(&self) -> bool {
        self.last_label
    }

    /// Fraction of inspected frames that were reused.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.reused + self.processed;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }

    /// (reused, processed) counters.
    pub fn counts(&self) -> (u64, u64) {
        (self.reused, self.processed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{StreamConfig, VideoStream};

    fn frame(idx: u64, label: bool, thumb: Vec<f32>) -> Frame {
        Frame {
            idx,
            label,
            difficulty: 0.5,
            thumb,
        }
    }

    #[test]
    fn first_frame_is_always_processed() {
        let mut dd = DifferenceDetector::new(0.1);
        let f = frame(0, true, vec![0.5; 4]);
        assert_eq!(dd.inspect(&f), DdDecision::Process);
    }

    #[test]
    fn identical_frames_reuse_previous_label() {
        let mut dd = DifferenceDetector::new(1e-6);
        let a = frame(0, true, vec![0.5; 4]);
        assert_eq!(dd.inspect(&a), DdDecision::Process);
        dd.commit(&a, true);
        let b = frame(1, true, vec![0.5; 4]);
        assert_eq!(dd.inspect(&b), DdDecision::Reuse(true));
        assert_eq!(dd.counts(), (1, 1));
    }

    #[test]
    fn changed_frames_are_processed() {
        let mut dd = DifferenceDetector::new(0.01);
        let a = frame(0, false, vec![0.0; 4]);
        dd.inspect(&a);
        dd.commit(&a, false);
        let b = frame(1, true, vec![1.0; 4]);
        assert_eq!(dd.inspect(&b), DdDecision::Process);
    }

    #[test]
    fn reuse_propagates_wrong_labels_when_threshold_too_loose() {
        // A detector with a huge threshold reuses everything — including
        // across a label change. This is why NoScope's threshold matters.
        let mut dd = DifferenceDetector::new(f64::INFINITY);
        let a = frame(0, false, vec![0.0; 4]);
        dd.inspect(&a);
        dd.commit(&a, false);
        let b = frame(1, true, vec![1.0; 4]);
        assert_eq!(
            dd.inspect(&b),
            DdDecision::Reuse(false),
            "stale label reused"
        );
    }

    #[test]
    fn real_frame_thumbnails_drive_the_detector() {
        // Frames built from raster images via the transcode engine's luma
        // thumbnail feed the detector exactly like synthetic thumbs: a
        // repeated scene reuses, a changed scene processes.
        use tahoma_imagery::{ColorMode, Image, TranscodeEngine};
        let mut engine = TranscodeEngine::new();
        let scene = |shift: f32| {
            Image::from_fn(64, 48, ColorMode::Rgb, |c, y, x| {
                (((c + y + x) % 9) as f32 / 9.0 + shift).clamp(0.0, 1.0)
            })
            .unwrap()
        };
        let a = Frame::from_image(0, true, 0.2, &scene(0.0), 16, &mut engine);
        let b = Frame::from_image(1, true, 0.2, &scene(0.0), 16, &mut engine);
        let c = Frame::from_image(2, false, 0.2, &scene(0.4), 16, &mut engine);
        assert_eq!(a.thumb.len(), 256);
        let mut dd = DifferenceDetector::new(1e-6);
        assert_eq!(dd.inspect(&a), DdDecision::Process);
        dd.commit(&a, true);
        assert_eq!(dd.inspect(&b), DdDecision::Reuse(true), "identical scene");
        assert_eq!(dd.inspect(&c), DdDecision::Process, "changed scene");
    }

    #[test]
    fn coral_reuses_much_more_than_jackson() {
        // Footnote 2 of the paper: 25.2% reuse on coral vs 3.8% on jackson.
        let threshold = 2.5e-4;
        let run = |cfg: StreamConfig| {
            let mut s = VideoStream::new(cfg);
            let mut dd = DifferenceDetector::new(threshold);
            for f in s.take_frames(3000) {
                match dd.inspect(&f) {
                    DdDecision::Reuse(_) => {}
                    DdDecision::Process => dd.commit(&f, f.label),
                }
            }
            dd.reuse_rate()
        };
        let coral = run(StreamConfig::coral(2));
        let jackson = run(StreamConfig::jackson(2));
        assert!(
            coral > 3.0 * jackson,
            "coral reuse {coral:.3} should dwarf jackson {jackson:.3}"
        );
        assert!(coral > 0.10, "coral reuse too low: {coral:.3}");
        assert!(jackson < 0.15, "jackson reuse too high: {jackson:.3}");
    }
}

//! Temporal label smoothing — the paper's §IX future-work direction
//! ("take full advantage of spatio-temporal locality present in adjacent
//! video frames").
//!
//! Object presence in video is bursty (runs of positives), so isolated
//! label flips are usually classifier noise, not one-frame objects.
//! [`MajoritySmoother`] emits, for each frame, the majority vote over a
//! sliding window of raw labels (with a configurable decision delay equal
//! to the window half-width).

/// Sliding-window majority-vote smoother.
#[derive(Debug, Clone)]
pub struct MajoritySmoother {
    /// Window length (odd; even inputs are bumped up by one).
    window: usize,
    buffer: Vec<bool>,
}

impl MajoritySmoother {
    /// Create a smoother with the given window (minimum 1, forced odd).
    pub fn new(window: usize) -> MajoritySmoother {
        let mut window = window.max(1);
        if window.is_multiple_of(2) {
            window += 1;
        }
        MajoritySmoother {
            window,
            buffer: Vec::new(),
        }
    }

    /// The effective (odd) window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Smooth a whole label sequence. Edges use truncated windows, so the
    /// output length equals the input length.
    pub fn smooth(&self, labels: &[bool]) -> Vec<bool> {
        let half = self.window / 2;
        (0..labels.len())
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(labels.len());
                let pos = labels[lo..hi].iter().filter(|&&l| l).count();
                2 * pos > hi - lo
            })
            .collect()
    }

    /// Streaming interface: push a raw label, get the smoothed label for
    /// the frame `window/2` positions back once enough context exists
    /// (before that, the raw label is returned).
    pub fn push(&mut self, label: bool) -> bool {
        self.buffer.push(label);
        if self.buffer.len() > self.window {
            self.buffer.remove(0);
        }
        let n = self.buffer.len();
        if n < self.window {
            return label;
        }
        let pos = self.buffer.iter().filter(|&&l| l).count();
        2 * pos > n
    }
}

/// Fraction of positions where two label sequences agree.
pub fn agreement(a: &[bool], b: &[bool]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 1.0;
    }
    a.iter().zip(b).filter(|(x, y)| x == y).count() as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{StreamConfig, VideoStream};
    use tahoma_mathx::DetRng;

    #[test]
    fn removes_isolated_flips() {
        let s = MajoritySmoother::new(3);
        let noisy = [
            false, false, true, false, false, true, true, true, false, true, true,
        ];
        let out = s.smooth(&noisy);
        // The isolated positive at index 2 disappears; the isolated
        // negative at index 8 inside the positive run is filled.
        assert!(!out[2]);
        assert!(out[8]);
    }

    #[test]
    fn preserves_clean_runs() {
        let s = MajoritySmoother::new(5);
        let clean: Vec<bool> = (0..40).map(|i| (10..30).contains(&i)).collect();
        let out = s.smooth(&clean);
        assert_eq!(out, clean);
    }

    #[test]
    fn even_windows_are_bumped_to_odd() {
        assert_eq!(MajoritySmoother::new(4).window(), 5);
        assert_eq!(MajoritySmoother::new(1).window(), 1);
    }

    #[test]
    fn window_one_is_identity() {
        let s = MajoritySmoother::new(1);
        let labels = [true, false, true, true, false];
        assert_eq!(s.smooth(&labels), labels);
    }

    #[test]
    fn smoothing_improves_noisy_labels_on_bursty_streams() {
        // Generate ground truth from a bursty stream, corrupt it with 15%
        // symmetric noise, and verify smoothing recovers accuracy.
        let mut stream = VideoStream::new(StreamConfig::coral(21));
        let truth: Vec<bool> = stream.take_frames(4000).iter().map(|f| f.label).collect();
        let mut rng = DetRng::new(9);
        let noisy: Vec<bool> = truth
            .iter()
            .map(|&l| if rng.bernoulli(0.15) { !l } else { l })
            .collect();
        let smoothed = MajoritySmoother::new(7).smooth(&noisy);
        let acc_raw = agreement(&noisy, &truth);
        let acc_smooth = agreement(&smoothed, &truth);
        assert!(
            acc_smooth > acc_raw + 0.05,
            "smoothing did not help: raw {acc_raw:.3} vs smoothed {acc_smooth:.3}"
        );
    }

    #[test]
    fn streaming_matches_batch_in_steady_state() {
        let labels: Vec<bool> = (0..60).map(|i| (i / 7) % 2 == 0).collect();
        let batch = MajoritySmoother::new(5).smooth(&labels);
        let mut streaming = MajoritySmoother::new(5);
        // push(i) emits the smoothed value for position i - 2 (half window).
        let emitted: Vec<bool> = labels.iter().map(|&l| streaming.push(l)).collect();
        let half = 2;
        let mut agree = 0;
        let mut total = 0;
        for i in half..labels.len() - half {
            total += 1;
            if emitted[i + half] == batch[i] {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / total as f64 > 0.95,
            "streaming/batch agreement {agree}/{total}"
        );
    }

    #[test]
    fn agreement_bounds() {
        assert_eq!(agreement(&[], &[]), 1.0);
        assert_eq!(agreement(&[true, false], &[true, true]), 0.5);
    }
}

//! Stream → ingest glue: turn a [`VideoStream`]'s abstract frames into
//! full raster images ready for representation-store ingest.
//!
//! [`VideoStream`] generates the *dynamics* of a camera feed (Markov
//! object presence, drifting background, difficulty walk) and a small DD
//! thumbnail per frame; the continuous-query pipeline additionally needs
//! each arriving frame as a full-resolution raster so the store can run
//! its lattice-planned transcode at ingest (the paper's §V ingest-time
//! materialization). [`StreamIngest`] composes the two deterministic
//! generators the same way `tahoma_noscope::datasets` does for its batch
//! datasets: the stream decides *whether* the object is present and how
//! hard the frame is, the scene renderer decides *what the pixels look
//! like* for that `(frame index, label)` pair — so replaying a stream
//! config reproduces the identical frame sequence, which is what makes
//! the streaming smoke test and benches assertable.
//!
//! Frames are numbered `id_base + idx` so several camera streams can
//! ingest into one shared store without id collisions (the serve layer
//! hands each registered stream a disjoint base).

use crate::stream::{Frame, StreamConfig, VideoStream};
use tahoma_imagery::{Image, ObjectKind, SceneParams, SceneRenderer, TranscodeEngine};

/// Seed perturbation tying a stream's renderer to its config seed (same
/// constant as the NoScope datasets, so a `StreamIngest` over
/// `StreamConfig::coral(seed)` renders the exact frames the batch dataset
/// would).
const RENDER_SEED_XOR: u64 = 0xF8A3E;

/// One arriving frame, ready for ingest: the store-wide id, the stream
/// frame (label, difficulty, DD thumbnail), and the full raster.
#[derive(Debug, Clone)]
pub struct IngestFrame {
    /// Store-wide frame id (`id_base + frame.idx`).
    pub id: u64,
    /// The stream frame (ground-truth label, difficulty, thumbnail).
    pub frame: Frame,
    /// Full-resolution rendered raster (what the store materializes from).
    pub image: Image,
}

/// A live camera feed producing ingest-ready frames: a [`VideoStream`]
/// for dynamics plus a [`SceneRenderer`] for pixels.
#[derive(Debug, Clone)]
pub struct StreamIngest {
    stream: VideoStream,
    renderer: SceneRenderer,
    id_base: u64,
}

impl StreamIngest {
    /// Create a feed. `kind` is the object the scene renderer plants when
    /// the stream says the frame is positive; `scene_size` is the square
    /// raster side in pixels; `id_base` offsets frame ids so streams
    /// sharing a store stay disjoint.
    pub fn new(
        config: StreamConfig,
        kind: ObjectKind,
        scene_size: usize,
        id_base: u64,
    ) -> StreamIngest {
        let renderer = SceneRenderer::new(
            kind,
            SceneParams::small(scene_size),
            config.seed ^ RENDER_SEED_XOR,
        );
        StreamIngest {
            stream: VideoStream::new(config),
            renderer,
            id_base,
        }
    }

    /// The stream configuration.
    pub fn config(&self) -> &StreamConfig {
        self.stream.config()
    }

    /// The kind the renderer plants.
    pub fn kind(&self) -> ObjectKind {
        self.renderer.kind()
    }

    /// The id the next produced frame will get.
    pub fn next_id(&self) -> u64 {
        self.id_base + self.stream.position()
    }

    /// Produce the next arriving frame: advance the stream one step and
    /// render its raster. Pass the same `engine` across calls so the
    /// thumbnail resize plan and buffer pool amortize (the raster itself
    /// is a fresh allocation — it is handed to the store).
    pub fn next_ingest(&mut self, engine: &mut TranscodeEngine) -> IngestFrame {
        let f = self.stream.next_frame();
        let (image, _) = self.renderer.render(f.idx, f.label);
        let frame = Frame::from_image(
            f.idx,
            f.label,
            f.difficulty,
            &image,
            self.stream.config().thumb_side,
            engine,
        );
        IngestFrame {
            id: self.id_base + frame.idx,
            frame,
            image,
        }
    }

    /// Produce the next `n` arriving frames.
    pub fn take_ingest(&mut self, n: usize, engine: &mut TranscodeEngine) -> Vec<IngestFrame> {
        (0..n).map(|_| self.next_ingest(engine)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_deterministic_and_ids_offset() {
        let mut engine = TranscodeEngine::new();
        let mut a = StreamIngest::new(StreamConfig::coral(42), ObjectKind::Coho, 48, 0);
        let mut b = StreamIngest::new(StreamConfig::coral(42), ObjectKind::Coho, 48, 1 << 32);
        for i in 0..6u64 {
            let fa = a.next_ingest(&mut engine);
            let fb = b.next_ingest(&mut engine);
            assert_eq!(fa.id, i);
            assert_eq!(fb.id, (1u64 << 32) + i);
            assert_eq!(fa.frame.label, fb.frame.label);
            assert_eq!(fa.image.data(), fb.image.data(), "frame {i}");
        }
    }

    #[test]
    fn labels_match_stream_replay() {
        // The glue must not perturb the stream: labels equal a bare
        // VideoStream replay of the same config.
        let mut engine = TranscodeEngine::new();
        let mut fed = StreamIngest::new(StreamConfig::jackson(7), ObjectKind::Wallet, 32, 0);
        let mut bare = VideoStream::new(StreamConfig::jackson(7));
        for _ in 0..20 {
            let f = fed.next_ingest(&mut engine);
            let g = bare.next_frame();
            assert_eq!(f.frame.idx, g.idx);
            assert_eq!(f.frame.label, g.label);
        }
    }
}

//! Video substrate: temporally coherent synthetic streams, frame skipping,
//! and the NoScope-style difference detector (paper §VII-C).
//!
//! The NoScope comparison needs video with the property that makes
//! difference detection useful: *temporal coherence* — object presence
//! persists across runs of frames, and consecutive frames look alike unless
//! the scene changes. [`stream::VideoStream`] generates such streams
//! deterministically (presence follows a two-state Markov chain; each frame
//! carries a small rendered thumbnail); [`diff::DifferenceDetector`]
//! replicates NoScope's mechanism of reusing the previous label when the
//! current frame is close enough to the last labeled one.

pub mod diff;
pub mod ingest;
pub mod skip;
pub mod smooth;
pub mod stream;

pub use diff::DifferenceDetector;
pub use ingest::{IngestFrame, StreamIngest};
pub use skip::FrameSkipper;
pub use smooth::MajoritySmoother;
pub use stream::{Frame, StreamConfig, VideoStream};

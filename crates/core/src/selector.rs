//! Cascade selection against user constraints (paper §V-A).
//!
//! "A TAHOMA user provides their constraints on accuracy (U_acc) and
//! throughput (U_thru) at query time (in the form of the highest tolerable
//! loss in either of those parameters)." The selector picks from the
//! Pareto-optimal set: maximize throughput subject to the accuracy floor, or
//! (for baseline comparisons) the optimal cascade whose accuracy is closest
//! to but not below a reference accuracy.

use crate::error::CoreError;
use crate::order::{nan_last, nan_lowest};
use crate::pareto::ParetoPoint;

/// User tolerances, as fractions of the best available value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Constraints {
    /// Highest tolerable relative accuracy loss vs. the most accurate
    /// Pareto-optimal cascade (e.g. 0.05 = accept 5% worse accuracy).
    pub max_accuracy_loss: Option<f64>,
    /// Highest tolerable relative throughput loss vs. the fastest
    /// Pareto-optimal cascade.
    pub max_throughput_loss: Option<f64>,
}

/// Select the best cascade under the constraints: the highest-throughput
/// frontier point whose accuracy and throughput both clear their floors.
///
/// With no constraints at all, selects the most *accurate* frontier point
/// (the conservative default).
pub fn select_with_constraints(
    frontier: &[ParetoPoint],
    constraints: Constraints,
) -> Result<ParetoPoint, CoreError> {
    if frontier.is_empty() {
        return Err(CoreError::EmptySet("Pareto frontier"));
    }
    let best_acc = frontier.iter().map(|p| p.accuracy).fold(0.0, f64::max);
    let best_thr = frontier.iter().map(|p| p.throughput).fold(0.0, f64::max);
    let acc_floor = constraints.max_accuracy_loss.map(|l| best_acc * (1.0 - l));
    let thr_floor = constraints
        .max_throughput_loss
        .map(|l| best_thr * (1.0 - l));
    match (acc_floor, thr_floor) {
        (None, None) => {
            // Most accurate point (a NaN accuracy never wins).
            frontier
                .iter()
                .copied()
                .max_by(|a, b| nan_lowest(a.accuracy, b.accuracy))
                .ok_or(CoreError::EmptySet("Pareto frontier"))
        }
        _ => frontier
            .iter()
            .filter(|p| acc_floor.is_none_or(|f| p.accuracy >= f - 1e-12))
            .filter(|p| thr_floor.is_none_or(|f| p.throughput >= f - 1e-12))
            .copied()
            .max_by(|a, b| {
                nan_lowest(a.throughput, b.throughput)
                    .then_with(|| nan_lowest(a.accuracy, b.accuracy))
            })
            .ok_or(CoreError::NoFeasibleCascade),
    }
}

/// The paper's baseline-matching rule (§VII-A): "choose the optimal cascade
/// whose accuracy is both higher and closest to the accuracy of the single
/// classifier". Falls back to the most accurate point when nothing clears
/// the reference.
pub fn select_matching_accuracy(
    frontier: &[ParetoPoint],
    reference_accuracy: f64,
) -> Result<ParetoPoint, CoreError> {
    if frontier.is_empty() {
        return Err(CoreError::EmptySet("Pareto frontier"));
    }
    frontier
        .iter()
        .filter(|p| p.accuracy >= reference_accuracy)
        .copied()
        .min_by(|a, b| nan_last(a.accuracy, b.accuracy))
        .or_else(|| {
            frontier
                .iter()
                .copied()
                .max_by(|a, b| nan_lowest(a.accuracy, b.accuracy))
        })
        .ok_or(CoreError::EmptySet("Pareto frontier"))
}

/// The fastest frontier point (the paper's "if speed is the priority" row,
/// Fig. 7).
pub fn select_fastest(frontier: &[ParetoPoint]) -> Result<ParetoPoint, CoreError> {
    frontier
        .iter()
        .copied()
        .max_by(|a, b| nan_lowest(a.throughput, b.throughput))
        .ok_or(CoreError::EmptySet("Pareto frontier"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frontier() -> Vec<ParetoPoint> {
        // throughput desc, accuracy asc — a valid frontier shape.
        vec![
            ParetoPoint {
                idx: 0,
                accuracy: 0.70,
                throughput: 5000.0,
            },
            ParetoPoint {
                idx: 1,
                accuracy: 0.85,
                throughput: 800.0,
            },
            ParetoPoint {
                idx: 2,
                accuracy: 0.92,
                throughput: 120.0,
            },
            ParetoPoint {
                idx: 3,
                accuracy: 0.96,
                throughput: 40.0,
            },
        ]
    }

    #[test]
    fn no_constraints_picks_most_accurate() {
        let p = select_with_constraints(&frontier(), Constraints::default()).unwrap();
        assert_eq!(p.idx, 3);
    }

    #[test]
    fn accuracy_loss_budget_buys_throughput() {
        // 5% loss from 0.96 → floor 0.912: eligible {2, 3}; fastest is 2.
        let p = select_with_constraints(
            &frontier(),
            Constraints {
                max_accuracy_loss: Some(0.05),
                max_throughput_loss: None,
            },
        )
        .unwrap();
        assert_eq!(p.idx, 2);
        // 12% loss → floor 0.845: point 1 becomes eligible.
        let p = select_with_constraints(
            &frontier(),
            Constraints {
                max_accuracy_loss: Some(0.12),
                max_throughput_loss: None,
            },
        )
        .unwrap();
        assert_eq!(p.idx, 1);
    }

    #[test]
    fn zero_loss_means_most_accurate() {
        let p = select_with_constraints(
            &frontier(),
            Constraints {
                max_accuracy_loss: Some(0.0),
                max_throughput_loss: None,
            },
        )
        .unwrap();
        assert_eq!(p.idx, 3);
    }

    #[test]
    fn throughput_constraint_filters() {
        // Keep within 90% of best throughput (5000) → only point 0.
        let p = select_with_constraints(
            &frontier(),
            Constraints {
                max_accuracy_loss: None,
                max_throughput_loss: Some(0.10),
            },
        )
        .unwrap();
        assert_eq!(p.idx, 0);
    }

    #[test]
    fn conflicting_constraints_are_infeasible() {
        let r = select_with_constraints(
            &frontier(),
            Constraints {
                max_accuracy_loss: Some(0.0),
                max_throughput_loss: Some(0.0),
            },
        );
        assert_eq!(r.unwrap_err(), CoreError::NoFeasibleCascade);
    }

    #[test]
    fn matching_accuracy_picks_closest_above() {
        let p = select_matching_accuracy(&frontier(), 0.84).unwrap();
        assert_eq!(p.idx, 1, "0.85 is the closest accuracy >= 0.84");
        let p = select_matching_accuracy(&frontier(), 0.93).unwrap();
        assert_eq!(p.idx, 3);
    }

    #[test]
    fn matching_accuracy_falls_back_to_best() {
        let p = select_matching_accuracy(&frontier(), 0.99).unwrap();
        assert_eq!(p.idx, 3, "nothing clears 0.99; fall back to most accurate");
    }

    #[test]
    fn fastest() {
        assert_eq!(select_fastest(&frontier()).unwrap().idx, 0);
    }

    #[test]
    fn empty_frontier_errors() {
        assert!(select_with_constraints(&[], Constraints::default()).is_err());
        assert!(select_matching_accuracy(&[], 0.5).is_err());
        assert!(select_fastest(&[]).is_err());
    }

    #[test]
    fn nan_points_never_win_selection() {
        // A degenerate point with NaN statistics must lose every selection
        // rule instead of panicking or being picked.
        let mut points = frontier();
        points.push(ParetoPoint {
            idx: 9,
            accuracy: f64::NAN,
            throughput: f64::NAN,
        });
        let p = select_with_constraints(&points, Constraints::default()).unwrap();
        assert_eq!(p.idx, 3);
        let p = select_with_constraints(
            &points,
            Constraints {
                max_accuracy_loss: Some(0.05),
                max_throughput_loss: None,
            },
        )
        .unwrap();
        assert_eq!(p.idx, 2);
        let p = select_matching_accuracy(&points, 0.84).unwrap();
        assert_eq!(p.idx, 1);
        let p = select_fastest(&points).unwrap();
        assert_eq!(p.idx, 0);
    }
}

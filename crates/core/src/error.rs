//! Error type for the core optimizer.

use std::fmt;

/// Errors surfaced by cascade construction, selection and query processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A cascade referenced a model id outside the repository.
    UnknownModel(u32),
    /// The cascade set or frontier was empty where a choice was required.
    EmptySet(&'static str),
    /// No cascade satisfies the user's constraints.
    NoFeasibleCascade,
    /// Query text failed to parse.
    Parse { position: usize, message: String },
    /// A query referenced an unknown object category.
    UnknownCategory(String),
    /// A query referenced an unknown metadata field.
    UnknownField(String),
    /// A continuous-query window was mis-specified or ticked ahead of its
    /// arrivals (see [`crate::continuous`]).
    Window(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownModel(id) => write!(f, "unknown model id {id}"),
            CoreError::EmptySet(what) => write!(f, "empty {what}"),
            CoreError::NoFeasibleCascade => write!(f, "no cascade satisfies the constraints"),
            CoreError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            CoreError::UnknownCategory(c) => write!(f, "unknown object category '{c}'"),
            CoreError::UnknownField(field) => write!(f, "unknown metadata field '{field}'"),
            CoreError::Window(message) => write!(f, "continuous window: {message}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CoreError::UnknownModel(7).to_string().contains('7'));
        assert!(CoreError::UnknownCategory("dog".into())
            .to_string()
            .contains("dog"));
        let e = CoreError::Parse {
            position: 3,
            message: "expected ident".into(),
        };
        assert!(e.to_string().contains("byte 3"));
    }
}

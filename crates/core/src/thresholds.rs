//! Decision-threshold calibration (paper §V-C).
//!
//! Each model gets a pair `(p_low, p_high)`: outputs `<= p_low` are accepted
//! as negative, `>= p_high` as positive, and anything between is *uncertain*
//! and falls through to the next cascade level. Thresholds are chosen per
//! model on the config split so that the precision of the accepted decisions
//! meets a target while recall (the fraction of items decided) is maximized.
//! Crucially they are calibrated independently of any cascade, so the same
//! calibration serves every cascade a model appears in (§V-D).

use tahoma_zoo::ModelRepository;

/// The five precision settings used in the paper's experiments (§VII-A).
pub const PAPER_PRECISION_SETTINGS: [f64; 5] = [0.91, 0.93, 0.95, 0.97, 0.99];

/// A model's calibrated decision thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionThresholds {
    /// Scores `<= p_low` are accepted as negative.
    pub p_low: f32,
    /// Scores `>= p_high` are accepted as positive.
    pub p_high: f32,
}

impl DecisionThresholds {
    /// Thresholds that never accept (everything is uncertain).
    pub fn never_decide() -> DecisionThresholds {
        DecisionThresholds {
            p_low: -1.0,
            p_high: 2.0,
        }
    }

    /// Classify one score: `Some(label)` when decided, `None` when
    /// uncertain.
    #[inline]
    pub fn decide(&self, score: f32) -> Option<bool> {
        if score <= self.p_low {
            Some(false)
        } else if score >= self.p_high {
            Some(true)
        } else {
            None
        }
    }

    /// Fraction of scores that are decided (non-uncertain).
    pub fn decided_fraction(&self, scores: &[f32]) -> f64 {
        if scores.is_empty() {
            return 0.0;
        }
        let n = scores.iter().filter(|&&s| self.decide(s).is_some()).count();
        n as f64 / scores.len() as f64
    }
}

/// Calibrate thresholds for one model's config-split scores.
///
/// Positive side: the smallest `p_high` such that precision of
/// `{score >= p_high}` is at least `target_precision` — smallest because
/// that maximizes positive recall. Negative side symmetrically with negative
/// predictive value. An unattainable side never decides.
///
/// Panics if `scores` and `labels` lengths differ.
pub fn calibrate(scores: &[f32], labels: &[bool], target_precision: f64) -> DecisionThresholds {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    if scores.is_empty() {
        return DecisionThresholds::never_decide();
    }

    // Sort (score, label) pairs descending once; the positive-side sweep is
    // a prefix walk, the negative side a suffix walk of the same order. A
    // NaN score (a degenerate model) sorts as lower than every real score,
    // so it lands at the low end of the walk; NaN never satisfies either
    // threshold inequality in `decide`, so such items stay uncertain no
    // matter where the cuts land.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| crate::order::nan_lowest_f32(scores[b], scores[a]));

    // Positive side: walk descending; realizable cuts are at positions
    // where the next score is strictly smaller. NaN scores (all at the low
    // end of the walk) can never be decided positive, so they are neither
    // cut candidates nor counted toward precision — the walk stops at the
    // first one, and the cut just above a NaN block is still realizable.
    let mut p_high = 2.0f32;
    {
        let mut tp = 0usize;
        let mut best: Option<f32> = None;
        for (rank, &i) in order.iter().enumerate() {
            if scores[i].is_nan() {
                break;
            }
            if labels[i] {
                tp += 1;
            }
            let next_differs = rank + 1 == order.len()
                || scores[order[rank + 1]].is_nan()
                || scores[order[rank + 1]] < scores[i];
            if next_differs {
                let precision = tp as f64 / (rank + 1) as f64;
                if precision >= target_precision {
                    best = Some(scores[i]); // larger prefix = higher recall
                }
            }
        }
        if let Some(t) = best {
            p_high = t;
        }
    }

    // Negative side: walk ascending. Candidate cuts stop strictly below
    // `p_high` so the two acceptance regions never overlap — the positive
    // side keeps priority and both sides keep their calibrated precision.
    // NaN scores sit at the start of the ascending walk; they stay
    // uncertain at runtime, so they are skipped as candidates and excluded
    // from the NPV counts.
    let mut p_low = -1.0f32;
    {
        let mut tn = 0usize;
        let mut seen = 0usize; // non-NaN items at or below the candidate
        let mut best: Option<f32> = None;
        for (rank, &i) in order.iter().rev().enumerate() {
            if scores[i].is_nan() {
                continue;
            }
            if scores[i] >= p_high {
                break;
            }
            if !labels[i] {
                tn += 1;
            }
            seen += 1;
            let pos_in_asc = rank; // 0-based from the smallest score
            let next_differs = pos_in_asc + 1 == order.len()
                || scores[order[order.len() - 2 - pos_in_asc]] > scores[i];
            if next_differs {
                let npv = tn as f64 / seen as f64;
                if npv >= target_precision {
                    best = Some(scores[i]);
                }
            }
        }
        if let Some(t) = best {
            p_low = t;
        }
    }
    // NaN-scored inputs can surface a NaN cut (which never decides, see
    // `decide`); the overlap invariant is "not inverted", which a NaN
    // passes vacuously.
    debug_assert!(p_low < p_high || p_low.is_nan() || p_high.is_nan());
    DecisionThresholds { p_low, p_high }
}

/// Calibrated thresholds for every (model, precision setting) pair.
#[derive(Debug, Clone)]
pub struct ThresholdTable {
    /// The precision settings, in index order.
    pub settings: Vec<f64>,
    /// `per_model[model_index][setting_index]`.
    pub per_model: Vec<Vec<DecisionThresholds>>,
}

impl ThresholdTable {
    /// Look up thresholds for a (model, setting) pair.
    #[inline]
    pub fn get(&self, model_index: usize, setting_index: usize) -> DecisionThresholds {
        self.per_model[model_index][setting_index]
    }

    /// Number of settings.
    pub fn n_settings(&self) -> usize {
        self.settings.len()
    }
}

/// Calibrate every model in a repository against its config split, for all
/// requested precision settings.
pub fn calibrate_all(repo: &ModelRepository, settings: &[f64]) -> ThresholdTable {
    let labels = &repo.config.labels;
    let per_model = repo
        .entries
        .iter()
        .map(|e| {
            settings
                .iter()
                .map(|&t| calibrate(&e.config_scores, labels, t))
                .collect()
        })
        .collect();
    ThresholdTable {
        settings: settings.to_vec(),
        per_model,
    }
}

/// Measured precision of the positive decisions of `thr` on a labeled set.
/// Returns `None` when no positive decisions are made.
pub fn positive_precision(thr: DecisionThresholds, scores: &[f32], labels: &[bool]) -> Option<f64> {
    let mut tp = 0usize;
    let mut fp = 0usize;
    for (&s, &l) in scores.iter().zip(labels) {
        if thr.decide(s) == Some(true) {
            if l {
                tp += 1;
            } else {
                fp += 1;
            }
        }
    }
    if tp + fp == 0 {
        None
    } else {
        Some(tp as f64 / (tp + fp) as f64)
    }
}

/// Measured negative predictive value of the negative decisions.
/// Returns `None` when no negative decisions are made.
pub fn negative_precision(thr: DecisionThresholds, scores: &[f32], labels: &[bool]) -> Option<f64> {
    let mut tn = 0usize;
    let mut fneg = 0usize;
    for (&s, &l) in scores.iter().zip(labels) {
        if thr.decide(s) == Some(false) {
            if l {
                fneg += 1;
            } else {
                tn += 1;
            }
        }
    }
    if tn + fneg == 0 {
        None
    } else {
        Some(tn as f64 / (tn + fneg) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_regions() {
        let t = DecisionThresholds {
            p_low: 0.2,
            p_high: 0.8,
        };
        assert_eq!(t.decide(0.1), Some(false));
        assert_eq!(t.decide(0.2), Some(false));
        assert_eq!(t.decide(0.5), None);
        assert_eq!(t.decide(0.8), Some(true));
        assert_eq!(t.decide(0.95), Some(true));
    }

    #[test]
    fn perfectly_separable_scores_decide_everything() {
        let scores = [0.05, 0.1, 0.15, 0.85, 0.9, 0.95];
        let labels = [false, false, false, true, true, true];
        let t = calibrate(&scores, &labels, 0.95);
        // All positives and negatives can be accepted at full precision.
        assert_eq!(t.decided_fraction(&scores), 1.0);
        for (&s, &l) in scores.iter().zip(&labels) {
            assert_eq!(t.decide(s), Some(l));
        }
    }

    #[test]
    fn noisy_overlap_leaves_uncertain_region() {
        // Scores interleave in the middle; only the extremes are clean.
        let scores = [
            0.02, 0.30, 0.45, 0.55, 0.40, 0.60, 0.70, 0.98, 0.05, 0.35, 0.50, 0.65, 0.44, 0.58,
            0.72, 0.95,
        ];
        let labels = [
            false, false, false, true, true, false, true, true, false, false, true, true, false,
            true, false, true,
        ];
        let t = calibrate(&scores, &labels, 0.99);
        let decided = t.decided_fraction(&scores);
        assert!(
            decided < 1.0,
            "expected an uncertain region, decided {decided}"
        );
        assert!(decided > 0.0, "thresholds should decide the clean extremes");
        // Accepted decisions must meet the precision target on the
        // calibration data itself.
        if let Some(p) = positive_precision(t, &scores, &labels) {
            assert!(p >= 0.99, "positive precision {p}");
        }
        if let Some(p) = negative_precision(t, &scores, &labels) {
            assert!(p >= 0.99, "negative precision {p}");
        }
    }

    #[test]
    fn higher_targets_decide_no_more() {
        let mut rng = tahoma_mathx::DetRng::new(5);
        let n = 400;
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2 == 0;
            let mu = if label { 0.7 } else { 0.3 };
            scores.push((mu + 0.18 * rng.standard_normal()).clamp(0.0, 1.0) as f32);
            labels.push(label);
        }
        let mut last = f64::INFINITY;
        for &target in &PAPER_PRECISION_SETTINGS {
            let t = calibrate(&scores, &labels, target);
            let frac = t.decided_fraction(&scores);
            assert!(
                frac <= last + 1e-9,
                "decided fraction should not grow with target: {frac} after {last}"
            );
            last = frac;
        }
    }

    #[test]
    fn unattainable_target_never_decides() {
        // Labels are random w.r.t. scores; precision 0.99 is unattainable
        // on the negative side and positive side alike (n large enough that
        // no realizable prefix is pure).
        let scores: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let labels: Vec<bool> = (0..100).map(|i| (i * 7) % 3 == 0).collect();
        let t = calibrate(&scores, &labels, 0.999);
        // Whatever was decided meets the bar; here nothing can, except
        // possibly single extreme points which the tie rules allow.
        let frac = t.decided_fraction(&scores);
        assert!(frac < 0.10, "decided {frac} under an unattainable target");
    }

    #[test]
    fn empty_input_never_decides() {
        let t = calibrate(&[], &[], 0.95);
        assert_eq!(t.decide(0.5), None);
    }

    #[test]
    fn nan_scores_calibrate_without_panicking_and_stay_uncertain() {
        let scores = [0.05, f32::NAN, 0.9, f32::NAN, 0.1, 0.95];
        let labels = [false, true, true, false, false, true];
        let t = calibrate(&scores, &labels, 0.9);
        assert!(t.p_low < t.p_high, "cuts inverted or NaN: {t:?}");
        // A NaN score satisfies neither inequality: always uncertain.
        assert_eq!(t.decide(f32::NAN), None);
        // The clean extremes still calibrate: both sides are pure here.
        assert_eq!(t.decide(0.95), Some(true));
        assert_eq!(t.decide(0.05), Some(false));
    }

    #[test]
    fn nan_scores_are_not_cut_candidates_and_do_not_mask_real_cuts() {
        // The only realizable positive cut is at 0.9; the NaN entry must
        // neither become the cut itself nor make 0.9 look unrealizable.
        let scores = [0.9, f32::NAN];
        let labels = [true, true];
        let t = calibrate(&scores, &labels, 0.5);
        assert_eq!(t.p_high, 0.9);
        assert_eq!(t.decide(0.9), Some(true));
        assert_eq!(t.decide(f32::NAN), None);
        // Mirror case on the negative side: cut at 0.1 despite the NaN.
        let scores = [0.1, f32::NAN, 0.9];
        let labels = [false, false, true];
        let t = calibrate(&scores, &labels, 0.9);
        assert_eq!(t.p_low, 0.1);
        assert_eq!(t.decide(0.1), Some(false));
    }

    #[test]
    fn tied_scores_cut_at_boundaries_only() {
        // Five identical scores, mixed labels: the only realizable cuts are
        // all-or-nothing, so precision 0.9 is unattainable on the positive
        // side (3/5 = 0.6).
        let scores = [0.5, 0.5, 0.5, 0.5, 0.5];
        let labels = [true, true, true, false, false];
        let t = calibrate(&scores, &labels, 0.9);
        assert_eq!(t.decide(0.5), None);
    }

    #[test]
    fn calibrate_all_covers_every_model_and_setting() {
        use tahoma_costmodel::DeviceProfile;
        use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
        use tahoma_zoo::PredicateSpec;
        let repo = build_surrogate_repository(
            PredicateSpec::for_kind(tahoma_imagery::ObjectKind::Fence),
            &SurrogateBuildConfig {
                n_config: 150,
                n_eval: 100,
                seed: 3,
                ..Default::default()
            },
            &DeviceProfile::k80(),
        );
        let table = calibrate_all(&repo, &PAPER_PRECISION_SETTINGS);
        assert_eq!(table.per_model.len(), repo.len());
        assert_eq!(table.n_settings(), 5);
        // Every calibrated threshold meets its target on the config split.
        for (mi, entry) in repo.entries.iter().enumerate() {
            for (si, &target) in table.settings.iter().enumerate() {
                let t = table.get(mi, si);
                assert!(t.p_low <= t.p_high);
                if let Some(p) = positive_precision(t, &entry.config_scores, &repo.config.labels) {
                    assert!(
                        p >= target - 1e-9,
                        "model {mi} setting {si}: precision {p} < {target}"
                    );
                }
            }
        }
    }

    #[test]
    fn stronger_models_decide_more_at_fixed_precision() {
        use tahoma_costmodel::DeviceProfile;
        use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
        use tahoma_zoo::PredicateSpec;
        let repo = build_surrogate_repository(
            PredicateSpec::for_kind(tahoma_imagery::ObjectKind::Komondor),
            &SurrogateBuildConfig {
                n_config: 300,
                n_eval: 100,
                seed: 4,
                ..Default::default()
            },
            &DeviceProfile::k80(),
        );
        let table = calibrate_all(&repo, &[0.95]);
        // Weakest spec model (id 0: 1x16-d16 on 30px) vs resnet.
        let weak = table
            .get(0, 0)
            .decided_fraction(&repo.entries[0].config_scores);
        let r = repo.resnet.unwrap().index();
        let strong = table
            .get(r, 0)
            .decided_fraction(&repo.entries[r].config_scores);
        assert!(
            strong > weak,
            "resnet decided {strong} should exceed weakest model {weak}"
        );
    }
}

//! Continuous queries over live streams: sliding-window incremental
//! evaluation with per-tick result deltas.
//!
//! The paper optimizes predicates over a *static* archive, but its §III
//! ONGOING scenario is a stream: "video is continually ingested" and
//! transformed into stored representations at arrival time (§V's
//! ingest-time materialization — in this codebase,
//! `RepresentationStore::ingest` runs the lattice-planned transcode per
//! frame). This module adds the query half of that scenario: register a
//! query once, feed arriving items, and evaluate on sliding count windows
//! (RANGE/STEP, tick-driven, RSP-engine style) *incrementally*.
//!
//! The trick that makes incremental evaluation exact rather than
//! approximate is the same determinism the §IV cost model prices: a
//! cascade's decision for an item depends only on the (model, item) score
//! pairs, never on which other items share the batch. So on each window
//! slide only the newly-arrived items are scored through the cascade
//! (batched level-major, the PR 5 executor — §IV's batch pricing applies
//! to exactly these packs), newly-expired items are retired, and every
//! surviving decision carries over unchanged. The result set after any
//! tick is therefore *identical* — matched ids and deltas — to a
//! from-scratch re-evaluation of the whole window, while the work per tick
//! is proportional to STEP instead of RANGE. At the RANGE ≥ 4×STEP shapes
//! the bench gates, that is the whole speedup.
//!
//! Window semantics (count-based, the RSP RANGE/STEP template):
//!
//! * arrivals are numbered 0, 1, 2, … in ingest order (the *arrival
//!   position* — ids may arrive in any order);
//! * after `t` ticks the window covers arrival positions
//!   `[max(0, t·STEP − RANGE), t·STEP)`;
//! * [`ContinuousExecutor::tick`] requires its `STEP` new arrivals to have
//!   been ingested first (the serve layer drives ingest and tick from the
//!   same request, so this is structural there);
//! * with `STEP > RANGE` the positions that fall in the gap between
//!   consecutive windows are never scored at all.
//!
//! Each tick emits a [`TickDeltas`]: `+id` for newly matched items, `-id`
//! for expired ones, in arrival order. Ids must be unique among in-window
//! items for the deltas to be meaningful (streams satisfy this by
//! construction: one id per frame).
//!
//! The executor is generic over *how* a cascade pack is scored — the same
//! seam as [`BatchScorer`]: [`ContinuousExecutor::tick`] takes a closure
//! so a serving layer can route each kind to its own backend (surrogate
//! tables, shared NN zoo, coalescing broker), while
//! [`ContinuousExecutor::tick_batched`] is the single-backend convenience
//! used by tests and benches. [`ContinuousExecutor::rescan`] re-evaluates
//! the current window from scratch through the same seam; the equivalence
//! `rescan() == matched()` after every tick is this module's correctness
//! bar, enforced by `tests/continuous_proptests.rs` against the reference
//! (item-at-a-time) executor.

use crate::cascade::Cascade;
use crate::error::CoreError;
use crate::exec::{BatchScorer, VectorizedExecutor};
use crate::query::{CorpusItem, Query};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use tahoma_imagery::ObjectKind;

/// A sliding count window: every tick advances the window end by `step`
/// arrivals; the window covers the last `range` arrivals before the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    range: u64,
    step: u64,
}

impl WindowSpec {
    /// Validate `RANGE`/`STEP`; both must be ≥ 1. `STEP > RANGE` is legal
    /// (sampled windows with gaps).
    pub fn new(range: u64, step: u64) -> Result<WindowSpec, CoreError> {
        if range == 0 || step == 0 {
            return Err(CoreError::Window(format!(
                "RANGE and STEP must be >= 1 (got RANGE {range} STEP {step})"
            )));
        }
        Ok(WindowSpec { range, step })
    }

    /// Window width in arrivals.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// Arrivals consumed per tick.
    pub fn step(&self) -> u64 {
        self.step
    }
}

/// One tick's result delta: what entered and left the matched set when the
/// window slid, plus the incremental work accounting the bench reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickDeltas {
    /// 1-based tick number.
    pub tick: u64,
    /// Window coverage in arrival positions, `[start, end)`.
    pub window_start: u64,
    /// Exclusive window end (equals `tick * step`).
    pub window_end: u64,
    /// Ids newly matched this tick, in arrival order.
    pub added: Vec<u64>,
    /// Previously matched ids that expired out of the window, in arrival
    /// order.
    pub removed: Vec<u64>,
    /// Matched items currently in the window (after this slide).
    pub matched: usize,
    /// Items that entered the window this tick.
    pub entered: usize,
    /// Cascade rows scored this tick (one per surviving item per content
    /// predicate) — the incremental cost the RANGE-sized rescan avoids.
    pub scored: usize,
}

/// An in-window item: its arrival position, the item itself (retained so
/// [`ContinuousExecutor::rescan`] can re-derive everything from scratch),
/// and its carried decision.
#[derive(Debug, Clone)]
struct WindowEntry {
    pos: u64,
    item: CorpusItem,
    passes: bool,
}

/// A registered standing query with its window state. See the module docs
/// for semantics; drive it with [`ContinuousExecutor::ingest`] +
/// [`ContinuousExecutor::tick`].
#[derive(Debug)]
pub struct ContinuousExecutor {
    query: Query,
    cascades: BTreeMap<ObjectKind, Cascade>,
    window: WindowSpec,
    /// Arrivals not yet consumed by a tick, FIFO; front position is
    /// `next_pos - pending.len()`.
    pending: VecDeque<CorpusItem>,
    /// Position the next ingested arrival gets.
    next_pos: u64,
    /// In-window items with carried decisions, ascending position.
    entries: VecDeque<WindowEntry>,
    /// Exclusive end of the current window (`ticks * step`).
    end: u64,
    ticks: u64,
    scored_total: u64,
}

impl ContinuousExecutor {
    /// Register a standing query. Every content predicate must have a
    /// cascade in `cascades` (the plan made at registration time — the
    /// serve layer takes these from its plan cache).
    pub fn register(
        query: Query,
        cascades: BTreeMap<ObjectKind, Cascade>,
        window: WindowSpec,
    ) -> Result<ContinuousExecutor, CoreError> {
        for kind in &query.content {
            if !cascades.contains_key(kind) {
                return Err(CoreError::Window(format!(
                    "no cascade registered for content predicate '{}'",
                    kind.name()
                )));
            }
        }
        Ok(ContinuousExecutor {
            query,
            cascades,
            window,
            pending: VecDeque::new(),
            next_pos: 0,
            entries: VecDeque::new(),
            end: 0,
            ticks: 0,
            scored_total: 0,
        })
    }

    /// The registered query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The window specification.
    pub fn window(&self) -> WindowSpec {
        self.window
    }

    /// Feed one arrival. Items are buffered (unscored) until a tick slides
    /// the window over their position.
    pub fn ingest(&mut self, item: CorpusItem) {
        self.pending.push_back(item);
        self.next_pos += 1;
    }

    /// Total arrivals ingested so far.
    pub fn arrived(&self) -> u64 {
        self.next_pos
    }

    /// Ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total cascade rows scored across all ticks (the incremental cost).
    pub fn scored_total(&self) -> u64 {
        self.scored_total
    }

    /// Currently matched ids, in arrival order.
    pub fn matched(&self) -> Vec<u64> {
        self.entries
            .iter()
            .filter(|e| e.passes)
            .map(|e| e.item.id)
            .collect()
    }

    /// Items currently in the window, in arrival order.
    pub fn window_len(&self) -> usize {
        self.entries.len()
    }

    /// Slide the window one STEP. Only items entering the window are
    /// scored (through `eval`, once per content predicate over the
    /// surviving pack); expired items are retired; every other decision
    /// carries over. Requires the tick's `STEP` arrivals to be ingested.
    ///
    /// Failure-atomic: if `eval` returns an error, no window state has
    /// changed — arrivals stay pending, decisions stay carried — so the
    /// identical tick can be retried (the serve layer's degraded-stream
    /// recovery depends on this; see RELIABILITY.md).
    ///
    /// `eval` receives the predicate kind, its registered cascade, and the
    /// pack of surviving items, and returns one pass/fail per pack item —
    /// it must be deterministic per (kind, item) for the incremental ≡
    /// rescan guarantee to hold (every scorer in this workspace is; see
    /// the module docs for the one NN batch-shape caveat and the pinned
    /// accumulation path that removes it).
    pub fn tick<E>(&mut self, mut eval: E) -> Result<TickDeltas, CoreError>
    where
        E: FnMut(ObjectKind, Cascade, &[&CorpusItem]) -> Result<Vec<bool>, CoreError>,
    {
        let end = self.end + self.window.step;
        if self.next_pos < end {
            return Err(CoreError::Window(format!(
                "tick {} needs {} arrivals, only {} ingested",
                self.ticks + 1,
                end,
                self.next_pos
            )));
        }
        let start = end.saturating_sub(self.window.range);

        // Plan the slide without mutating anything: which entries expire
        // (ascending positions, all at the front), how many gap arrivals
        // to drop (STEP > RANGE: positions no window ever covers), and
        // which pending arrivals enter this window.
        let n_expired = self.entries.iter().take_while(|e| e.pos < start).count();
        let removed: Vec<u64> = self
            .entries
            .iter()
            .take(n_expired)
            .filter(|e| e.passes)
            .map(|e| e.item.id)
            .collect();
        let front_pos = self.next_pos - self.pending.len() as u64;
        let n_gap = (start.saturating_sub(front_pos) as usize).min(self.pending.len());
        let entrant_pos = front_pos + n_gap as u64;
        let n_entrants = (end.saturating_sub(entrant_pos) as usize).min(self.pending.len() - n_gap);

        // Score the entrants in place: metadata filter, then each content
        // cascade over the shrinking survivor pack (short-circuit
        // conjunction; decisions are order-independent so this matches
        // materialize-all semantics item for item). A failure here — the
        // `?` — leaves the executor bit-for-bit untouched, so the serve
        // layer can retry the same tick idempotently (RELIABILITY.md).
        let items: Vec<&CorpusItem> = self.pending.iter().skip(n_gap).take(n_entrants).collect();
        let (passes, scored) = evaluate(&self.query, &self.cascades, &items, &mut eval)?;
        drop(items);

        // Eval succeeded: commit the slide.
        self.entries.drain(..n_expired);
        self.pending.drain(..n_gap);
        let mut added = Vec::new();
        for (k, pass) in passes.iter().enumerate() {
            let item = self.pending.pop_front().expect("entrants counted above");
            if *pass {
                added.push(item.id);
            }
            self.entries.push_back(WindowEntry {
                pos: entrant_pos + k as u64,
                item,
                passes: *pass,
            });
        }
        let entered = n_entrants;

        self.end = end;
        self.ticks += 1;
        self.scored_total += scored as u64;
        Ok(TickDeltas {
            tick: self.ticks,
            window_start: start,
            window_end: end,
            added,
            removed,
            matched: self.entries.iter().filter(|e| e.passes).count(),
            entered,
            scored,
        })
    }

    /// [`ContinuousExecutor::tick`] through one [`VectorizedExecutor`] and
    /// one [`BatchScorer`] for every predicate — the single-backend path
    /// used by tests and benches.
    pub fn tick_batched(
        &mut self,
        exec: &VectorizedExecutor<'_>,
        scorer: &mut dyn BatchScorer,
    ) -> Result<TickDeltas, CoreError> {
        self.tick(|kind, cascade, pack| {
            let rel = exec.run_cascade_batched(kind, cascade, pack, scorer)?;
            Ok(rel.rows.iter().map(|r| r.value).collect())
        })
    }

    /// Re-evaluate the current window from scratch (every in-window item
    /// through metadata + every cascade pack), ignoring all carried
    /// decisions. Returns matched ids in arrival order. This is the
    /// RANGE-sized cost the incremental path avoids — and the equivalence
    /// oracle: `rescan() == matched()` always.
    pub fn rescan<E>(&self, mut eval: E) -> Result<Vec<u64>, CoreError>
    where
        E: FnMut(ObjectKind, Cascade, &[&CorpusItem]) -> Result<Vec<bool>, CoreError>,
    {
        let items: Vec<&CorpusItem> = self.entries.iter().map(|e| &e.item).collect();
        let (passes, _) = evaluate(&self.query, &self.cascades, &items, &mut eval)?;
        Ok(items
            .iter()
            .zip(&passes)
            .filter(|(_, &p)| p)
            .map(|(i, _)| i.id)
            .collect())
    }

    /// [`ContinuousExecutor::rescan`] through one executor + scorer.
    pub fn rescan_batched(
        &self,
        exec: &VectorizedExecutor<'_>,
        scorer: &mut dyn BatchScorer,
    ) -> Result<Vec<u64>, CoreError> {
        self.rescan(|kind, cascade, pack| {
            let rel = exec.run_cascade_batched(kind, cascade, pack, scorer)?;
            Ok(rel.rows.iter().map(|r| r.value).collect())
        })
    }
}

/// Evaluate `items` against the query: metadata filter, then each content
/// cascade over the surviving pack. Returns one pass flag per input item
/// plus the number of cascade rows scored.
fn evaluate<E>(
    query: &Query,
    cascades: &BTreeMap<ObjectKind, Cascade>,
    items: &[&CorpusItem],
    eval: &mut E,
) -> Result<(Vec<bool>, usize), CoreError>
where
    E: FnMut(ObjectKind, Cascade, &[&CorpusItem]) -> Result<Vec<bool>, CoreError>,
{
    let mut survivors: Vec<usize> = (0..items.len())
        .filter(|&i| query.metadata.iter().all(|p| p.holds(items[i])))
        .collect();
    let mut scored = 0usize;
    for &kind in &query.content {
        if survivors.is_empty() {
            break;
        }
        let cascade = *cascades
            .get(&kind)
            .ok_or_else(|| CoreError::Window(format!("no cascade for '{}'", kind.name())))?;
        let pack: Vec<&CorpusItem> = survivors.iter().map(|&i| items[i]).collect();
        let passes = eval(kind, cascade, &pack)?;
        if passes.len() != pack.len() {
            return Err(CoreError::Window(format!(
                "eval returned {} decisions for a pack of {}",
                passes.len(),
                pack.len()
            )));
        }
        scored += pack.len();
        survivors = survivors
            .into_iter()
            .zip(&passes)
            .filter(|(_, &p)| p)
            .map(|(i, _)| i)
            .collect();
    }
    let mut flags = vec![false; items.len()];
    for i in survivors {
        flags[i] = true;
    }
    Ok((flags, scored))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::CostContext;
    use crate::exec::ItemScorerBatchAdapter;
    use crate::query::{Corpus, ItemScorer, QueryProcessor};
    use crate::thresholds::{DecisionThresholds, ThresholdTable};
    use tahoma_costmodel::{AnalyticProfiler, DeviceProfile, Scenario};
    use tahoma_mathx::DetRng;
    use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
    use tahoma_zoo::{ModelId, ModelRepository, PredicateSpec};

    /// Deterministic pseudo-random scorer (same shape as the exec
    /// property-test scorer): score depends only on (model, item id).
    struct HashScorer {
        seed: u64,
    }

    impl ItemScorer for HashScorer {
        fn score(&self, model: ModelId, item: &CorpusItem) -> f32 {
            let mut rng = DetRng::from_coords(self.seed ^ ((model.0 as u64) << 32), item.id);
            rng.uniform() as f32
        }
    }

    fn fixture() -> (ModelRepository, ThresholdTable, CostContext) {
        let repo = build_surrogate_repository(
            PredicateSpec::for_kind(ObjectKind::Fence),
            &SurrogateBuildConfig {
                n_config: 120,
                n_eval: 150,
                seed: 0xC0F1,
                variants: Some(
                    tahoma_zoo::variant::paper_variants()
                        .into_iter()
                        .step_by(23)
                        .collect(),
                ),
                ..Default::default()
            },
            &DeviceProfile::k80(),
        );
        let thresholds = ThresholdTable {
            settings: vec![0.95],
            per_model: vec![
                vec![DecisionThresholds {
                    p_low: 0.3,
                    p_high: 0.7,
                }];
                repo.len()
            ],
        };
        let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
        let cost = CostContext::build(&repo, &profiler);
        (repo, thresholds, cost)
    }

    fn standing(range: u64, step: u64) -> (ContinuousExecutor, Corpus) {
        let query =
            Query::parse("SELECT * FROM frames WHERE contains_object(fence)").expect("parses");
        let mut cascades = BTreeMap::new();
        cascades.insert(ObjectKind::Fence, Cascade::new(&[(0, 0), (3, 0)]));
        let window = WindowSpec::new(range, step).expect("valid");
        let exec = ContinuousExecutor::register(query, cascades, window).expect("registers");
        let corpus = Corpus::synthetic(256, 0.4, 0x7E57);
        (exec, corpus)
    }

    #[test]
    fn window_spec_validates() {
        assert!(WindowSpec::new(0, 1).is_err());
        assert!(WindowSpec::new(1, 0).is_err());
        assert!(WindowSpec::new(4, 8).is_ok(), "gaps are legal");
    }

    #[test]
    fn register_requires_cascades() {
        let query =
            Query::parse("SELECT * FROM frames WHERE contains_object(acorn)").expect("parses");
        let err = ContinuousExecutor::register(
            query,
            BTreeMap::new(),
            WindowSpec::new(4, 2).expect("valid"),
        );
        assert!(err.is_err());
    }

    #[test]
    fn tick_ahead_of_arrivals_errors() {
        let (mut cx, corpus) = standing(8, 4);
        let (repo, thresholds, cost) = fixture();
        let exec = VectorizedExecutor::new(&repo, &thresholds, &cost);
        let scorer = HashScorer { seed: 1 };
        let mut adapter = ItemScorerBatchAdapter(&scorer);
        for item in corpus.items.iter().take(3) {
            cx.ingest(item.clone());
        }
        assert!(matches!(
            cx.tick_batched(&exec, &mut adapter),
            Err(CoreError::Window(_))
        ));
        cx.ingest(corpus.items[3].clone());
        assert!(cx.tick_batched(&exec, &mut adapter).is_ok());
    }

    #[test]
    fn incremental_equals_rescan_and_reference() {
        let (mut cx, corpus) = standing(16, 4);
        let (repo, thresholds, cost) = fixture();
        let exec = VectorizedExecutor::new(&repo, &thresholds, &cost);
        let scorer = HashScorer { seed: 0xAB };
        let mut prev: Vec<u64> = Vec::new();
        let mut feed = corpus.items.iter();
        for tick in 1..=20u64 {
            let mut cxadapter = ItemScorerBatchAdapter(&scorer);
            for _ in 0..4 {
                cx.ingest(feed.next().expect("corpus big enough").clone());
            }
            let d = cx.tick_batched(&exec, &mut cxadapter).expect("ticks");
            assert_eq!(d.tick, tick);
            let matched = cx.matched();
            assert_eq!(matched.len(), d.matched);
            // Deltas reconstruct the matched set from the previous one.
            let mut rebuilt: Vec<u64> = prev
                .iter()
                .filter(|id| !d.removed.contains(id))
                .copied()
                .collect();
            rebuilt.extend(&d.added);
            assert_eq!(rebuilt, matched, "tick {tick} deltas");
            // From-scratch rescan through the batched path agrees.
            let mut fresh = ItemScorerBatchAdapter(&scorer);
            assert_eq!(
                cx.rescan_batched(&exec, &mut fresh).expect("rescan"),
                matched
            );
            // And so does the PR 5 reference path over the window corpus.
            let window_items: Vec<CorpusItem> = cx.entries.iter().map(|e| e.item.clone()).collect();
            let window_corpus = Corpus {
                items: window_items,
            };
            let qp = QueryProcessor::new(&repo, &thresholds, &cost);
            let reference = qp
                .execute(cx.query(), &window_corpus, &cx.cascades, &scorer)
                .expect("reference executes");
            assert_eq!(reference.matched_ids, matched, "tick {tick} vs reference");
            prev = matched;
        }
        assert!(cx.scored_total() > 0);
    }

    #[test]
    fn gap_windows_skip_unseen_positions() {
        // STEP 8 > RANGE 2: only the last 2 arrivals of each step are ever
        // scored; the executor must neither score nor retain the gap.
        let (mut cx, corpus) = standing(2, 8);
        let (repo, thresholds, cost) = fixture();
        let exec = VectorizedExecutor::new(&repo, &thresholds, &cost);
        let scorer = HashScorer { seed: 7 };
        let mut adapter = ItemScorerBatchAdapter(&scorer);
        for item in corpus.items.iter().take(16) {
            cx.ingest(item.clone());
        }
        let d1 = cx.tick_batched(&exec, &mut adapter).expect("tick 1");
        assert_eq!((d1.window_start, d1.window_end), (6, 8));
        assert_eq!(d1.entered, 2);
        assert!(cx.window_len() <= 2);
        let d2 = cx.tick_batched(&exec, &mut adapter).expect("tick 2");
        assert_eq!((d2.window_start, d2.window_end), (14, 16));
        assert_eq!(d2.entered, 2);
        // Everything from the first window expired.
        let expired: Vec<u64> = d1.added;
        assert_eq!(d2.removed, expired);
    }

    #[test]
    fn metadata_predicates_filter_before_scoring() {
        let query =
            Query::parse("SELECT * FROM frames WHERE camera = 1 AND contains_object(fence)")
                .expect("parses");
        let mut cascades = BTreeMap::new();
        cascades.insert(ObjectKind::Fence, Cascade::new(&[(0, 0)]));
        let mut cx =
            ContinuousExecutor::register(query, cascades, WindowSpec::new(8, 8).expect("valid"))
                .expect("registers");
        let corpus = Corpus::synthetic(8, 0.5, 3);
        for item in &corpus.items {
            cx.ingest(item.clone());
        }
        let expected_meta: Vec<u64> = corpus
            .items
            .iter()
            .filter(|i| i.camera == 1)
            .map(|i| i.id)
            .collect();
        // A pass-everything eval: matched == metadata survivors, and the
        // pack never contains a metadata-failing item.
        let d = cx
            .tick(|_, _, pack| {
                assert!(pack.iter().all(|i| i.camera == 1));
                Ok(vec![true; pack.len()])
            })
            .expect("ticks");
        assert_eq!(d.added, expected_meta);
    }
}

//! Vectorized cascade execution: batch-at-a-time query processing with
//! planner-ordered short-circuiting.
//!
//! The reference executor ([`crate::query::QueryProcessor::run_cascade_reference`])
//! walks *item-at-a-time*: for each metadata survivor it climbs the cascade
//! through a per-(item, level) virtual scoring call, and every content
//! predicate re-scans the full survivor set in query-text order. This
//! module replaces that loop with the column-engine execution shape:
//!
//! * **Level-major execution with survivor compaction**
//!   ([`run_level_major`]): each cascade level scores the still-undecided
//!   items as one contiguous pack through a single [`BatchScorer`] call,
//!   thresholds are applied over the whole score vector, and the survivor
//!   pack is compacted in place. This is exactly the shape §IV's cost
//!   model accounts in: an item that stops at level *k* pays the level
//!   prefix cost `fixed + Σ infer(0..=k) + Σ marginal(distinct reps in
//!   0..=k)` — the executor prices decisions from that same prefix table,
//!   so the batched walk is decision-for-decision *and* cost-for-cost
//!   identical to the reference (property-tested in
//!   `tests/exec_proptests.rs`).
//! * **Planner-ordered short-circuiting** ([`VectorizedExecutor::execute`]):
//!   content predicates run in [`crate::planner::order_predicates`] rank
//!   order (ascending cost/rejection) over the *shrinking* conjunction
//!   survivor set, instead of query order over everything. Because scores
//!   are deterministic per (model, item), pruned items can never re-enter
//!   a later predicate's pass set, so `matched_ids` is invariant under the
//!   reordering (regression-tested). The opt-in
//!   [`ExecOptions::materialize_all`] keeps the full-relation semantics
//!   the figure-reproduction experiments read (every predicate over every
//!   survivor, query order).
//! * **Batch scoring backends**: [`SurrogateBatchScorer`] hoists the
//!   per-(model, split) variant separation and noise-stream derivation out
//!   of the item loop (one [`tahoma_zoo::surrogate::VariantStream`] per
//!   cascade level, not per (item, level) — the same hoist
//!   `SurrogateScorer::score_population` does for repository building),
//!   and [`NnBatchScorer`] serves *real* CNN inference: encoded frames are
//!   fetched from a [`RepresentationStore`] and decoded into pooled
//!   buffers, each level's input representation is transcoded through a
//!   shared [`TranscodeEngine`], and the pack is scored in one
//!   `Sequential::infer_batch` GEMM pass. A representation shared by
//!   several cascade levels is materialized **once per item**, not once
//!   per (item, level) — the physical-representation reuse §V-B's lattice
//!   plans and the cost model already prices via `rep_marginal_s`, applied
//!   to live pixels instead of simulated seconds.

use crate::cascade::{Cascade, MAX_LEVELS};
use crate::error::CoreError;
use crate::evaluator::{CostContext, Outcome};
use crate::planner::{order_indices, PlannedPredicate};
use crate::query::{
    Corpus, CorpusItem, ItemScorer, PredicateRelation, Query, QueryResult, RelationRow,
    CORPUS_SCORE_SALT,
};
use crate::thresholds::ThresholdTable;
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;
use tahoma_imagery::engine::TranscodeEngine;
use tahoma_imagery::{Fetched, ObjectKind, Representation, RepresentationStore};
use tahoma_nn::Sequential;
use tahoma_zoo::surrogate::{Split, VariantStream};
use tahoma_zoo::{ModelId, ModelRepository, SurrogateScorer};

// ---------------------------------------------------------------------------
// Batch scoring
// ---------------------------------------------------------------------------

/// One packed level's worth of still-undecided items.
#[derive(Clone, Copy)]
pub struct ScorePack<'a> {
    /// The packed items, in survivor (compaction) order.
    pub items: &'a [&'a CorpusItem],
    /// Index of each packed item within the full item slice the enclosing
    /// [`BatchScorer::begin_cascade`] saw — strictly increasing. `None`
    /// for packs scored outside an executor cascade run. Columnar backends
    /// use these to gather from per-cascade column arrays instead of
    /// chasing scattered item pointers.
    pub indices: Option<&'a [usize]>,
}

impl<'a> ScorePack<'a> {
    /// A standalone pack with no enclosing cascade context.
    pub fn standalone(items: &'a [&'a CorpusItem]) -> ScorePack<'a> {
        ScorePack {
            items,
            indices: None,
        }
    }
}

/// Scores a pack of items against one model in a single call — the
/// vectorized counterpart of [`ItemScorer`]. Implementations append exactly
/// `pack.items.len()` scores to `out` (the executor clears it first), in
/// pack order, and may keep mutable state (stream caches, column arrays,
/// decode pools, model activations) across calls.
pub trait BatchScorer {
    /// Called once before each cascade run with the cascade about to
    /// execute and the full item slice it will run over, so backends can
    /// hoist per-cascade state — variant streams, columnar copies of the
    /// per-item scoring fields, shared-representation plans — and reset
    /// per-run caches. The default does nothing.
    fn begin_cascade(&mut self, cascade: &Cascade, items: &[&CorpusItem]) {
        let _ = (cascade, items);
    }

    /// Append `model`'s score for every item of the pack to `out`.
    fn score_batch(&mut self, model: ModelId, pack: ScorePack<'_>, out: &mut Vec<f32>);
}

/// Adapts any [`ItemScorer`] to the batch interface by looping it — the
/// bridge that lets [`crate::query::QueryProcessor::execute`] keep its
/// item-scorer signature while running on the vectorized executor. Scores
/// are trivially identical to the wrapped scorer's.
pub struct ItemScorerBatchAdapter<'a>(pub &'a dyn ItemScorer);

impl BatchScorer for ItemScorerBatchAdapter<'_> {
    fn score_batch(&mut self, model: ModelId, pack: ScorePack<'_>, out: &mut Vec<f32>) {
        out.extend(pack.items.iter().map(|item| self.0.score(model, item)));
    }
}

/// Surrogate-backed batch scorer: the vectorized counterpart of
/// [`crate::query::SurrogateItemScorer`], bit-identical to it score for
/// score. Two hoists make it fast:
///
/// * the per-(model, split) derivation — variant separation (seeded RNG
///   draw plus exponentials) and the noise-stream seed — happens once per
///   cascade level in [`BatchScorer::begin_cascade`], not per (item,
///   level);
/// * the per-item scoring fields (salted id, ground-truth label,
///   difficulty) are extracted into dense column arrays once per cascade,
///   so later levels gather 16-byte rows by survivor index instead of
///   re-chasing scattered `CorpusItem` heap structures — the
///   column-oriented execution shape the module docs cite.
pub struct SurrogateBatchScorer<'a> {
    scorer: &'a SurrogateScorer,
    repo: &'a ModelRepository,
    streams: Vec<(u32, VariantStream)>,
    /// Columnar (salted id, label, difficulty) rows for the cascade's full
    /// item slice, built in `begin_cascade`.
    cols: Vec<(u64, bool, f32)>,
}

impl<'a> SurrogateBatchScorer<'a> {
    /// Bind the predicate's surrogate family to the repository whose model
    /// ids cascades reference.
    pub fn new(scorer: &'a SurrogateScorer, repo: &'a ModelRepository) -> SurrogateBatchScorer<'a> {
        SurrogateBatchScorer {
            scorer,
            repo,
            streams: Vec::new(),
            cols: Vec::new(),
        }
    }

    fn stream_for(&mut self, model: ModelId) -> VariantStream {
        if let Some(&(_, s)) = self.streams.iter().find(|(id, _)| *id == model.0) {
            return s;
        }
        let s = self
            .scorer
            .variant_stream(&self.repo.entry(model).variant, Split::Eval);
        self.streams.push((model.0, s));
        s
    }
}

impl BatchScorer for SurrogateBatchScorer<'_> {
    fn begin_cascade(&mut self, cascade: &Cascade, items: &[&CorpusItem]) {
        self.streams.clear();
        for l in 0..cascade.depth() {
            self.stream_for(ModelId(cascade.model_at(l) as u32));
        }
        self.cols.clear();
        // Column extraction pays for itself only when a later level will
        // re-gather survivors; a depth-1 cascade scores every item exactly
        // once, straight off the item refs.
        if cascade.depth() > 1 {
            let kind = self.scorer.pred.kind;
            self.cols.extend(items.iter().map(|item| {
                (
                    item.id ^ CORPUS_SCORE_SALT,
                    item.contains(kind),
                    item.difficulty,
                )
            }));
        }
    }

    fn score_batch(&mut self, model: ModelId, pack: ScorePack<'_>, out: &mut Vec<f32>) {
        let stream = self.stream_for(model);
        match pack.indices {
            // Executor pack: gather the dense column rows by survivor index.
            Some(indices) if !self.cols.is_empty() => {
                stream.score_into(indices.iter().map(|&i| self.cols[i]), out);
            }
            // Standalone pack (or no begin_cascade yet): extract inline.
            _ => {
                let kind = self.scorer.pred.kind;
                stream.score_into(
                    pack.items.iter().map(|item| {
                        (
                            item.id ^ CORPUS_SCORE_SALT,
                            item.contains(kind),
                            item.difficulty,
                        )
                    }),
                    out,
                );
            }
        }
    }
}

/// Per-stage wall-clock accounting of the real-NN scoring backend,
/// accumulated across [`BatchScorer::score_batch`] calls — what the
/// `query_exec` bench reports so the end-to-end number decomposes into the
/// paper's cost-model stages (data handling vs inference, §IV).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NnStageStats {
    /// Fetching encoded representations from the store and decoding them
    /// into pooled pixel buffers.
    pub fetch_decode_s: f64,
    /// Transcoding a stored source representation into a level's input
    /// representation — only paid when the exact representation is not
    /// stored (the ONGOING layout pays zero here).
    pub transcode_s: f64,
    /// Per-image standardization (zero mean / unit variance), the model
    /// input discipline shared with the training path.
    pub standardize_s: f64,
    /// Batched CNN inference (`Sequential::infer_batch`).
    pub infer_s: f64,
    /// `score_batch` calls served.
    pub batches: u64,
    /// Items scored (sum of pack sizes).
    pub items_scored: u64,
    /// Pack slots served from the shared-representation cache instead of a
    /// fresh fetch/transcode.
    pub cache_hits: u64,
    /// Pack slots whose stored representation was quarantined (corrupt or
    /// persistently unreadable) and were served through the
    /// transcode-from-source degradation path instead (RELIABILITY.md).
    pub degraded_fetches: u64,
}

struct NnModel {
    rep: Representation,
    model: Sequential,
}

/// Real-CNN batch scorer: store fetch → pooled decode → transcode →
/// standardize → `infer_batch`.
///
/// Per pack item the backend obtains the model's input representation
/// either directly from the [`RepresentationStore`] (the ONGOING layout:
/// the representation was materialized at ingest) or by fetching a stored
/// *source* representation and transcoding through the engine (the
/// fallback when only the full frame is stored — the source representation
/// must be RGB). Inputs are standardized per image, matching the training
/// path's input discipline, then the whole pack runs through one batched
/// GEMM inference pass.
///
/// Representations used by more than one level of the current cascade are
/// cached per item for the duration of the cascade run, so the §V-B
/// sharing discount (`rep_marginal_s` charged once per distinct
/// representation) holds for the live pixel work too. Decode and
/// standardize buffers recycle through the scorer's own engine pool (the
/// store is borrowed shared and never touched mutably); steady-state
/// scoring performs no large allocations outside the cache inserts for
/// shared representations.
///
/// Scores depend on the GEMM batch shape only in final-ulp rounding (the
/// batch-1 dense path uses the matvec kernel's fold tree); decisions are
/// deterministic for a fixed pack sequence, which the executor's
/// level-major walk fixes.
///
/// # Panics
///
/// `score_batch` panics when a cascade level's model was never
/// [`NnBatchScorer::register`]ed, or when an item's representation is
/// absent (or quarantined) from the store and no usable source
/// representation was configured — deployment-configuration errors, not
/// data-dependent conditions. A corrupt or persistently unreadable stored
/// blob does *not* panic: the store quarantines it and the scorer degrades
/// to the transcode-from-source path (see RELIABILITY.md).
pub struct NnBatchScorer<'a> {
    store: &'a RepresentationStore,
    models: HashMap<u32, NnModel>,
    engine: TranscodeEngine,
    source_rep: Option<Representation>,
    shared: Vec<Representation>,
    cache: HashMap<(u64, Representation), Vec<f32>>,
    input: Vec<f32>,
    stats: NnStageStats,
}

impl<'a> NnBatchScorer<'a> {
    /// Create a scorer over a store (borrowed shared: every store read
    /// goes through the caller-engine fetch path, so scorers can share a
    /// store). Register models before executing.
    pub fn new(store: &'a RepresentationStore) -> NnBatchScorer<'a> {
        NnBatchScorer {
            store,
            models: HashMap::new(),
            engine: TranscodeEngine::new(),
            source_rep: None,
            shared: Vec::new(),
            cache: HashMap::new(),
            input: Vec::new(),
            stats: NnStageStats::default(),
        }
    }

    /// Configure the stored source representation to transcode from when a
    /// model's exact input representation is not in the store. Must be RGB
    /// (transcoding derives color planes from it).
    pub fn with_source(mut self, rep: Representation) -> NnBatchScorer<'a> {
        self.source_rep = Some(rep);
        self
    }

    /// Register the network serving `id`, consuming `rep` as its input.
    pub fn register(&mut self, id: ModelId, rep: Representation, model: Sequential) {
        self.models.insert(id.0, NnModel { rep, model });
    }

    /// Register a whole repository's networks, aligned with `repo.entries`
    /// (the shape `build_real_repository_keeping_models` returns).
    pub fn register_repository(&mut self, repo: &ModelRepository, models: Vec<Sequential>) {
        assert_eq!(repo.len(), models.len(), "one network per repository entry");
        for (entry, model) in repo.entries.iter().zip(models) {
            self.register(entry.variant.id, entry.variant.input, model);
        }
    }

    /// Per-stage timings accumulated since construction (or the last
    /// [`NnBatchScorer::reset_stats`]).
    pub fn stats(&self) -> NnStageStats {
        self.stats
    }

    /// Zero the stage accounting.
    pub fn reset_stats(&mut self) {
        self.stats = NnStageStats::default();
    }

    /// Standardized input pixels for one (item, representation): direct
    /// pooled fetch when the store holds the representation, otherwise
    /// fetch-source + transcode.
    fn materialize_input(
        &mut self,
        item: &CorpusItem,
        rep: Representation,
    ) -> tahoma_imagery::Image {
        let t0 = Instant::now();
        let direct = self.store.fetch_classified(item.id, rep, &mut self.engine);
        self.stats.fetch_decode_s += t0.elapsed().as_secs_f64();
        // Every buffer — decoded fetches and transcode outputs alike —
        // comes from and returns to the scorer's own engine pool; the
        // store itself is only borrowed shared.
        let img = match direct {
            Fetched::Hit(img) => img,
            Fetched::Absent | Fetched::Quarantined => {
                // Quarantined records degrade to the same source-transcode
                // fallback as never-materialized ones — same source pixels,
                // same transcode, bitwise the same input — but are counted
                // so the serve layer can surface the degradation.
                if matches!(direct, Fetched::Quarantined) {
                    self.stats.degraded_fetches += 1;
                }
                let src_rep = self.source_rep.unwrap_or_else(|| {
                    panic!(
                        "item {} has no stored {rep} and no source representation is configured",
                        item.id
                    )
                });
                let t1 = Instant::now();
                // The pinned path retries harder and never quarantines:
                // losing the source would make the degradation permanent.
                let src = self
                    .store
                    .fetch_pinned(item.id, src_rep, &mut self.engine)
                    .unwrap_or_else(|| panic!("item {} has no stored source {src_rep}", item.id))
                    .unwrap_or_else(|e| panic!("item {} source {src_rep}: {e}", item.id));
                self.stats.fetch_decode_s += t1.elapsed().as_secs_f64();
                let t2 = Instant::now();
                // Replay the ingest-time lattice plan, not a direct
                // transcode: multi-hop plans make the two differ, and the
                // degraded input must be bitwise what was stored.
                let out = self
                    .store
                    .rederive(&src, rep)
                    .unwrap_or_else(|e| panic!("item {} transcode to {rep}: {e}", item.id));
                self.stats.transcode_s += t2.elapsed().as_secs_f64();
                self.engine.recycle([src]);
                out
            }
        };
        let t3 = Instant::now();
        let standardized = self.engine.standardize(&img);
        self.stats.standardize_s += t3.elapsed().as_secs_f64();
        self.engine.recycle([img]);
        standardized
    }
}

impl BatchScorer for NnBatchScorer<'_> {
    fn begin_cascade(&mut self, cascade: &Cascade, _items: &[&CorpusItem]) {
        // The shared-representation cache is scoped to one cascade run:
        // its hits are exactly the level pairs the cost model discounts.
        // Its standardized buffers came out of the engine pool; hand them
        // back so repeated cascade runs stay allocation-free.
        for (_, data) in self.cache.drain() {
            self.engine.recycle_buffer(data);
        }
        self.shared.clear();
        let mut reps: Vec<Representation> = Vec::with_capacity(cascade.depth());
        for l in 0..cascade.depth() {
            if let Some(m) = self.models.get(&(cascade.model_at(l) as u32)) {
                reps.push(m.rep);
            }
        }
        for (i, &rep) in reps.iter().enumerate() {
            if reps[..i].contains(&rep) && !self.shared.contains(&rep) {
                self.shared.push(rep);
            }
        }
    }

    fn score_batch(&mut self, model: ModelId, pack: ScorePack<'_>, out: &mut Vec<f32>) {
        let items = pack.items;
        let rep = self
            .models
            .get(&model.0)
            .unwrap_or_else(|| panic!("model m{} is not registered", model.0))
            .rep;
        let share = self.shared.contains(&rep);
        self.input.clear();
        self.input.reserve(items.len() * rep.value_count());
        let mut input = std::mem::take(&mut self.input);
        for item in items {
            if share {
                if let Some(cached) = self.cache.get(&(item.id, rep)) {
                    self.stats.cache_hits += 1;
                    input.extend_from_slice(cached);
                    continue;
                }
            }
            let standardized = self.materialize_input(item, rep);
            input.extend_from_slice(standardized.data());
            if share {
                self.cache.insert((item.id, rep), standardized.into_data());
            } else {
                self.engine.recycle([standardized]);
            }
        }
        // Second lookup because `materialize_input` needed `&mut self` in
        // between; the map itself is never mutated after registration.
        let entry = self
            .models
            .get_mut(&model.0)
            .unwrap_or_else(|| panic!("model m{} is not registered", model.0));
        let t = Instant::now();
        out.extend(entry.model.predict_proba_batch(&input, items.len()));
        self.stats.infer_s += t.elapsed().as_secs_f64();
        self.stats.batches += 1;
        self.stats.items_scored += items.len() as u64;
        self.input = input;
    }
}

// ---------------------------------------------------------------------------
// Shared (concurrent) real-NN scoring
// ---------------------------------------------------------------------------

/// Immutable model zoo for concurrent serving: the same (model id →
/// network, input representation) table [`NnBatchScorer`] keeps, but built
/// once and then only ever borrowed shared. Every inference goes through
/// `Sequential::predict_proba_shared`, so any number of query sessions can
/// score against one zoo simultaneously, each bringing its own
/// [`tahoma_nn::InferScratch`].
pub struct SharedModelZoo {
    models: HashMap<u32, NnModel>,
    source_rep: Option<Representation>,
}

impl SharedModelZoo {
    /// Empty zoo; register models before serving.
    pub fn new() -> SharedModelZoo {
        SharedModelZoo {
            models: HashMap::new(),
            source_rep: None,
        }
    }

    /// Configure the stored source representation to transcode from when a
    /// model's exact input representation is not in the store. Must be RGB.
    pub fn with_source(mut self, rep: Representation) -> SharedModelZoo {
        self.source_rep = Some(rep);
        self
    }

    /// Register the network serving `id`, consuming `rep` as its input.
    pub fn register(&mut self, id: ModelId, rep: Representation, model: Sequential) {
        self.models.insert(id.0, NnModel { rep, model });
    }

    /// Register a whole repository's networks, aligned with `repo.entries`
    /// (the shape `build_real_repository_keeping_models` returns).
    pub fn register_repository(&mut self, repo: &ModelRepository, models: Vec<Sequential>) {
        assert_eq!(repo.len(), models.len(), "one network per repository entry");
        for (entry, model) in repo.entries.iter().zip(models) {
            self.register(entry.variant.id, entry.variant.input, model);
        }
    }

    /// Input representation of a registered model, `None` if unregistered.
    pub fn input_rep(&self, model: ModelId) -> Option<Representation> {
        self.models.get(&model.0).map(|m| m.rep)
    }

    /// Score `n` standardized input rows (concatenated, row-major) against
    /// `model` with caller-owned scratch. This is the zoo's only inference
    /// entry point — brokers and direct callers alike land here, so their
    /// scores are bitwise identical by construction.
    ///
    /// # Panics
    ///
    /// Panics when `model` was never registered.
    pub fn infer(
        &self,
        model: ModelId,
        rows: &[f32],
        n: usize,
        scratch: &mut tahoma_nn::InferScratch,
    ) -> Vec<f32> {
        let entry = self
            .models
            .get(&model.0)
            .unwrap_or_else(|| panic!("model m{} is not registered", model.0));
        entry.model.predict_proba_shared(rows, n, scratch)
    }
}

impl Default for SharedModelZoo {
    fn default() -> SharedModelZoo {
        SharedModelZoo::new()
    }
}

/// Where a [`SharedNnScorer`] sends its materialized input rows for
/// inference. The serving layer implements this with a cross-query batch
/// broker (merging survivor packs from concurrent queries into one GEMM
/// call); `None` in the scorer means "score locally on this thread".
///
/// Contract: return exactly `n` probabilities, in row order, numerically
/// identical to [`SharedModelZoo::infer`] with a
/// [`tahoma_nn::InferScratch::coalescing`] scratch — which batch-shape
/// invariance makes automatic for any implementation that concatenates
/// rows and calls the zoo.
pub trait InferDispatch: Sync {
    /// Score `n` standardized rows against `model`.
    fn infer(&self, model: ModelId, rows: &[f32], n: usize) -> Vec<f32>;
}

/// Per-query mutable state for [`SharedNnScorer`] — everything that was a
/// field of [`NnBatchScorer`] but is written during scoring lives here, so
/// the store/zoo stay shared. Sessions are cheap to create and profitable
/// to reuse (the engine's buffer pool and the GEMM scratch warm up), which
/// is why the serving layer checks them out of a pool per query.
#[derive(Default)]
pub struct NnSessionScratch {
    engine: TranscodeEngine,
    infer: tahoma_nn::InferScratch,
    shared: Vec<Representation>,
    cache: HashMap<(u64, Representation), Vec<f32>>,
    input: Vec<f32>,
    stats: NnStageStats,
}

impl NnSessionScratch {
    /// Fresh session scratch. The inference scratch is pinned to the
    /// batched GEMM path ([`tahoma_nn::InferScratch::coalescing`]) so a
    /// row's score never depends on whether it was scored alone here or
    /// merged into a broker batch with other queries' rows.
    pub fn new() -> NnSessionScratch {
        NnSessionScratch {
            infer: tahoma_nn::InferScratch::coalescing(),
            ..Default::default()
        }
    }

    /// Per-stage timings accumulated across queries served with this
    /// scratch (or since [`NnSessionScratch::reset_stats`]).
    pub fn stats(&self) -> NnStageStats {
        self.stats
    }

    /// Zero the stage accounting.
    pub fn reset_stats(&mut self) {
        self.stats = NnStageStats::default();
    }
}

/// Concurrent counterpart of [`NnBatchScorer`]: same fetch → decode →
/// transcode → standardize → batched-GEMM pipeline, same per-cascade
/// shared-representation cache, but the store and model zoo are borrowed
/// *shared* — every mutation happens in the query's own
/// [`NnSessionScratch`]. Optionally routes inference through an
/// [`InferDispatch`] so the serving layer can coalesce packs from
/// concurrent queries into one GEMM call.
///
/// Scoring is bitwise identical to a serial run regardless of concurrency
/// or coalescing: inputs are standardized per item (shape-independent),
/// and the forced-GEMM inference path is batch-shape invariant.
///
/// # Panics
///
/// Same configuration panics as [`NnBatchScorer`]: unregistered cascade
/// model, or item missing/quarantined with no usable source
/// representation. Corrupt blobs quarantine and degrade instead.
pub struct SharedNnScorer<'a> {
    store: &'a RepresentationStore,
    zoo: &'a SharedModelZoo,
    dispatch: Option<&'a dyn InferDispatch>,
    scratch: &'a mut NnSessionScratch,
}

impl<'a> SharedNnScorer<'a> {
    /// Score locally: inference runs on the calling thread.
    pub fn new(
        store: &'a RepresentationStore,
        zoo: &'a SharedModelZoo,
        scratch: &'a mut NnSessionScratch,
    ) -> SharedNnScorer<'a> {
        SharedNnScorer {
            store,
            zoo,
            dispatch: None,
            scratch,
        }
    }

    /// Route inference through `dispatch` (the serving layer's coalescing
    /// broker) instead of scoring locally.
    pub fn with_dispatch(mut self, dispatch: &'a dyn InferDispatch) -> SharedNnScorer<'a> {
        self.dispatch = Some(dispatch);
        self
    }

    /// Standardized input pixels for one (item, representation) — the
    /// shared-borrow version of [`NnBatchScorer::materialize_input`], with
    /// every buffer drawn from and recycled to the session's own engine.
    fn materialize_input(
        &mut self,
        item: &CorpusItem,
        rep: Representation,
    ) -> tahoma_imagery::Image {
        let sc = &mut *self.scratch;
        let t0 = Instant::now();
        let direct = self.store.fetch_classified(item.id, rep, &mut sc.engine);
        sc.stats.fetch_decode_s += t0.elapsed().as_secs_f64();
        let img = match direct {
            Fetched::Hit(img) => img,
            Fetched::Absent | Fetched::Quarantined => {
                // Quarantined → same source-transcode fallback as absent
                // (bitwise-identical input), counted for STATS visibility.
                if matches!(direct, Fetched::Quarantined) {
                    sc.stats.degraded_fetches += 1;
                }
                let src_rep = self.zoo.source_rep.unwrap_or_else(|| {
                    panic!(
                        "item {} has no stored {rep} and no source representation is configured",
                        item.id
                    )
                });
                let t1 = Instant::now();
                // Pinned: the source must not be quarantined by a fault
                // burst, or the degradation would become permanent.
                let src = self
                    .store
                    .fetch_pinned(item.id, src_rep, &mut sc.engine)
                    .unwrap_or_else(|| panic!("item {} has no stored source {src_rep}", item.id))
                    .unwrap_or_else(|e| panic!("item {} source {src_rep}: {e}", item.id));
                sc.stats.fetch_decode_s += t1.elapsed().as_secs_f64();
                let t2 = Instant::now();
                // Lattice-plan replay, not direct transcode: the degraded
                // input must be bitwise what ingest stored.
                let out = self
                    .store
                    .rederive(&src, rep)
                    .unwrap_or_else(|e| panic!("item {} transcode to {rep}: {e}", item.id));
                sc.stats.transcode_s += t2.elapsed().as_secs_f64();
                sc.engine.recycle([src]);
                out
            }
        };
        let t3 = Instant::now();
        let standardized = sc.engine.standardize(&img);
        sc.stats.standardize_s += t3.elapsed().as_secs_f64();
        sc.engine.recycle([img]);
        standardized
    }
}

impl BatchScorer for SharedNnScorer<'_> {
    fn begin_cascade(&mut self, cascade: &Cascade, _items: &[&CorpusItem]) {
        let sc = &mut *self.scratch;
        for (_, data) in sc.cache.drain() {
            sc.engine.recycle_buffer(data);
        }
        sc.shared.clear();
        let mut reps: Vec<Representation> = Vec::with_capacity(cascade.depth());
        for l in 0..cascade.depth() {
            if let Some(rep) = self.zoo.input_rep(ModelId(cascade.model_at(l) as u32)) {
                reps.push(rep);
            }
        }
        for (i, &rep) in reps.iter().enumerate() {
            if reps[..i].contains(&rep) && !sc.shared.contains(&rep) {
                sc.shared.push(rep);
            }
        }
    }

    fn score_batch(&mut self, model: ModelId, pack: ScorePack<'_>, out: &mut Vec<f32>) {
        let items = pack.items;
        let rep = self
            .zoo
            .input_rep(model)
            .unwrap_or_else(|| panic!("model m{} is not registered", model.0));
        let share = self.scratch.shared.contains(&rep);
        self.scratch.input.clear();
        self.scratch.input.reserve(items.len() * rep.value_count());
        let mut input = std::mem::take(&mut self.scratch.input);
        for item in items {
            if share {
                if let Some(cached) = self.scratch.cache.get(&(item.id, rep)) {
                    self.scratch.stats.cache_hits += 1;
                    input.extend_from_slice(cached);
                    continue;
                }
            }
            let standardized = self.materialize_input(item, rep);
            input.extend_from_slice(standardized.data());
            if share {
                self.scratch
                    .cache
                    .insert((item.id, rep), standardized.into_data());
            } else {
                self.scratch.engine.recycle([standardized]);
            }
        }
        let t = Instant::now();
        match self.dispatch {
            Some(broker) => out.extend(broker.infer(model, &input, items.len())),
            None => out.extend(
                self.zoo
                    .infer(model, &input, items.len(), &mut self.scratch.infer),
            ),
        }
        self.scratch.stats.infer_s += t.elapsed().as_secs_f64();
        self.scratch.stats.batches += 1;
        self.scratch.stats.items_scored += items.len() as u64;
        self.scratch.input = input;
    }
}

// ---------------------------------------------------------------------------
// Level-major cascade driver
// ---------------------------------------------------------------------------

/// One item's cascade outcome from [`run_level_major`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelDecision {
    /// The decided label.
    pub value: bool,
    /// Score of the deciding level.
    pub score: f32,
    /// Cascade level that decided (0-based).
    pub level: u8,
}

/// Run one cascade level-major over `n_items` abstract items: per level,
/// the still-undecided item indices are packed contiguously and handed to
/// `score_level` (level, model, pack, score buffer) in one call; decisions
/// are applied vectorially (terminal level at 0.5, earlier levels through
/// the threshold table — a NaN score satisfies neither threshold
/// inequality and falls through, and compares `>= 0.5` false at the
/// terminal, exactly the item-at-a-time rules) and the pack is compacted
/// in place. Decisions are identical to the item-major walk for any
/// deterministic scorer because score visitation order never affects a
/// per-(model, item) score.
///
/// Generic over what an "item" is — the query executor drives it with
/// corpus items, TAHOMA+DD with video frames.
pub fn run_level_major(
    cascade: &Cascade,
    thresholds: &ThresholdTable,
    n_items: usize,
    mut score_level: impl FnMut(usize, ModelId, &[usize], &mut Vec<f32>),
) -> Vec<LevelDecision> {
    let depth = cascade.depth();
    let mut decided = vec![
        LevelDecision {
            value: false,
            score: f32::NAN,
            level: 0,
        };
        n_items
    ];
    let mut undecided: Vec<usize> = (0..n_items).collect();
    let mut scores: Vec<f32> = Vec::new();
    for l in 0..depth {
        if undecided.is_empty() {
            break;
        }
        let m = cascade.model_at(l);
        scores.clear();
        score_level(l, ModelId(m as u32), &undecided, &mut scores);
        assert_eq!(
            scores.len(),
            undecided.len(),
            "scorer must produce one score per packed item"
        );
        let terminal = l + 1 == depth;
        let thr = (!terminal).then(|| thresholds.get(m as usize, cascade.setting_at(l) as usize));
        let mut w = 0usize;
        for k in 0..undecided.len() {
            // In-place compaction: the write cursor trails the read cursor,
            // so `undecided[w] = i` never clobbers an unread entry.
            let i = undecided[k];
            let s = scores[k];
            let decision = match thr {
                None => Some(s >= 0.5),
                Some(thr) => thr.decide(s),
            };
            match decision {
                Some(value) => {
                    decided[i] = LevelDecision {
                        value,
                        score: s,
                        level: l as u8,
                    }
                }
                None => {
                    undecided[w] = i;
                    w += 1;
                }
            }
        }
        undecided.truncate(w);
    }
    debug_assert!(undecided.is_empty(), "terminal level always decides");
    decided
}

/// The §IV level prefix costs of a cascade: an item stopping at level `l`
/// pays `prefix[l] = fixed + Σ infer(0..=l) + Σ marginal(distinct reps in
/// 0..=l)`. The accumulation order matches the reference executor's
/// per-item walk operation for operation, so the batched total time is
/// bitwise equal to the reference's.
fn level_prefix_costs(cascade: &Cascade, cost: &CostContext) -> [f64; MAX_LEVELS] {
    let depth = cascade.depth();
    let mut prefix = [0.0f64; MAX_LEVELS];
    let mut seen = [u32::MAX; MAX_LEVELS];
    let mut acc = cost.fixed_s;
    for l in 0..depth {
        let m = cascade.model_at(l) as usize;
        acc += cost.infer_s[m];
        let key = cost.rep_key[m];
        if !seen[..l].contains(&key) {
            acc += cost.rep_marginal_s[m];
        }
        seen[l] = key;
        prefix[l] = acc;
    }
    prefix
}

/// Planner statistics of one cascade measured on the repository's eval
/// split: the scenario-independent [`Outcome`] (accuracy, stop-level
/// histogram) plus the cascade's positive rate — the selectivity estimate
/// [`PlannedPredicate`] wants for conjunctive ordering. One walk through
/// [`crate::evaluator::simulate_one_naive_stats`], so the planner's
/// statistics share the evaluator's decision rules by construction.
pub fn predicate_stats(
    repo: &ModelRepository,
    thresholds: &ThresholdTable,
    cascade: &Cascade,
) -> (Outcome, f64) {
    crate::evaluator::simulate_one_naive_stats(repo, thresholds, cascade)
}

// ---------------------------------------------------------------------------
// Query execution
// ---------------------------------------------------------------------------

/// Execution-mode knobs for [`VectorizedExecutor::execute`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecOptions {
    /// Evaluate every content predicate over the *full* metadata-survivor
    /// set in query-text order — the reference relation semantics the
    /// figure-reproduction experiments consume (every relation covers
    /// every survivor). The default (`false`) short-circuits: predicates
    /// run in planner rank order over the shrinking conjunction survivor
    /// set, and each relation covers only the items still undecided when
    /// it ran. `matched_ids` is identical either way.
    pub materialize_all: bool,
}

/// The vectorized query executor — the product query path. Binds the same
/// triple as [`crate::query::QueryProcessor`] (which wraps it).
pub struct VectorizedExecutor<'a> {
    repo: &'a ModelRepository,
    thresholds: &'a ThresholdTable,
    cost: &'a CostContext,
}

impl<'a> VectorizedExecutor<'a> {
    /// Bind repository, calibrated thresholds, and scenario pricing.
    pub fn new(
        repo: &'a ModelRepository,
        thresholds: &'a ThresholdTable,
        cost: &'a CostContext,
    ) -> VectorizedExecutor<'a> {
        VectorizedExecutor {
            repo,
            thresholds,
            cost,
        }
    }

    fn validate_cascade(&self, cascade: &Cascade) -> Result<(), CoreError> {
        for l in 0..cascade.depth() {
            let m = cascade.model_at(l) as usize;
            if m >= self.repo.len() {
                return Err(CoreError::UnknownModel(m as u32));
            }
        }
        Ok(())
    }

    /// Run one cascade level-major over the given items, producing its
    /// relation. Decision-for-decision identical to
    /// [`crate::query::QueryProcessor::run_cascade_reference`] for any
    /// scorer whose batch scores equal its per-item scores, with the
    /// simulated time accumulated in the same operation order (bitwise
    /// equal totals).
    pub fn run_cascade_batched(
        &self,
        kind: ObjectKind,
        cascade: Cascade,
        items: &[&CorpusItem],
        scorer: &mut dyn BatchScorer,
    ) -> Result<PredicateRelation, CoreError> {
        self.validate_cascade(&cascade)?;
        scorer.begin_cascade(&cascade, items);
        let mut pack: Vec<&CorpusItem> = Vec::new();
        let decisions = run_level_major(
            &cascade,
            self.thresholds,
            items.len(),
            |_, model, idxs, out| {
                pack.clear();
                pack.extend(idxs.iter().map(|&i| items[i]));
                scorer.score_batch(
                    model,
                    ScorePack {
                        items: &pack,
                        indices: Some(idxs),
                    },
                    out,
                );
            },
        );
        let prefix = level_prefix_costs(&cascade, self.cost);
        let mut rows = Vec::with_capacity(items.len());
        let mut total_time = 0.0f64;
        let mut level_histogram = [0u64; MAX_LEVELS];
        let mut correct = 0usize;
        for (item, d) in items.iter().zip(&decisions) {
            level_histogram[d.level as usize] += 1;
            if d.value == item.contains(kind) {
                correct += 1;
            }
            total_time += prefix[d.level as usize];
            rows.push(RelationRow {
                id: item.id,
                value: d.value,
                score: d.score,
                decided_at: d.level,
            });
        }
        let n = items.len().max(1) as f64;
        Ok(PredicateRelation {
            kind,
            rows,
            simulated_time_s: total_time,
            throughput_fps: if total_time > 0.0 {
                n / total_time
            } else {
                0.0
            },
            level_histogram,
            accuracy: correct as f64 / n,
        })
    }

    /// Execute a parsed query: metadata filter, then the content
    /// predicates through the level-major cascade driver.
    ///
    /// By default predicates run in planner rank order
    /// ([`order_predicates`](crate::planner::order_predicates), statistics
    /// measured on the eval split via [`predicate_stats`]) over the
    /// shrinking survivor set; [`ExecOptions::materialize_all`] restores
    /// the reference full-relation semantics. Relations are always
    /// returned in query-text order regardless of execution order.
    ///
    /// The conjunction intersection is a sorted merge over survivor
    /// indices (both sides are subsequences of the metadata-survivor
    /// order), replacing the reference's per-predicate `HashSet` build.
    pub fn execute(
        &self,
        query: &Query,
        corpus: &Corpus,
        cascades: &BTreeMap<ObjectKind, Cascade>,
        scorer: &mut dyn BatchScorer,
        opts: &ExecOptions,
    ) -> Result<QueryResult, CoreError> {
        let surviving: Vec<&CorpusItem> = corpus
            .items
            .iter()
            .filter(|item| query.metadata.iter().all(|p| p.holds(item)))
            .collect();

        let by_pos: Vec<Cascade> = query
            .content
            .iter()
            .map(|kind| {
                cascades
                    .get(kind)
                    .copied()
                    .ok_or(CoreError::EmptySet("cascade for content predicate"))
            })
            .collect::<Result<_, _>>()?;
        for cascade in &by_pos {
            self.validate_cascade(cascade)?;
        }

        let n_preds = query.content.len();
        let order: Vec<usize> = if opts.materialize_all || n_preds <= 1 {
            (0..n_preds).collect()
        } else {
            let planned: Vec<PlannedPredicate> = query
                .content
                .iter()
                .zip(&by_pos)
                .map(|(&kind, &cascade)| {
                    let (outcome, selectivity) =
                        predicate_stats(self.repo, self.thresholds, &cascade);
                    PlannedPredicate::new(
                        kind,
                        cascade,
                        &outcome,
                        self.repo.eval.len(),
                        self.cost,
                        selectivity,
                    )
                })
                .collect();
            order_indices(&planned)
        };

        let mut relations: Vec<Option<PredicateRelation>> = (0..n_preds).map(|_| None).collect();
        // Conjunction survivors as indices into `surviving` — strictly
        // increasing, so every intersection below is a linear merge.
        let mut passing: Vec<usize> = (0..surviving.len()).collect();
        let mut pack_items: Vec<&CorpusItem> = Vec::new();
        for &pi in &order {
            let kind = query.content[pi];
            let cascade = by_pos[pi];
            let relation = if opts.materialize_all {
                // Full relation: row k corresponds to survivor k; merge the
                // passing rows (ascending survivor indices) into the
                // current conjunction set.
                let rel = self.run_cascade_batched(kind, cascade, &surviving, scorer)?;
                intersect_sorted(
                    &mut passing,
                    rel.rows
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.value)
                        .map(|(k, _)| k),
                );
                rel
            } else {
                // Short-circuit: only the current conjunction survivors are
                // scored; row k corresponds to passing[k], so compaction is
                // the intersection.
                pack_items.clear();
                pack_items.extend(passing.iter().map(|&i| surviving[i]));
                let rel = self.run_cascade_batched(kind, cascade, &pack_items, scorer)?;
                let mut w = 0usize;
                for (k, r) in rel.rows.iter().enumerate() {
                    if r.value {
                        passing[w] = passing[k];
                        w += 1;
                    }
                }
                passing.truncate(w);
                rel
            };
            relations[pi] = Some(relation);
        }
        Ok(QueryResult {
            matched_ids: passing.iter().map(|&i| surviving[i].id).collect(),
            metadata_survivors: surviving.len(),
            relations: relations
                .into_iter()
                // The loop above assigns `Some` at every index.
                .map(|r| r.unwrap_or_else(|| unreachable!("every content predicate executed")))
                .collect(),
        })
    }
}

/// Retain only the elements of `passing` present in `pass` — both strictly
/// increasing index sequences — by a single forward merge (the reference
/// path built a fresh `HashSet` per predicate for this).
fn intersect_sorted(passing: &mut Vec<usize>, pass: impl IntoIterator<Item = usize>) {
    let mut pass = pass.into_iter();
    let mut next = pass.next();
    passing.retain(|&i| {
        while let Some(p) = next {
            if p < i {
                next = pass.next();
            } else {
                break;
            }
        }
        if next == Some(i) {
            next = pass.next();
            true
        } else {
            false
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thresholds::DecisionThresholds;

    #[test]
    fn intersect_sorted_merges() {
        let mut a = vec![0, 2, 5, 7, 9];
        intersect_sorted(&mut a, vec![1, 2, 3, 7, 8, 10]);
        assert_eq!(a, vec![2, 7]);
        let mut b = vec![1, 2, 3];
        intersect_sorted(&mut b, Vec::new());
        assert!(b.is_empty());
        let mut c: Vec<usize> = Vec::new();
        intersect_sorted(&mut c, vec![0, 1]);
        assert!(c.is_empty());
    }

    #[test]
    fn level_major_compacts_and_decides_everything() {
        // Level 0 decides even indices (score 0.9/0.1 alternating against
        // wide-open thresholds); the terminal decides the rest at 0.5.
        let thresholds = ThresholdTable {
            settings: vec![0.95],
            per_model: vec![
                vec![DecisionThresholds {
                    p_low: 0.2,
                    p_high: 0.8,
                }],
                vec![DecisionThresholds::never_decide()],
            ],
        };
        let cascade = Cascade::new(&[(0, 0), (1, 0)]);
        let mut packs: Vec<Vec<usize>> = Vec::new();
        let decisions = run_level_major(&cascade, &thresholds, 6, |l, _, pack, out| {
            packs.push(pack.to_vec());
            out.extend(pack.iter().map(|&i| match (l, i % 2) {
                (0, 0) => 0.9,
                (0, _) => 0.5,
                (_, _) => {
                    if i < 3 {
                        0.7
                    } else {
                        0.2
                    }
                }
            }));
        });
        assert_eq!(packs[0], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(packs[1], vec![1, 3, 5], "survivors compacted in order");
        for (i, d) in decisions.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!((d.value, d.level), (true, 0), "item {i}");
            } else {
                assert_eq!((d.value, d.level), (i < 3, 1), "item {i}");
            }
        }
    }

    #[test]
    fn level_major_nan_scores_fall_through_and_lose_at_terminal() {
        let thresholds = ThresholdTable {
            settings: vec![0.95],
            per_model: vec![
                vec![DecisionThresholds {
                    p_low: 0.4,
                    p_high: 0.6,
                }],
                vec![DecisionThresholds::never_decide()],
            ],
        };
        let cascade = Cascade::new(&[(0, 0), (1, 0)]);
        let decisions = run_level_major(&cascade, &thresholds, 2, |_, _, pack, out| {
            out.extend(pack.iter().map(|_| f32::NAN));
        });
        for d in &decisions {
            assert_eq!(d.level, 1, "NaN must stay uncertain at level 0");
            assert!(!d.value, "NaN >= 0.5 is false at the terminal");
        }
    }
}

//! Total orderings over floats where a NaN *loses*.
//!
//! Every ranking in the query path — predicate ordering, frontier sweeps,
//! constraint selection — compares costs, accuracies, or throughputs that
//! are arithmetic products of calibration and simulation. A degenerate
//! input (an empty split, a zero-image scenario, an `INFINITY/INFINITY`
//! rank) can turn any of them into NaN, and `partial_cmp(..).expect(..)`
//! would then panic mid-query. These helpers define *total* orderings in
//! which NaN is simply the worst possible measurement: it sorts after every
//! real value in an ascending sort, never wins a `max_by`, and never wins a
//! `min_by` — the malformed candidate is demoted instead of aborting the
//! plan.
//!
//! Two totalizations are provided, differing only in where NaN goes:
//!
//! * [`nan_last`] — NaN above `+∞`. Use for ascending sorts ("cheapest
//!   first, unmeasurable last") and for `min_by` ("closest match wins, NaN
//!   loses").
//! * [`nan_lowest`] — NaN below `-∞`. Use for `max_by` ("best wins, NaN
//!   loses") and, with arguments swapped, for descending sorts.
//!
//! Both are consistent with `==`/`<` on non-NaN values and order NaNs among
//! themselves by [`f64::total_cmp`] (so the ordering stays total and
//! antisymmetric even with NaNs of both signs in play).

use std::cmp::Ordering;

macro_rules! nan_orderings {
    ($nan_last:ident, $nan_lowest:ident, $t:ty) => {
        /// Ascending total order with every NaN greater than `+∞`.
        #[inline]
        pub fn $nan_last(a: $t, b: $t) -> Ordering {
            match (a.is_nan(), b.is_nan()) {
                (false, false) => a.total_cmp(&b),
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (true, true) => a.total_cmp(&b),
            }
        }

        /// Ascending total order with every NaN less than `-∞`.
        #[inline]
        pub fn $nan_lowest(a: $t, b: $t) -> Ordering {
            match (a.is_nan(), b.is_nan()) {
                (false, false) => a.total_cmp(&b),
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (true, true) => a.total_cmp(&b),
            }
        }
    };
}

nan_orderings!(nan_last, nan_lowest, f64);
nan_orderings!(nan_last_f32, nan_lowest_f32, f32);

#[cfg(test)]
mod tests {
    use super::*;

    const WEIRD: [f64; 7] = [
        f64::NAN,
        f64::NEG_INFINITY,
        -1.0,
        0.0,
        1.0,
        f64::INFINITY,
        f64::NAN,
    ];

    #[test]
    fn nan_last_sorts_nan_to_the_end() {
        let mut v = WEIRD;
        v.sort_by(|a, b| nan_last(*a, *b));
        assert_eq!(v[0], f64::NEG_INFINITY);
        assert_eq!(v[4], f64::INFINITY);
        assert!(v[5].is_nan() && v[6].is_nan());
    }

    #[test]
    fn nan_lowest_sorts_nan_to_the_front() {
        let mut v = WEIRD;
        v.sort_by(|a, b| nan_lowest(*a, *b));
        assert!(v[0].is_nan() && v[1].is_nan());
        assert_eq!(v[2], f64::NEG_INFINITY);
        assert_eq!(v[6], f64::INFINITY);
    }

    #[test]
    fn nan_never_wins_a_selection() {
        let vals = [f64::NAN, 2.0, 1.0, f64::NAN];
        let max = vals
            .iter()
            .copied()
            .max_by(|a, b| nan_lowest(*a, *b))
            .unwrap();
        assert_eq!(max, 2.0);
        let min = vals
            .iter()
            .copied()
            .min_by(|a, b| nan_last(*a, *b))
            .unwrap();
        assert_eq!(min, 1.0);
    }

    #[test]
    fn orderings_are_total_and_antisymmetric() {
        for &a in &WEIRD {
            for &b in &WEIRD {
                assert_eq!(nan_last(a, b), nan_last(b, a).reverse());
                assert_eq!(nan_lowest(a, b), nan_lowest(b, a).reverse());
                assert_eq!(
                    nan_last_f32(a as f32, b as f32),
                    nan_last_f32(b as f32, a as f32).reverse()
                );
                assert_eq!(
                    nan_lowest_f32(a as f32, b as f32),
                    nan_lowest_f32(b as f32, a as f32).reverse()
                );
            }
        }
    }

    #[test]
    fn agrees_with_partial_cmp_on_real_values() {
        for &a in &[-3.0, 0.0, 7.5, f64::INFINITY] {
            for &b in &[-3.0, 0.0, 7.5, f64::INFINITY] {
                assert_eq!(nan_last(a, b), a.partial_cmp(&b).unwrap());
                assert_eq!(nan_lowest(a, b), a.partial_cmp(&b).unwrap());
            }
        }
    }
}

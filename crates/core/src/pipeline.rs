//! End-to-end system assembly (paper Fig. 2).
//!
//! `TahomaSystem::initialize` is the paper's *system initialization* phase:
//! calibrate thresholds on the config split, enumerate the cascade set, and
//! simulate every cascade against the precomputed eval outputs. At *query
//! time*, [`TahomaSystem::frontier`] prices the outcomes under the current
//! deployment scenario and hands the Pareto-optimal set to the selector —
//! cheap enough to re-run per query, which is exactly how the paper argues
//! deployment-awareness should work (§V-D: cascade selection "can be part of
//! query planning at query execution time").

use crate::builder::{build_cascades, BuilderConfig};
use crate::cascade::Cascade;
use crate::error::CoreError;
use crate::evaluator::{simulate_all, CascadeOutcomes, CostContext, DecisionTables};
use crate::pareto::{pareto_frontier, ParetoPoint};
use crate::selector::{select_matching_accuracy, select_with_constraints, Constraints};
use crate::thresholds::{calibrate_all, ThresholdTable};
use tahoma_costmodel::CostProfiler;
use tahoma_zoo::{ModelId, ModelRepository};

/// A priced Pareto frontier plus the pricing it was computed under.
#[derive(Debug, Clone)]
pub struct Frontier {
    /// Frontier points sorted by throughput descending.
    pub points: Vec<ParetoPoint>,
}

impl Frontier {
    /// As (accuracy, throughput) pairs, for the ALC machinery.
    pub fn acc_thr(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.accuracy, p.throughput))
            .collect()
    }

    /// The most accurate point (a NaN accuracy never wins).
    pub fn most_accurate(&self) -> Option<ParetoPoint> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| crate::order::nan_lowest(a.accuracy, b.accuracy))
    }
}

/// One initialized TAHOMA instance for a single binary predicate.
#[derive(Debug)]
pub struct TahomaSystem {
    /// The model repository (scores + inference costs).
    pub repo: ModelRepository,
    /// Calibrated thresholds per (model, precision setting).
    pub thresholds: ThresholdTable,
    /// Precomputed decision tables over the eval split.
    pub tables: DecisionTables,
    /// Scenario-independent outcomes of the full cascade set.
    pub outcomes: CascadeOutcomes,
}

impl TahomaSystem {
    /// Run system initialization: calibrate, enumerate, simulate.
    pub fn initialize(
        repo: ModelRepository,
        precision_settings: &[f64],
        builder: &BuilderConfig,
    ) -> TahomaSystem {
        let thresholds = calibrate_all(&repo, precision_settings);
        let tables = DecisionTables::build(&repo, &thresholds);
        let cascades = build_cascades(builder);
        let outcomes = simulate_all(&tables, cascades);
        TahomaSystem {
            repo,
            thresholds,
            tables,
            outcomes,
        }
    }

    /// Convenience: initialize with the paper's main configuration.
    pub fn initialize_paper_main(repo: ModelRepository) -> TahomaSystem {
        let builder = BuilderConfig::paper_main(&repo);
        TahomaSystem::initialize(repo, &crate::thresholds::PAPER_PRECISION_SETTINGS, &builder)
    }

    /// Number of cascades under evaluation.
    pub fn n_cascades(&self) -> usize {
        self.outcomes.cascades.len()
    }

    /// Price every cascade under a profiler: (accuracy, throughput) pairs in
    /// cascade order.
    pub fn priced_points(&self, profiler: &dyn CostProfiler) -> Vec<(f64, f64)> {
        let ctx = CostContext::build(&self.repo, profiler);
        self.outcomes
            .cascades
            .iter()
            .zip(&self.outcomes.outcomes)
            .map(|(c, o)| {
                (
                    o.accuracy as f64,
                    ctx.throughput_fps(c, o, self.outcomes.n_images),
                )
            })
            .collect()
    }

    /// The Pareto frontier under a profiler's scenario.
    pub fn frontier(&self, profiler: &dyn CostProfiler) -> Frontier {
        let ctx = CostContext::build(&self.repo, profiler);
        let acc: Vec<f32> = self.outcomes.outcomes.iter().map(|o| o.accuracy).collect();
        let thr: Vec<f64> = self
            .outcomes
            .cascades
            .iter()
            .zip(&self.outcomes.outcomes)
            .map(|(c, o)| ctx.throughput_fps(c, o, self.outcomes.n_images))
            .collect();
        Frontier {
            points: pareto_frontier(&acc, &thr),
        }
    }

    /// Re-price a set of cascade indices under another scenario (the
    /// oblivious-vs-aware machinery of Fig. 9 / Table III). Returned points
    /// are (accuracy, throughput) in the given index order — generally *not*
    /// a frontier under the new pricing.
    pub fn reprice(&self, indices: &[usize], profiler: &dyn CostProfiler) -> Vec<(f64, f64)> {
        let ctx = CostContext::build(&self.repo, profiler);
        indices
            .iter()
            .map(|&i| {
                let c = &self.outcomes.cascades[i];
                let o = &self.outcomes.outcomes[i];
                (
                    o.accuracy as f64,
                    ctx.throughput_fps(c, o, self.outcomes.n_images),
                )
            })
            .collect()
    }

    /// Select a cascade under user constraints in a scenario.
    pub fn select(
        &self,
        profiler: &dyn CostProfiler,
        constraints: Constraints,
    ) -> Result<SelectedCascade, CoreError> {
        let frontier = self.frontier(profiler);
        let point = select_with_constraints(&frontier.points, constraints)?;
        Ok(self.selected(point))
    }

    /// Select the optimal cascade matching a reference model's accuracy
    /// (the ResNet50 comparisons of §VII-B).
    pub fn select_matching_model(
        &self,
        profiler: &dyn CostProfiler,
        reference: ModelId,
    ) -> Result<SelectedCascade, CoreError> {
        let ref_acc = self.repo.eval_accuracy(reference);
        let frontier = self.frontier(profiler);
        let point = select_matching_accuracy(&frontier.points, ref_acc)?;
        Ok(self.selected(point))
    }

    fn selected(&self, point: ParetoPoint) -> SelectedCascade {
        SelectedCascade {
            cascade: self.outcomes.cascades[point.idx],
            accuracy: point.accuracy,
            throughput: point.throughput,
            description: self.describe(&self.outcomes.cascades[point.idx]),
        }
    }

    /// Human-readable cascade description using model tags, e.g.
    /// `"c1x16-d16@30x30-gray (p>=0.97) -> resnet50"`.
    pub fn describe(&self, cascade: &Cascade) -> String {
        let mut s = String::new();
        for (l, &(m, setting)) in cascade.levels().iter().enumerate() {
            if l > 0 {
                s.push_str(" -> ");
            }
            s.push_str(&self.repo.entries[m as usize].variant.tag());
            if l + 1 < cascade.depth() {
                s.push_str(&format!(
                    " (p>={:.2})",
                    self.thresholds.settings[setting as usize]
                ));
            }
        }
        s
    }
}

/// A cascade chosen for execution, with its expected operating point.
#[derive(Debug, Clone)]
pub struct SelectedCascade {
    /// The cascade.
    pub cascade: Cascade,
    /// Eval accuracy.
    pub accuracy: f64,
    /// Expected throughput under the selection scenario (fps).
    pub throughput: f64,
    /// Human-readable plan.
    pub description: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_costmodel::{AnalyticProfiler, Scenario};
    use tahoma_imagery::ObjectKind;
    use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
    use tahoma_zoo::PredicateSpec;

    fn small_system(kind: ObjectKind) -> TahomaSystem {
        let repo = build_surrogate_repository(
            PredicateSpec::for_kind(kind),
            &SurrogateBuildConfig {
                n_config: 200,
                n_eval: 250,
                seed: 17,
                variants: Some(
                    tahoma_zoo::variant::paper_variants()
                        .into_iter()
                        .step_by(12)
                        .collect(),
                ),
                ..Default::default()
            },
            &tahoma_costmodel::DeviceProfile::k80(),
        );
        let builder = BuilderConfig {
            n_settings: 3,
            ..BuilderConfig::paper_main(&repo)
        };
        TahomaSystem::initialize(repo, &[0.93, 0.95, 0.99], &builder)
    }

    #[test]
    fn initialization_produces_consistent_state() {
        let sys = small_system(ObjectKind::Fence);
        // pool 30 + resnet: depth1 = 31; per setting: 30*30 + 30 + 30*30 = 1830
        // total = 31 + 3*1830 = 5521.
        assert_eq!(sys.n_cascades(), 5521);
        assert_eq!(sys.outcomes.outcomes.len(), sys.n_cascades());
    }

    #[test]
    fn frontier_is_nonempty_and_sorted() {
        let sys = small_system(ObjectKind::Fence);
        let f = sys.frontier(&AnalyticProfiler::paper_testbed(Scenario::Camera));
        assert!(f.points.len() > 3, "frontier has {} points", f.points.len());
        for w in f.points.windows(2) {
            assert!(w[0].throughput > w[1].throughput);
            assert!(w[0].accuracy < w[1].accuracy);
        }
    }

    #[test]
    fn cascades_beat_resnet_at_matching_accuracy() {
        let sys = small_system(ObjectKind::Komondor);
        let profiler = AnalyticProfiler::paper_testbed(Scenario::InferOnly);
        let resnet = sys.repo.resnet.unwrap();
        let selected = sys.select_matching_model(&profiler, resnet).unwrap();
        let resnet_fps = 1.0 / sys.repo.entry(resnet).infer_s;
        assert!(
            selected.throughput > resnet_fps * 5.0,
            "cascade {} fps vs resnet {resnet_fps:.1} fps",
            selected.throughput
        );
        assert!(selected.accuracy >= sys.repo.eval_accuracy(resnet) - 1e-9);
    }

    #[test]
    fn scenario_changes_the_frontier() {
        let sys = small_system(ObjectKind::Scorpion);
        let f_infer = sys.frontier(&AnalyticProfiler::paper_testbed(Scenario::InferOnly));
        let f_camera = sys.frontier(&AnalyticProfiler::paper_testbed(Scenario::Camera));
        let fastest_infer = f_infer.points[0].throughput;
        let fastest_camera = f_camera.points[0].throughput;
        assert!(
            fastest_infer > fastest_camera * 2.0,
            "INFER-ONLY {fastest_infer:.0} fps should dwarf CAMERA {fastest_camera:.0} fps"
        );
        // And the chosen cascade indices differ for at least part of the
        // frontier (the Fig. 9 phenomenon).
        let set_a: std::collections::HashSet<usize> =
            f_infer.points.iter().map(|p| p.idx).collect();
        let set_b: std::collections::HashSet<usize> =
            f_camera.points.iter().map(|p| p.idx).collect();
        assert!(set_a != set_b, "frontiers identical across scenarios");
    }

    #[test]
    fn reprice_preserves_accuracy_but_not_throughput() {
        let sys = small_system(ObjectKind::Wallet);
        let infer = AnalyticProfiler::paper_testbed(Scenario::InferOnly);
        let camera = AnalyticProfiler::paper_testbed(Scenario::Camera);
        let f = sys.frontier(&infer);
        let idxs: Vec<usize> = f.points.iter().map(|p| p.idx).collect();
        let repriced = sys.reprice(&idxs, &camera);
        for (p, (acc, thr)) in f.points.iter().zip(&repriced) {
            assert!((p.accuracy - acc).abs() < 1e-12);
            assert!(
                *thr <= p.throughput + 1e-9,
                "CAMERA cannot be faster than INFER-ONLY"
            );
        }
    }

    #[test]
    fn describe_names_models_and_settings() {
        let sys = small_system(ObjectKind::Acorn);
        let c = Cascade::new(&[(0, 2), (1, 0)]);
        let d = sys.describe(&c);
        assert!(d.contains(" -> "), "{d}");
        assert!(d.contains("p>=0.99"), "{d}");
    }

    #[test]
    fn constraint_selection_trades_accuracy_for_speed() {
        let sys = small_system(ObjectKind::Pinwheel);
        let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
        let strict = sys
            .select(
                &profiler,
                Constraints {
                    max_accuracy_loss: Some(0.0),
                    max_throughput_loss: None,
                },
            )
            .unwrap();
        let loose = sys
            .select(
                &profiler,
                Constraints {
                    max_accuracy_loss: Some(0.10),
                    max_throughput_loss: None,
                },
            )
            .unwrap();
        assert!(loose.throughput >= strict.throughput);
        assert!(loose.accuracy <= strict.accuracy + 1e-12);
    }
}

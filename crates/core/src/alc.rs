//! Area-to-the-left-of-the-curve (ALC) throughput comparison (§VII-A).
//!
//! The paper compares cascade sets by integrating throughput over a shared
//! accuracy range: plot points as (throughput, accuracy), interpolate as a
//! step function, integrate the area to the left of the curve, and divide by
//! the range width for an average throughput; the ratio of two ALCs is a
//! speedup. The step envelope `T(a) = max { throughput_i : accuracy_i >= a }`
//! also covers re-costed point sets that are no longer strict frontiers
//! ("These cascades are no longer a strict Pareto frontier, but we can still
//! compute ALC").

/// Step-envelope throughput at accuracy level `a`:
/// the best throughput among points with accuracy >= `a` (0 when none).
pub fn envelope_at(points: &[(f64, f64)], a: f64) -> f64 {
    points
        .iter()
        .filter(|(acc, _)| *acc >= a)
        .map(|(_, thr)| *thr)
        .fold(0.0, f64::max)
}

/// ALC of a point set over `[acc_lo, acc_hi]` via exact integration of the
/// step envelope. Points are (accuracy, throughput).
///
/// Panics if `acc_lo > acc_hi`.
pub fn alc(points: &[(f64, f64)], acc_lo: f64, acc_hi: f64) -> f64 {
    assert!(
        acc_lo <= acc_hi,
        "invalid accuracy range {acc_lo}..{acc_hi}"
    );
    if points.is_empty() || acc_lo == acc_hi {
        return 0.0;
    }
    // The envelope is piecewise constant with breakpoints at the points'
    // accuracies; integrate segment by segment. A NaN accuracy fails both
    // range comparisons and contributes no breakpoint (and `envelope_at`'s
    // `>=` filter ignores the point entirely), so malformed points simply
    // drop out of the integral; the sort stays total regardless.
    let mut breaks: Vec<f64> = points
        .iter()
        .map(|(a, _)| *a)
        .filter(|a| *a > acc_lo && *a < acc_hi)
        .collect();
    breaks.push(acc_lo);
    breaks.push(acc_hi);
    breaks.sort_by(|x, y| crate::order::nan_last(*x, *y));
    breaks.dedup();
    let mut area = 0.0;
    for w in breaks.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        // Envelope is constant on (lo, hi); sample just above lo.
        let t = envelope_at(points, lo + (hi - lo) * 1e-9);
        area += t * (hi - lo);
    }
    area
}

/// Average throughput over the range: ALC / width.
pub fn average_throughput(points: &[(f64, f64)], acc_lo: f64, acc_hi: f64) -> f64 {
    if acc_hi <= acc_lo {
        return 0.0;
    }
    alc(points, acc_lo, acc_hi) / (acc_hi - acc_lo)
}

/// Speedup of set `a` over set `b` on the shared range (ratio of ALCs).
/// Returns `f64::INFINITY` when `b` has zero area and `a` does not.
pub fn speedup(a: &[(f64, f64)], b: &[(f64, f64)], acc_lo: f64, acc_hi: f64) -> f64 {
    let alc_a = alc(a, acc_lo, acc_hi);
    let alc_b = alc(b, acc_lo, acc_hi);
    if alc_b == 0.0 {
        if alc_a == 0.0 {
            return 1.0;
        }
        return f64::INFINITY;
    }
    alc_a / alc_b
}

/// Shared accuracy range across several point sets (paper: "use the accuracy
/// range for the full set of cascades for each configuration and choose the
/// smallest said range"): the intersection of each set's [min, max].
/// Returns `None` when the intersection is empty.
pub fn shared_accuracy_range(sets: &[&[(f64, f64)]]) -> Option<(f64, f64)> {
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    for set in sets {
        if set.is_empty() {
            return None;
        }
        let min = set.iter().map(|(a, _)| *a).fold(f64::INFINITY, f64::min);
        let max = set
            .iter()
            .map(|(a, _)| *a)
            .fold(f64::NEG_INFINITY, f64::max);
        lo = lo.max(min);
        hi = hi.min(max);
    }
    (lo < hi).then_some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_picks_best_reachable_throughput() {
        let pts = [(0.9, 10.0), (0.8, 50.0), (0.7, 100.0)];
        assert_eq!(envelope_at(&pts, 0.95), 0.0);
        assert_eq!(envelope_at(&pts, 0.85), 10.0);
        assert_eq!(envelope_at(&pts, 0.75), 50.0);
        assert_eq!(envelope_at(&pts, 0.6), 100.0);
    }

    #[test]
    fn alc_of_single_point_is_rectangle() {
        let pts = [(0.9, 100.0)];
        // Envelope = 100 over [0.7, 0.9], 0 above.
        let a = alc(&pts, 0.7, 0.9);
        assert!((a - 100.0 * 0.2).abs() < 1e-9);
        let b = alc(&pts, 0.7, 1.0);
        assert!(
            (b - 100.0 * 0.2).abs() < 1e-9,
            "area above max accuracy is zero"
        );
    }

    #[test]
    fn alc_steps_accumulate() {
        let pts = [(0.8, 50.0), (0.9, 10.0)];
        // [0.7, 0.8): 50; [0.8, 0.9): wait — envelope at a in (0.7,0.8) is
        // max(thr of points with acc >= a) = 50; in (0.8, 0.9) it's 10.
        let a = alc(&pts, 0.7, 0.9);
        assert!((a - (50.0 * 0.1 + 10.0 * 0.1)).abs() < 1e-9, "got {a}");
    }

    #[test]
    fn average_throughput_divides_by_width() {
        let pts = [(1.0, 80.0)];
        let avg = average_throughput(&pts, 0.5, 1.0);
        assert!((avg - 80.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_is_ratio() {
        let fast = [(0.9, 1000.0)];
        let slow = [(0.9, 10.0)];
        let s = speedup(&fast, &slow, 0.5, 0.9);
        assert!((s - 100.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_handles_zero_area() {
        let some = [(0.9, 10.0)];
        let none: [(f64, f64); 0] = [];
        assert_eq!(speedup(&some, &none, 0.5, 0.9), f64::INFINITY);
        assert_eq!(speedup(&none, &none, 0.5, 0.9), 1.0);
    }

    #[test]
    fn shared_range_intersects() {
        let a = [(0.6, 1.0), (0.9, 1.0)];
        let b = [(0.7, 1.0), (0.95, 1.0)];
        let (lo, hi) = shared_accuracy_range(&[&a, &b]).unwrap();
        assert!((lo - 0.7).abs() < 1e-12);
        assert!((hi - 0.9).abs() < 1e-12);
    }

    #[test]
    fn disjoint_ranges_are_none() {
        let a = [(0.6, 1.0), (0.7, 1.0)];
        let b = [(0.8, 1.0), (0.9, 1.0)];
        assert!(shared_accuracy_range(&[&a, &b]).is_none());
    }

    #[test]
    fn alc_monotone_in_range_width() {
        let pts = [(0.7, 30.0), (0.85, 20.0), (0.95, 5.0)];
        let narrow = alc(&pts, 0.75, 0.85);
        let wide = alc(&pts, 0.7, 0.95);
        assert!(wide > narrow);
    }

    #[test]
    fn non_frontier_sets_are_handled() {
        // A dominated point must not raise the envelope anywhere.
        let frontier = [(0.8, 100.0), (0.9, 50.0)];
        let with_dominated = [(0.8, 100.0), (0.9, 50.0), (0.85, 40.0)];
        let a = alc(&frontier, 0.7, 0.95);
        let b = alc(&with_dominated, 0.7, 0.95);
        assert!((a - b).abs() < 1e-9);
    }
}

//! TAHOMA core: physical-representation-based predicate optimization.
//!
//! This crate implements the paper's contribution end to end:
//!
//! 1. **Decision thresholds** ([`thresholds`], §V-C): per model, a grid
//!    search on the config split finds `(p_low, p_high)` meeting a target
//!    precision while maximizing recall. Thresholds are calibrated
//!    *independently of any cascade* — the design choice that makes
//!    million-cascade evaluation tractable (§V-D).
//! 2. **Cascade construction** ([`builder`]): one- and two-level cascades
//!    over the model pool plus ResNet50-terminated variants — ~1.3 M
//!    cascades per predicate at paper scale — and deeper sweeps for the
//!    depth study (§VII-F).
//! 3. **Cascade evaluation** ([`evaluator`], §V-D/E): every model's
//!    precomputed eval-split outputs are reduced to per-(model, setting)
//!    decision tables; simulating a cascade is then a table walk. Accuracy
//!    and stop-level histograms are *scenario-independent*; deployment
//!    scenarios re-price the same outcomes cheaply.
//! 4. **Pareto frontiers and ALC** ([`pareto`], [`mod@alc`], §V-E, §VII-A):
//!    Kung-Luccio-Preparata maxima in O(n log n), step-function
//!    area-to-left-of-curve for frontier-vs-frontier speedups.
//! 5. **Cascade selection** ([`selector`]): the user's accuracy/throughput
//!    constraints (`U_acc`, `U_thru`), ResNet-matching selection, and the
//!    scenario-oblivious-vs-aware comparison behind Table III.
//! 6. **Query processing** ([`query`], §IV): a SQL-subset parser that
//!    decomposes queries into metadata predicates plus binary
//!    `contains_object` predicates, and an executor that runs the selected
//!    cascade over a corpus, producing the binary-predicate relation.
//! 7. **Vectorized execution** ([`exec`]): the batch-at-a-time product
//!    query path — level-major cascade execution with survivor
//!    compaction, planner-ordered short-circuiting between content
//!    predicates, and batch scoring backends (hoisted surrogate streams;
//!    real CNN inference over the representation store).
//! 8. **Continuous queries** ([`continuous`]): standing queries over live
//!    streams — sliding count windows (RANGE/STEP), tick-driven, with
//!    incremental scoring of only the newly-arrived items and per-tick
//!    result deltas; exactly equal to from-scratch window re-evaluation
//!    because cascade decisions are deterministic per (model, item).
//!
//! [`pipeline::TahomaSystem`] ties the stages together behind the
//! architecture in the paper's Fig. 2.

pub mod alc;
pub mod builder;
pub mod cascade;
pub mod continuous;
pub mod error;
pub mod evaluator;
pub mod exec;
pub mod materialized;
pub mod order;
pub mod pareto;
pub mod pipeline;
pub mod planner;
pub mod query;
pub mod selector;
pub mod thresholds;

pub use alc::{alc, average_throughput, shared_accuracy_range, speedup};
pub use builder::{build_cascades, BuilderConfig};
pub use cascade::{Cascade, MAX_LEVELS};
pub use continuous::{ContinuousExecutor, TickDeltas, WindowSpec};
pub use error::CoreError;
pub use evaluator::{simulate_all, CascadeOutcomes, CostContext};
pub use exec::{
    BatchScorer, ExecOptions, InferDispatch, NnBatchScorer, NnSessionScratch, SharedModelZoo,
    SharedNnScorer, SurrogateBatchScorer, VectorizedExecutor,
};
pub use order::{nan_last, nan_lowest};
pub use pareto::{pareto_frontier, ParetoPoint};
pub use pipeline::{Frontier, TahomaSystem};
pub use selector::{
    select_fastest, select_matching_accuracy, select_with_constraints, Constraints,
};
pub use thresholds::{
    calibrate, calibrate_all, DecisionThresholds, ThresholdTable, PAPER_PRECISION_SETTINGS,
};

//! Compact cascade representation.
//!
//! Millions of cascades are enumerated per predicate, so the encoding is a
//! fixed-size value type: up to [`MAX_LEVELS`] levels of (model index,
//! precision-setting index). The final level's setting is ignored — its
//! output is always accepted (§IV, Definition 7).

use std::fmt;

/// Maximum cascade depth supported by the evaluator.
pub const MAX_LEVELS: usize = 4;

/// One classifier cascade: an ordered list of (model, setting) levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cascade {
    levels: [(u16, u8); MAX_LEVELS],
    len: u8,
}

impl Cascade {
    /// Build from explicit levels. Panics when empty or longer than
    /// [`MAX_LEVELS`].
    pub fn new(levels: &[(u16, u8)]) -> Cascade {
        assert!(
            !levels.is_empty() && levels.len() <= MAX_LEVELS,
            "cascade must have 1..={MAX_LEVELS} levels, got {}",
            levels.len()
        );
        let mut arr = [(0u16, 0u8); MAX_LEVELS];
        arr[..levels.len()].copy_from_slice(levels);
        Cascade {
            levels: arr,
            len: levels.len() as u8,
        }
    }

    /// Single-model "cascade" (the degenerate case the paper notes often
    /// wins when raw speed is the priority, §VII-B).
    pub fn single(model: u16) -> Cascade {
        Cascade::new(&[(model, 0)])
    }

    /// Number of levels.
    #[inline]
    pub fn depth(&self) -> usize {
        self.len as usize
    }

    /// The levels as (model index, setting index) pairs.
    #[inline]
    pub fn levels(&self) -> &[(u16, u8)] {
        &self.levels[..self.len as usize]
    }

    /// Model index at a level.
    #[inline]
    pub fn model_at(&self, level: usize) -> u16 {
        debug_assert!(level < self.depth());
        self.levels[level].0
    }

    /// Setting index at a level (meaningless for the final level).
    #[inline]
    pub fn setting_at(&self, level: usize) -> u8 {
        debug_assert!(level < self.depth());
        self.levels[level].1
    }

    /// Append a terminal level, returning the extended cascade.
    /// Panics at [`MAX_LEVELS`].
    pub fn appended(&self, model: u16, setting: u8) -> Cascade {
        assert!(self.depth() < MAX_LEVELS, "cascade already at max depth");
        let mut c = *self;
        c.levels[c.len as usize] = (model, setting);
        c.len += 1;
        c
    }
}

impl fmt::Display for Cascade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (m, s)) in self.levels().iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            if i + 1 == self.depth() {
                write!(f, "m{m}")?; // terminal level: setting unused
            } else {
                write!(f, "m{m}(s{s})")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let c = Cascade::new(&[(5, 2), (9, 0)]);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.model_at(0), 5);
        assert_eq!(c.setting_at(0), 2);
        assert_eq!(c.model_at(1), 9);
    }

    #[test]
    fn single_is_depth_one() {
        let c = Cascade::single(7);
        assert_eq!(c.depth(), 1);
        assert_eq!(c.model_at(0), 7);
    }

    #[test]
    fn appended_extends() {
        let c = Cascade::single(1).appended(2, 3).appended(4, 0);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.levels(), &[(1, 0), (2, 3), (4, 0)]);
    }

    #[test]
    #[should_panic]
    fn too_deep_panics() {
        let mut c = Cascade::single(0);
        for i in 0..MAX_LEVELS {
            c = c.appended(i as u16, 0);
        }
    }

    #[test]
    fn display_marks_terminal_level() {
        let c = Cascade::new(&[(3, 1), (8, 0)]);
        assert_eq!(c.to_string(), "m3(s1) -> m8");
    }

    #[test]
    fn value_type_is_small() {
        // The enumeration materializes millions of these.
        assert!(std::mem::size_of::<Cascade>() <= 20);
    }
}

//! Content-based query processing (paper §IV).
//!
//! Queries like
//!
//! ```sql
//! SELECT * FROM frames WHERE contains_object(fence) AND location = 'Detroit'
//! ```
//!
//! decompose into *metadata predicates* (cheap, evaluated first) and binary
//! *content predicates* (expensive, implemented by a selected classifier
//! cascade). The executor runs the cascade over the images that survive the
//! metadata filter, materializing the paper's notional binary-predicate
//! relation and accounting simulated data-handling + inference cost per
//! image.
//!
//! Two execution paths share these types:
//!
//! * **Product path** — the vectorized, level-major executor in
//!   [`crate::exec`] (batch scoring, survivor compaction, planner-ordered
//!   short-circuiting). [`QueryProcessor::execute`] is a thin wrapper over
//!   it, pinned to the full-relation `materialize_all` semantics so
//!   existing consumers see unchanged results.
//! * **Reference path** —
//!   [`QueryProcessor::run_cascade_reference`]: the original
//!   item-at-a-time cascade walk, kept simple on purpose as the
//!   decision-identity oracle the executor is property-tested against
//!   (`tests/exec_proptests.rs`) and as the baseline side of the
//!   `query_exec` bench.

use crate::cascade::{Cascade, MAX_LEVELS};
use crate::error::CoreError;
use crate::evaluator::CostContext;
use crate::exec::{BatchScorer, ExecOptions, ItemScorerBatchAdapter, VectorizedExecutor};
use crate::thresholds::ThresholdTable;
use std::collections::BTreeMap;
use tahoma_imagery::ObjectKind;
use tahoma_mathx::DetRng;
use tahoma_zoo::{ModelId, ModelRepository};

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

/// One stored image/frame with its metadata.
#[derive(Debug, Clone)]
pub struct CorpusItem {
    /// Stable id.
    pub id: u64,
    /// Capture location.
    pub location: String,
    /// Camera identifier.
    pub camera: u64,
    /// Capture timestamp (seconds).
    pub timestamp: u64,
    /// Object categories present in the scene (ground truth).
    pub objects: Vec<ObjectKind>,
    /// Scene difficulty in [0, 1].
    pub difficulty: f32,
}

impl CorpusItem {
    /// Ground truth for one category.
    pub fn contains(&self, kind: ObjectKind) -> bool {
        self.objects.contains(&kind)
    }
}

/// A queryable collection of items.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// The items.
    pub items: Vec<CorpusItem>,
}

impl Corpus {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Synthesize a corpus: items spread over locations/cameras/time, with
    /// each category present independently at `prevalence`.
    pub fn synthetic(n: usize, prevalence: f64, seed: u64) -> Corpus {
        const LOCATIONS: [&str; 4] = ["Detroit", "Ann Arbor", "Lansing", "Flint"];
        let mut rng = DetRng::new(seed ^ 0xC00C);
        let mut items = Vec::with_capacity(n);
        for id in 0..n as u64 {
            let objects: Vec<ObjectKind> = ObjectKind::ALL
                .into_iter()
                .filter(|_| rng.bernoulli(prevalence))
                .collect();
            let difficulty = (0.40 * rng.uniform()
                + 0.30 * rng.uniform()
                + 0.15 * rng.uniform()
                + 0.15 * rng.uniform()) as f32;
            items.push(CorpusItem {
                id,
                location: LOCATIONS[rng.index(LOCATIONS.len())].to_string(),
                camera: rng.index(8) as u64,
                timestamp: 1_700_000_000 + id * 30,
                objects,
                difficulty,
            });
        }
        Corpus { items }
    }
}

// ---------------------------------------------------------------------------
// Query AST + parser
// ---------------------------------------------------------------------------

/// Comparison operators for metadata predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn holds_u64(self, a: u64, b: u64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A metadata predicate over the corpus schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaPredicate {
    /// `location = 'X'` / `location != 'X'`.
    Location(CmpOp, String),
    /// `camera <op> N`.
    Camera(CmpOp, u64),
    /// `timestamp <op> N`.
    Timestamp(CmpOp, u64),
}

impl MetaPredicate {
    /// Evaluate against one item.
    pub fn holds(&self, item: &CorpusItem) -> bool {
        match self {
            MetaPredicate::Location(op, v) => match op {
                CmpOp::Eq => item.location == *v,
                CmpOp::Ne => item.location != *v,
                // Ordered comparison on locations is not meaningful; treat
                // as lexicographic to keep the operator total.
                CmpOp::Lt => item.location.as_str() < v.as_str(),
                CmpOp::Le => item.location.as_str() <= v.as_str(),
                CmpOp::Gt => item.location.as_str() > v.as_str(),
                CmpOp::Ge => item.location.as_str() >= v.as_str(),
            },
            MetaPredicate::Camera(op, v) => op.holds_u64(item.camera, *v),
            MetaPredicate::Timestamp(op, v) => op.holds_u64(item.timestamp, *v),
        }
    }
}

/// A parsed query: metadata predicates plus content predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Source table name.
    pub table: String,
    /// Metadata predicates (conjunctive).
    pub metadata: Vec<MetaPredicate>,
    /// `contains_object(...)` predicates (conjunctive).
    pub content: Vec<ObjectKind>,
}

struct Tokenizer<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Num(u64),
    Star,
    LParen,
    RParen,
    Op(CmpOp),
    End,
}

impl<'a> Tokenizer<'a> {
    fn new(src: &'a str) -> Self {
        Tokenizer { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> CoreError {
        CoreError::Parse {
            position: self.pos,
            message: message.into(),
        }
    }

    fn next(&mut self) -> Result<Token, CoreError> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return Ok(Token::End);
        }
        let c = bytes[self.pos];
        match c {
            b'*' => {
                self.pos += 1;
                Ok(Token::Star)
            }
            b'(' => {
                self.pos += 1;
                Ok(Token::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Token::RParen)
            }
            b';' => {
                self.pos += 1;
                self.next() // trailing semicolon: skip
            }
            b'=' => {
                self.pos += 1;
                Ok(Token::Op(CmpOp::Eq))
            }
            b'!' => {
                if bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Ok(Token::Op(CmpOp::Ne))
                } else {
                    Err(self.error("expected '=' after '!'"))
                }
            }
            b'<' => {
                if bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Ok(Token::Op(CmpOp::Le))
                } else {
                    self.pos += 1;
                    Ok(Token::Op(CmpOp::Lt))
                }
            }
            b'>' => {
                if bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Ok(Token::Op(CmpOp::Ge))
                } else {
                    self.pos += 1;
                    Ok(Token::Op(CmpOp::Gt))
                }
            }
            b'\'' => {
                let start = self.pos + 1;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\'' {
                    end += 1;
                }
                if end >= bytes.len() {
                    return Err(self.error("unterminated string literal"));
                }
                self.pos = end + 1;
                Ok(Token::Str(self.src[start..end].to_string()))
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                self.src[start..self.pos]
                    .parse()
                    .map(Token::Num)
                    .map_err(|_| self.error("invalid number"))
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Ok(Token::Ident(self.src[start..self.pos].to_string()))
            }
            other => Err(self.error(format!("unexpected character '{}'", other as char))),
        }
    }
}

impl Query {
    /// Parse the supported SQL subset:
    /// `SELECT * FROM <table> [WHERE <cond> (AND <cond>)*] [;]` where a
    /// condition is `contains_object(<category>)` or
    /// `<field> <op> <value>` over `location`/`camera`/`timestamp`.
    pub fn parse(src: &str) -> Result<Query, CoreError> {
        let mut tz = Tokenizer::new(src);
        let expect_kw = |tz: &mut Tokenizer, kw: &str| -> Result<(), CoreError> {
            match tz.next()? {
                Token::Ident(w) if w.eq_ignore_ascii_case(kw) => Ok(()),
                other => Err(tz.error(format!("expected {kw}, found {other:?}"))),
            }
        };
        expect_kw(&mut tz, "select")?;
        match tz.next()? {
            Token::Star => {}
            other => return Err(tz.error(format!("expected '*', found {other:?}"))),
        }
        expect_kw(&mut tz, "from")?;
        let table = match tz.next()? {
            Token::Ident(t) => t,
            other => return Err(tz.error(format!("expected table name, found {other:?}"))),
        };
        let mut query = Query {
            table,
            metadata: Vec::new(),
            content: Vec::new(),
        };
        match tz.next()? {
            Token::End => return Ok(query),
            Token::Ident(w) if w.eq_ignore_ascii_case("where") => {}
            other => return Err(tz.error(format!("expected WHERE, found {other:?}"))),
        }
        loop {
            // One condition.
            let field = match tz.next()? {
                Token::Ident(f) => f,
                other => return Err(tz.error(format!("expected condition, found {other:?}"))),
            };
            if field.eq_ignore_ascii_case("contains_object") {
                match tz.next()? {
                    Token::LParen => {}
                    other => return Err(tz.error(format!("expected '(', found {other:?}"))),
                }
                let cat = match tz.next()? {
                    Token::Ident(c) => c,
                    Token::Str(c) => c,
                    other => return Err(tz.error(format!("expected category, found {other:?}"))),
                };
                match tz.next()? {
                    Token::RParen => {}
                    other => return Err(tz.error(format!("expected ')', found {other:?}"))),
                }
                let kind = ObjectKind::from_name(&cat.to_ascii_lowercase())
                    .ok_or(CoreError::UnknownCategory(cat))?;
                query.content.push(kind);
            } else {
                let op = match tz.next()? {
                    Token::Op(op) => op,
                    other => return Err(tz.error(format!("expected operator, found {other:?}"))),
                };
                let value = tz.next()?;
                let pred = match field.to_ascii_lowercase().as_str() {
                    "location" => match value {
                        Token::Str(s) => MetaPredicate::Location(op, s),
                        other => {
                            return Err(
                                tz.error(format!("location needs a string, found {other:?}"))
                            )
                        }
                    },
                    "camera" => match value {
                        Token::Num(n) => MetaPredicate::Camera(op, n),
                        other => {
                            return Err(tz.error(format!("camera needs a number, found {other:?}")))
                        }
                    },
                    "timestamp" => match value {
                        Token::Num(n) => MetaPredicate::Timestamp(op, n),
                        other => {
                            return Err(
                                tz.error(format!("timestamp needs a number, found {other:?}"))
                            )
                        }
                    },
                    _ => return Err(CoreError::UnknownField(field)),
                };
                query.metadata.push(pred);
            }
            match tz.next()? {
                Token::End => break,
                Token::Ident(w) if w.eq_ignore_ascii_case("and") => continue,
                other => return Err(tz.error(format!("expected AND or end, found {other:?}"))),
            }
        }
        Ok(query)
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Provides per-(model, item) classifier scores at query time. The surrogate
/// path adapts `tahoma_zoo::SurrogateScorer`; a real deployment would run
/// the actual CNNs.
pub trait ItemScorer {
    /// Score of `model` on `item` in [0, 1].
    fn score(&self, model: ModelId, item: &CorpusItem) -> f32;
}

/// Salt applied to corpus item ids before they enter the surrogate noise
/// stream, so corpus scores are independent of the eval split's (which use
/// unsalted ids). [`SurrogateItemScorer`] and the batched
/// [`crate::exec::SurrogateBatchScorer`] must use the same salt to stay
/// bit-identical.
pub const CORPUS_SCORE_SALT: u64 = 0xC0_5A17;

/// Surrogate-backed scorer over a corpus: each model's score is drawn from
/// the same calibrated family the repository was built with, keyed by the
/// item's ground truth and difficulty. A distinct noise stream (salted item
/// ids) keeps corpus scores independent of the eval split.
pub struct SurrogateItemScorer<'a> {
    /// The predicate's surrogate family.
    pub scorer: &'a tahoma_zoo::SurrogateScorer,
    /// Repository whose model ids the cascade references.
    pub repo: &'a ModelRepository,
}

impl ItemScorer for SurrogateItemScorer<'_> {
    fn score(&self, model: ModelId, item: &CorpusItem) -> f32 {
        let variant = &self.repo.entry(model).variant;
        self.scorer.score(
            variant,
            tahoma_zoo::surrogate::Split::Eval,
            item.id ^ CORPUS_SCORE_SALT,
            item.contains(self.scorer.pred.kind),
            item.difficulty,
        )
    }
}

/// One row of the materialized binary-predicate relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationRow {
    /// Item id.
    pub id: u64,
    /// The predicate's value for this item.
    pub value: bool,
    /// Score of the deciding level.
    pub score: f32,
    /// Cascade level that decided (0-based).
    pub decided_at: u8,
}

/// The materialized relation for one content predicate, plus execution
/// statistics.
#[derive(Debug, Clone)]
pub struct PredicateRelation {
    /// The category.
    pub kind: ObjectKind,
    /// One row per evaluated item.
    pub rows: Vec<RelationRow>,
    /// Simulated total classification time (s).
    pub simulated_time_s: f64,
    /// Effective throughput (items / simulated second).
    pub throughput_fps: f64,
    /// How many items each level decided.
    pub level_histogram: [u64; MAX_LEVELS],
    /// Accuracy against corpus ground truth.
    pub accuracy: f64,
}

/// Executes queries: metadata filter first, then one cascade per content
/// predicate.
pub struct QueryProcessor<'a> {
    repo: &'a ModelRepository,
    thresholds: &'a ThresholdTable,
    cost: &'a CostContext,
}

impl<'a> QueryProcessor<'a> {
    /// Create a processor bound to a repository, thresholds and pricing.
    pub fn new(
        repo: &'a ModelRepository,
        thresholds: &'a ThresholdTable,
        cost: &'a CostContext,
    ) -> QueryProcessor<'a> {
        QueryProcessor {
            repo,
            thresholds,
            cost,
        }
    }

    /// Execute a parsed query over a corpus with the given cascade(s).
    ///
    /// `cascades` maps each content predicate in the query to the cascade
    /// implementing it; a missing entry is an error.
    ///
    /// A thin wrapper over the vectorized executor ([`crate::exec`]) in
    /// `materialize_all` mode: every content predicate evaluates over the
    /// full metadata-survivor set in query order, preserving the original
    /// full-relation semantics (and, with a deterministic scorer, the
    /// original results bit for bit — property-tested against
    /// [`QueryProcessor::run_cascade_reference`]). Batch-native callers
    /// that want planner-ordered short-circuiting use
    /// [`QueryProcessor::execute_batched`] directly.
    pub fn execute(
        &self,
        query: &Query,
        corpus: &Corpus,
        cascades: &BTreeMap<ObjectKind, Cascade>,
        scorer: &dyn ItemScorer,
    ) -> Result<QueryResult, CoreError> {
        let mut adapter = ItemScorerBatchAdapter(scorer);
        self.execute_batched(
            query,
            corpus,
            cascades,
            &mut adapter,
            &ExecOptions {
                materialize_all: true,
            },
        )
    }

    /// Execute through the vectorized level-major executor with a batch
    /// scoring backend — the product query path. See
    /// [`VectorizedExecutor::execute`] for the semantics of `opts`.
    pub fn execute_batched(
        &self,
        query: &Query,
        corpus: &Corpus,
        cascades: &BTreeMap<ObjectKind, Cascade>,
        scorer: &mut dyn BatchScorer,
        opts: &ExecOptions,
    ) -> Result<QueryResult, CoreError> {
        VectorizedExecutor::new(self.repo, self.thresholds, self.cost)
            .execute(query, corpus, cascades, scorer, opts)
    }

    /// Run one cascade over the filtered items item-at-a-time, producing
    /// its relation — the reference implementation the vectorized path is
    /// property-tested against. Not used by [`QueryProcessor::execute`]
    /// anymore; kept deliberately simple.
    pub fn run_cascade_reference(
        &self,
        kind: ObjectKind,
        cascade: Cascade,
        items: &[&CorpusItem],
        scorer: &dyn ItemScorer,
    ) -> Result<PredicateRelation, CoreError> {
        let depth = cascade.depth();
        for l in 0..depth {
            let m = cascade.model_at(l) as usize;
            if m >= self.repo.len() {
                return Err(CoreError::UnknownModel(m as u32));
            }
        }
        let mut rows = Vec::with_capacity(items.len());
        let mut total_time = 0.0f64;
        let mut level_histogram = [0u64; MAX_LEVELS];
        let mut correct = 0usize;
        for item in items {
            let mut time = self.cost.fixed_s;
            let mut seen_reps: [u32; MAX_LEVELS] = [u32::MAX; MAX_LEVELS];
            let mut decided: Option<(bool, f32, u8)> = None;
            for l in 0..depth {
                let m = cascade.model_at(l) as usize;
                time += self.cost.infer_s[m];
                let key = self.cost.rep_key[m];
                if !seen_reps[..l].contains(&key) {
                    time += self.cost.rep_marginal_s[m];
                }
                seen_reps[l] = key;
                let score = scorer.score(ModelId(m as u32), item);
                if l + 1 == depth {
                    decided = Some((score >= 0.5, score, l as u8));
                    break;
                }
                let thr = self.thresholds.get(m, cascade.setting_at(l) as usize);
                if let Some(label) = thr.decide(score) {
                    decided = Some((label, score, l as u8));
                    break;
                }
            }
            let (value, score, level) = decided.expect("terminal level always decides");
            level_histogram[level as usize] += 1;
            if value == item.contains(kind) {
                correct += 1;
            }
            total_time += time;
            rows.push(RelationRow {
                id: item.id,
                value,
                score,
                decided_at: level,
            });
        }
        let n = items.len().max(1) as f64;
        Ok(PredicateRelation {
            kind,
            rows,
            simulated_time_s: total_time,
            throughput_fps: if total_time > 0.0 {
                n / total_time
            } else {
                0.0
            },
            level_histogram,
            accuracy: correct as f64 / n,
        })
    }
}

/// The result of executing a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Ids satisfying every predicate, in corpus order.
    pub matched_ids: Vec<u64>,
    /// Items surviving the metadata filter (and thus classified).
    pub metadata_survivors: usize,
    /// Materialized relation per content predicate.
    pub relations: Vec<PredicateRelation>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_query() {
        let q = Query::parse(
            "SELECT * FROM frames WHERE contains_object(fence) AND location = 'Detroit' \
             AND timestamp >= 1700000000;",
        )
        .unwrap();
        assert_eq!(q.table, "frames");
        assert_eq!(q.content, vec![ObjectKind::Fence]);
        assert_eq!(q.metadata.len(), 2);
        assert_eq!(
            q.metadata[0],
            MetaPredicate::Location(CmpOp::Eq, "Detroit".into())
        );
        assert_eq!(
            q.metadata[1],
            MetaPredicate::Timestamp(CmpOp::Ge, 1_700_000_000)
        );
    }

    #[test]
    fn parse_without_where() {
        let q = Query::parse("select * from images").unwrap();
        assert!(q.metadata.is_empty());
        assert!(q.content.is_empty());
    }

    #[test]
    fn parse_rejects_unknown_category() {
        let e = Query::parse("SELECT * FROM t WHERE contains_object(dragon)").unwrap_err();
        assert_eq!(e, CoreError::UnknownCategory("dragon".into()));
    }

    #[test]
    fn parse_rejects_unknown_field() {
        let e = Query::parse("SELECT * FROM t WHERE speed > 3").unwrap_err();
        assert_eq!(e, CoreError::UnknownField("speed".into()));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Query::parse("SELECT FROM t").is_err());
        assert!(Query::parse("SELECT * FROM t WHERE location = Detroit").is_err());
        assert!(Query::parse("SELECT * FROM t WHERE camera = 'one'").is_err());
        assert!(Query::parse("SELECT * FROM t WHERE location = 'x' OR camera = 1").is_err());
        assert!(Query::parse("").is_err());
    }

    #[test]
    fn operators_parse_and_evaluate() {
        for (text, op) in [
            ("=", CmpOp::Eq),
            ("!=", CmpOp::Ne),
            ("<", CmpOp::Lt),
            ("<=", CmpOp::Le),
            (">", CmpOp::Gt),
            (">=", CmpOp::Ge),
        ] {
            let q = Query::parse(&format!("SELECT * FROM t WHERE camera {text} 3")).unwrap();
            assert_eq!(q.metadata[0], MetaPredicate::Camera(op, 3));
        }
        assert!(CmpOp::Le.holds_u64(3, 3));
        assert!(!CmpOp::Lt.holds_u64(3, 3));
        assert!(CmpOp::Ne.holds_u64(2, 3));
    }

    #[test]
    fn metadata_predicates_filter_items() {
        let corpus = Corpus::synthetic(200, 0.3, 9);
        let q = Query::parse("SELECT * FROM t WHERE location = 'Detroit' AND camera < 4").unwrap();
        let survivors: Vec<&CorpusItem> = corpus
            .items
            .iter()
            .filter(|i| q.metadata.iter().all(|p| p.holds(i)))
            .collect();
        assert!(!survivors.is_empty());
        for s in survivors {
            assert_eq!(s.location, "Detroit");
            assert!(s.camera < 4);
        }
    }

    #[test]
    fn synthetic_corpus_prevalence() {
        let corpus = Corpus::synthetic(2000, 0.25, 3);
        let with_fence = corpus
            .items
            .iter()
            .filter(|i| i.contains(ObjectKind::Fence))
            .count();
        let rate = with_fence as f64 / corpus.len() as f64;
        assert!((rate - 0.25).abs() < 0.05, "prevalence {rate}");
    }
}

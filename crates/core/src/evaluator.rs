//! Fast cascade evaluation from precomputed model outputs (paper §V-D/E).
//!
//! The paper's enabling trick: each model classifies the eval split exactly
//! once; each (model, precision-setting) pair is reduced to a per-image
//! *decision table* (negative / positive / uncertain); simulating any of the
//! ~1.3 M cascades is then a per-image walk over those tables. The paper
//! reports ~1 minute for 1.3 M cascades; this implementation evaluates the
//! same set in seconds on a multicore CPU.
//!
//! A second separation makes scenario sweeps nearly free: a cascade's
//! accuracy and stop-level histogram do not depend on the deployment
//! scenario — only its *costs* do. [`simulate_all`] computes the
//! scenario-independent outcomes once; [`throughputs`] re-prices them under
//! any [`CostContext`] in O(cascades x depth).

use crate::cascade::{Cascade, MAX_LEVELS};
use crate::thresholds::ThresholdTable;
use tahoma_costmodel::CostProfiler;
use tahoma_zoo::ModelRepository;

const DECIDE_NEG: u8 = 0;
const DECIDE_POS: u8 = 1;
const DECIDE_UNCERTAIN: u8 = 2;

/// Precomputed per-(model, setting) decision tables over the eval split.
#[derive(Debug, Clone)]
pub struct DecisionTables {
    n_models: usize,
    n_settings: usize,
    n_images: usize,
    /// `[(model * n_settings + setting) * n_images + image]` in
    /// {NEG, POS, UNCERTAIN}.
    thresholded: Vec<u8>,
    /// `[model * n_images + image]` in {NEG, POS}: the always-accepted
    /// terminal decision at probability 0.5.
    terminal: Vec<u8>,
    labels: Vec<bool>,
}

impl DecisionTables {
    /// Build tables from a repository's eval scores and calibrated
    /// thresholds.
    pub fn build(repo: &ModelRepository, thresholds: &ThresholdTable) -> DecisionTables {
        let n_models = repo.len();
        let n_settings = thresholds.n_settings();
        let n_images = repo.eval.len();
        let mut thresholded = vec![0u8; n_models * n_settings * n_images];
        let mut terminal = vec![0u8; n_models * n_images];
        for (mi, entry) in repo.entries.iter().enumerate() {
            for (ii, &score) in entry.eval_scores.iter().enumerate() {
                terminal[mi * n_images + ii] = (score >= 0.5) as u8;
                for si in 0..n_settings {
                    let code = match thresholds.get(mi, si).decide(score) {
                        Some(false) => DECIDE_NEG,
                        Some(true) => DECIDE_POS,
                        None => DECIDE_UNCERTAIN,
                    };
                    thresholded[(mi * n_settings + si) * n_images + ii] = code;
                }
            }
        }
        DecisionTables {
            n_models,
            n_settings,
            n_images,
            thresholded,
            terminal,
            labels: repo.eval.labels.clone(),
        }
    }

    /// Eval-split size.
    pub fn n_images(&self) -> usize {
        self.n_images
    }

    /// Number of models covered.
    pub fn n_models(&self) -> usize {
        self.n_models
    }

    #[inline]
    fn thresholded_row(&self, model: usize, setting: usize) -> &[u8] {
        let base = (model * self.n_settings + setting) * self.n_images;
        &self.thresholded[base..base + self.n_images]
    }

    #[inline]
    fn terminal_row(&self, model: usize) -> &[u8] {
        &self.terminal[model * self.n_images..(model + 1) * self.n_images]
    }
}

/// Scenario-independent outcome of one cascade on the eval split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Fraction of eval images labeled correctly.
    pub accuracy: f32,
    /// How many images stopped at each level.
    pub stop_counts: [u32; MAX_LEVELS],
}

/// Outcomes for a whole cascade set.
#[derive(Debug, Clone)]
pub struct CascadeOutcomes {
    /// The evaluated cascades, in input order.
    pub cascades: Vec<Cascade>,
    /// Per-cascade outcomes, parallel to `cascades`.
    pub outcomes: Vec<Outcome>,
    /// Eval-split size used.
    pub n_images: usize,
}

/// Simulate one cascade against the decision tables (reference-quality
/// implementation of Definition 7; the bulk path inlines the same walk).
pub fn simulate_one(tables: &DecisionTables, cascade: &Cascade) -> Outcome {
    let depth = cascade.depth();
    let mut stop_counts = [0u32; MAX_LEVELS];
    let mut correct = 0usize;
    // Borrow all rows up front.
    let mut rows: [&[u8]; MAX_LEVELS] = [&[]; MAX_LEVELS];
    for (l, row) in rows.iter_mut().take(depth - 1).enumerate() {
        *row = tables.thresholded_row(cascade.model_at(l) as usize, cascade.setting_at(l) as usize);
    }
    rows[depth - 1] = tables.terminal_row(cascade.model_at(depth - 1) as usize);
    for i in 0..tables.n_images {
        let mut label = false;
        let mut stop = depth - 1;
        for (l, row) in rows[..depth - 1].iter().enumerate() {
            let d = row[i];
            if d != DECIDE_UNCERTAIN {
                label = d == DECIDE_POS;
                stop = l;
                break;
            }
        }
        if stop == depth - 1 {
            label = rows[depth - 1][i] == DECIDE_POS;
        }
        stop_counts[stop] += 1;
        if label == tables.labels[i] {
            correct += 1;
        }
    }
    Outcome {
        accuracy: correct as f32 / tables.n_images as f32,
        stop_counts,
    }
}

/// Simulate every cascade, in parallel across available cores.
pub fn simulate_all(tables: &DecisionTables, cascades: Vec<Cascade>) -> CascadeOutcomes {
    let n = cascades.len();
    let mut outcomes: Vec<Outcome> = Vec::with_capacity(n);
    // SAFETY-free parallel fill: split the output buffer into disjoint
    // chunks, one per worker.
    outcomes.resize(
        n,
        Outcome {
            accuracy: 0.0,
            stop_counts: [0; MAX_LEVELS],
        },
    );
    // Cap workers at the number of cascades so `n < threads` never produces
    // empty-range chunks, and run small inputs inline — spawning a thread
    // scope for one chunk (or zero cascades) is pure overhead.
    let threads = std::thread::available_parallelism()
        .map_or(4, |t| t.get())
        .min(n.max(1));
    let chunk = n.div_ceil(threads).max(1);
    if n <= chunk {
        for (slot, c) in outcomes.iter_mut().zip(&cascades) {
            *slot = simulate_one(tables, c);
        }
    } else {
        crossbeam::thread::scope(|scope| {
            let mut remaining: &mut [Outcome] = &mut outcomes;
            for cs in cascades.chunks(chunk) {
                let (head, tail) = remaining.split_at_mut(cs.len());
                remaining = tail;
                scope.spawn(move |_| {
                    for (slot, c) in head.iter_mut().zip(cs) {
                        *slot = simulate_one(tables, c);
                    }
                });
            }
        })
        .expect("simulation threads do not panic");
    }
    CascadeOutcomes {
        n_images: tables.n_images,
        cascades,
        outcomes,
    }
}

/// Scenario-specific pricing of models and representations.
#[derive(Debug, Clone)]
pub struct CostContext {
    /// Cost paid once per image.
    pub fixed_s: f64,
    /// Per-model inference seconds, indexed by model id.
    pub infer_s: Vec<f64>,
    /// Per-model marginal cost of the model's input representation.
    pub rep_marginal_s: Vec<f64>,
    /// Representation identity per model, for once-per-image deduplication
    /// across cascade levels that share an input (§VII-A).
    pub rep_key: Vec<u32>,
}

impl CostContext {
    /// Price a repository under a profiler's scenario.
    pub fn build(repo: &ModelRepository, profiler: &dyn CostProfiler) -> CostContext {
        let mut rep_keys: Vec<tahoma_imagery::Representation> = Vec::new();
        let mut key_of = |rep: tahoma_imagery::Representation| -> u32 {
            if let Some(pos) = rep_keys.iter().position(|&r| r == rep) {
                pos as u32
            } else {
                rep_keys.push(rep);
                (rep_keys.len() - 1) as u32
            }
        };
        let mut infer_s = Vec::with_capacity(repo.len());
        let mut rep_marginal_s = Vec::with_capacity(repo.len());
        let mut rep_key = Vec::with_capacity(repo.len());
        for e in &repo.entries {
            infer_s.push(e.infer_s);
            rep_marginal_s.push(profiler.rep_marginal_s(e.variant.input));
            rep_key.push(key_of(e.variant.input));
        }
        CostContext {
            fixed_s: profiler.per_image_fixed_s(),
            infer_s,
            rep_marginal_s,
            rep_key,
        }
    }

    /// Expected per-image cost of a cascade given its stop-level histogram.
    ///
    /// `prefix_cost[k]` = fixed + inference of levels 0..=k + marginal cost
    /// of the *distinct* representations used by levels 0..=k; an image that
    /// stops at level k pays `prefix_cost[k]`.
    pub fn expected_cost_s(&self, cascade: &Cascade, outcome: &Outcome, n_images: usize) -> f64 {
        let depth = cascade.depth();
        let mut prefix_cost = [0.0f64; MAX_LEVELS];
        let mut seen_reps = [u32::MAX; MAX_LEVELS];
        let mut acc = self.fixed_s;
        for l in 0..depth {
            let m = cascade.model_at(l) as usize;
            acc += self.infer_s[m];
            let key = self.rep_key[m];
            if !seen_reps[..l].contains(&key) {
                acc += self.rep_marginal_s[m];
            }
            seen_reps[l] = key;
            prefix_cost[l] = acc;
        }
        let total: f64 = prefix_cost
            .iter()
            .zip(&outcome.stop_counts)
            .take(depth)
            .map(|(&cost, &count)| count as f64 * cost)
            .sum();
        total / n_images as f64
    }

    /// Throughput (frames/second) of a cascade outcome under this pricing.
    pub fn throughput_fps(&self, cascade: &Cascade, outcome: &Outcome, n_images: usize) -> f64 {
        1.0 / self.expected_cost_s(cascade, outcome, n_images)
    }
}

/// Naive reference evaluator: re-derives every decision from raw scores and
/// thresholds per cascade, per image — no precomputed tables. This is what
/// evaluation looks like *without* the paper's §V-D design; the
/// `cascade_eval` bench and an equivalence test pit it against
/// [`simulate_one`]. Kept simple on purpose.
pub fn simulate_one_naive(
    repo: &ModelRepository,
    thresholds: &ThresholdTable,
    cascade: &Cascade,
) -> Outcome {
    simulate_one_naive_stats(repo, thresholds, cascade).0
}

/// [`simulate_one_naive`] plus the cascade's *positive rate* on the eval
/// split — the selectivity estimate conjunctive predicate ordering wants
/// (see `exec::predicate_stats`). One walk produces both so the planner's
/// statistics can never diverge from the evaluator's decision rules.
pub fn simulate_one_naive_stats(
    repo: &ModelRepository,
    thresholds: &ThresholdTable,
    cascade: &Cascade,
) -> (Outcome, f64) {
    let n_images = repo.eval.len();
    let depth = cascade.depth();
    let mut stop_counts = [0u32; MAX_LEVELS];
    let mut correct = 0usize;
    let mut positive = 0usize;
    for i in 0..n_images {
        let mut label = false;
        let mut stop = depth - 1;
        for l in 0..depth {
            let m = cascade.model_at(l) as usize;
            let score = repo.entries[m].eval_scores[i];
            if l + 1 == depth {
                label = score >= 0.5;
                stop = l;
                break;
            }
            let thr = thresholds.get(m, cascade.setting_at(l) as usize);
            if let Some(decided) = thr.decide(score) {
                label = decided;
                stop = l;
                break;
            }
        }
        stop_counts[stop] += 1;
        if label {
            positive += 1;
        }
        if label == repo.eval.labels[i] {
            correct += 1;
        }
    }
    let outcome = Outcome {
        accuracy: correct as f32 / n_images as f32,
        stop_counts,
    };
    (outcome, positive as f64 / n_images.max(1) as f64)
}

/// Price a whole outcome set, returning per-cascade throughput (fps).
pub fn throughputs(outcomes: &CascadeOutcomes, ctx: &CostContext) -> Vec<f64> {
    outcomes
        .cascades
        .iter()
        .zip(&outcomes.outcomes)
        .map(|(c, o)| ctx.throughput_fps(c, o, outcomes.n_images))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thresholds::{calibrate_all, PAPER_PRECISION_SETTINGS};
    use tahoma_costmodel::{AnalyticProfiler, Scenario};
    use tahoma_imagery::ObjectKind;
    use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
    use tahoma_zoo::{ModelId, PredicateSpec};

    fn small_repo(kind: ObjectKind) -> ModelRepository {
        build_surrogate_repository(
            PredicateSpec::for_kind(kind),
            &SurrogateBuildConfig {
                n_config: 200,
                n_eval: 300,
                seed: 11,
                variants: Some(
                    tahoma_zoo::variant::paper_variants()
                        .into_iter()
                        .step_by(9)
                        .collect(),
                ),
                ..Default::default()
            },
            &tahoma_costmodel::DeviceProfile::k80(),
        )
    }

    fn tables_for(repo: &ModelRepository) -> (DecisionTables, ThresholdTable) {
        let thr = calibrate_all(repo, &PAPER_PRECISION_SETTINGS);
        (DecisionTables::build(repo, &thr), thr)
    }

    #[test]
    fn single_model_cascade_matches_direct_accuracy() {
        let repo = small_repo(ObjectKind::Fence);
        let (tables, _) = tables_for(&repo);
        for id in [0usize, 7, 20] {
            let out = simulate_one(&tables, &Cascade::single(id as u16));
            let direct = repo.eval_accuracy(ModelId(id as u32)) as f32;
            assert!(
                (out.accuracy - direct).abs() < 1e-6,
                "model {id}: cascade {} vs direct {direct}",
                out.accuracy
            );
            assert_eq!(out.stop_counts[0] as usize, repo.eval.len());
        }
    }

    #[test]
    fn two_level_cascade_routes_uncertain_to_second_level() {
        let repo = small_repo(ObjectKind::Fence);
        let (tables, thr) = tables_for(&repo);
        let c = Cascade::new(&[(0, 4), (1, 0)]); // strictest setting first
        let out = simulate_one(&tables, &c);
        let total: u32 = out.stop_counts.iter().sum();
        assert_eq!(total as usize, repo.eval.len());
        // The first level must decide whatever its thresholds decide.
        let decided = repo.entries[0]
            .eval_scores
            .iter()
            .filter(|&&s| thr.get(0, 4).decide(s).is_some())
            .count();
        assert_eq!(out.stop_counts[0] as usize, decided);
    }

    #[test]
    fn selective_first_level_beats_its_own_solo_accuracy() {
        // A cascade of (weak model, strict thresholds) -> strong terminal
        // should be at least as accurate as the weak model alone.
        let repo = small_repo(ObjectKind::Komondor);
        let (tables, _) = tables_for(&repo);
        let weak = 0u16;
        let strong = (repo.len() - 1) as u16; // resnet is last
        let solo = simulate_one(&tables, &Cascade::single(weak));
        let cascaded = simulate_one(&tables, &Cascade::new(&[(weak, 4), (strong, 0)]));
        assert!(
            cascaded.accuracy >= solo.accuracy,
            "cascade {} < solo {}",
            cascaded.accuracy,
            solo.accuracy
        );
    }

    #[test]
    fn naive_and_table_evaluators_agree() {
        let repo = small_repo(ObjectKind::Fence);
        let thr = calibrate_all(&repo, &PAPER_PRECISION_SETTINGS);
        let tables = DecisionTables::build(&repo, &thr);
        for c in [
            Cascade::single(3),
            Cascade::new(&[(0, 4), (7, 0)]),
            Cascade::new(&[(2, 1), (9, 2), (4, 0)]),
        ] {
            assert_eq!(
                simulate_one(&tables, &c),
                simulate_one_naive(&repo, &thr, &c),
                "{c}"
            );
        }
    }

    #[test]
    fn simulate_all_matches_simulate_one() {
        let repo = small_repo(ObjectKind::Wallet);
        let (tables, _) = tables_for(&repo);
        let cascades = vec![
            Cascade::single(0),
            Cascade::new(&[(2, 1), (5, 0)]),
            Cascade::new(&[(3, 0), (1, 2), (6, 0)]),
        ];
        let bulk = simulate_all(&tables, cascades.clone());
        for (i, c) in cascades.iter().enumerate() {
            assert_eq!(bulk.outcomes[i], simulate_one(&tables, c), "cascade {c}");
        }
    }

    #[test]
    fn simulate_all_handles_fewer_cascades_than_threads() {
        // Regression test for the chunking path: inputs smaller than the
        // worker count (including a single cascade and the empty set) must
        // not spawn empty-range workers or lose outcomes.
        let repo = small_repo(ObjectKind::Fence);
        let (tables, _) = tables_for(&repo);
        for n in [0usize, 1, 2] {
            let cascades: Vec<Cascade> = (0..n).map(|i| Cascade::single(i as u16)).collect();
            let bulk = simulate_all(&tables, cascades.clone());
            assert_eq!(bulk.outcomes.len(), n);
            for (i, c) in cascades.iter().enumerate() {
                assert_eq!(bulk.outcomes[i], simulate_one(&tables, c), "{c}");
            }
        }
    }

    #[test]
    fn stop_counts_always_total_eval_size() {
        let repo = small_repo(ObjectKind::Coho);
        let (tables, _) = tables_for(&repo);
        for c in [
            Cascade::single(4),
            Cascade::new(&[(4, 0), (4, 0)]), // duplicate model allowed
            Cascade::new(&[(1, 3), (2, 3), (3, 0)]),
        ] {
            let o = simulate_one(&tables, &c);
            assert_eq!(
                o.stop_counts.iter().sum::<u32>() as usize,
                repo.eval.len(),
                "{c}"
            );
        }
    }

    #[test]
    fn shared_representation_charged_once() {
        let repo = small_repo(ObjectKind::Acorn);
        let (tables, _) = tables_for(&repo);
        let profiler = AnalyticProfiler::paper_testbed(Scenario::Camera);
        let ctx = CostContext::build(&repo, &profiler);
        // Find two distinct models with the same input representation.
        let mut pair = None;
        'outer: for a in 0..repo.len() {
            for b in (a + 1)..repo.len() {
                if ctx.rep_key[a] == ctx.rep_key[b] && ctx.rep_marginal_s[a] > 0.0 {
                    pair = Some((a as u16, b as u16));
                    break 'outer;
                }
            }
        }
        let (a, b) = pair.expect("repository contains rep-sharing models");
        // Force every image to reach the second level by replacing the
        // outcome with an all-stop-at-last histogram.
        let cascade = Cascade::new(&[(a, 4), (b, 0)]);
        let n = tables.n_images();
        let all_last = Outcome {
            accuracy: 1.0,
            stop_counts: {
                let mut s = [0u32; MAX_LEVELS];
                s[1] = n as u32;
                s
            },
        };
        let cost = ctx.expected_cost_s(&cascade, &all_last, n);
        let expected = ctx.fixed_s
            + ctx.infer_s[a as usize]
            + ctx.infer_s[b as usize]
            + ctx.rep_marginal_s[a as usize]; // charged once, not twice
        assert!(
            (cost - expected).abs() < 1e-12,
            "cost {cost} expected {expected}"
        );
    }

    #[test]
    fn early_exit_reduces_expected_cost() {
        let repo = small_repo(ObjectKind::Pinwheel);
        let (tables, _) = tables_for(&repo);
        let profiler = AnalyticProfiler::paper_testbed(Scenario::InferOnly);
        let ctx = CostContext::build(&repo, &profiler);
        let resnet = (repo.len() - 1) as u16;
        let cascade = Cascade::new(&[(0, 0), (resnet, 0)]);
        let o = simulate_one(&tables, &cascade);
        let cost = ctx.expected_cost_s(&cascade, &o, tables.n_images());
        let resnet_solo = ctx.fixed_s + ctx.infer_s[resnet as usize];
        assert!(
            cost < resnet_solo,
            "cascade cost {cost} not below resnet solo {resnet_solo}"
        );
    }

    #[test]
    fn infer_only_throughput_of_smallest_model_near_anchor() {
        let repo = build_surrogate_repository(
            PredicateSpec::for_kind(ObjectKind::Fence),
            &SurrogateBuildConfig {
                n_config: 100,
                n_eval: 100,
                seed: 1,
                ..Default::default()
            },
            &tahoma_costmodel::DeviceProfile::k80(),
        );
        let thr = calibrate_all(&repo, &[0.95]);
        let tables = DecisionTables::build(&repo, &thr);
        let profiler = AnalyticProfiler::paper_testbed(Scenario::InferOnly);
        let ctx = CostContext::build(&repo, &profiler);
        let best = (0..repo.specialized_ids().len())
            .map(|m| {
                let c = Cascade::single(m as u16);
                let o = simulate_one(&tables, &c);
                ctx.throughput_fps(&c, &o, tables.n_images())
            })
            .fold(0.0f64, f64::max);
        assert!(
            (15_000.0..30_000.0).contains(&best),
            "fastest single-model throughput {best:.0} (paper ~20.9k)"
        );
    }
}

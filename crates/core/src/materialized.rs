//! Materialized predicate relations with trigger-style incremental ingest —
//! the paper's RDBMS integration sketch (§V-A): "UDF output could be stored
//! as a partially materialized table, enabling further query optimization
//! [...] database triggers could be used to execute the TAHOMA UDFs over
//! newly ingested data [...] In such situations, slower processing may be
//! tolerated for more accurate results, allowing a different Pareto-optimal
//! cascade choice than at query time."
//!
//! [`MaterializedStore`] caches per-(predicate, image) classification
//! results. A query first consults the store and classifies only the
//! *misses* (the partially-materialized-table read path); an
//! [`IngestTrigger`] classifies newly ingested items eagerly with its own —
//! typically slower, more accurate — cascade (the trigger write path).

use crate::cascade::Cascade;
use crate::evaluator::CostContext;
use crate::query::{CorpusItem, ItemScorer};
use crate::thresholds::ThresholdTable;
use std::collections::HashMap;
use tahoma_imagery::ObjectKind;
use tahoma_zoo::{ModelId, ModelRepository};

/// One cached classification result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaterializedRow {
    /// The predicate's value.
    pub value: bool,
    /// Deciding score.
    pub score: f32,
    /// Cascade level that decided.
    pub decided_at: u8,
}

/// Cache of predicate results keyed by (category, image id).
#[derive(Debug, Default)]
pub struct MaterializedStore {
    rows: HashMap<(ObjectKind, u64), MaterializedRow>,
    hits: u64,
    misses: u64,
}

impl MaterializedStore {
    /// Empty store.
    pub fn new() -> MaterializedStore {
        MaterializedStore::default()
    }

    /// Number of materialized rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing is materialized.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// (hits, misses) counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Lookup, counting hit/miss.
    pub fn get(&mut self, kind: ObjectKind, id: u64) -> Option<MaterializedRow> {
        match self.rows.get(&(kind, id)) {
            Some(row) => {
                self.hits += 1;
                Some(*row)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert or overwrite a row.
    pub fn put(&mut self, kind: ObjectKind, id: u64, row: MaterializedRow) {
        self.rows.insert((kind, id), row);
    }

    /// Drop every row for a category (e.g. after recalibrating its models).
    pub fn invalidate(&mut self, kind: ObjectKind) {
        self.rows.retain(|(k, _), _| *k != kind);
    }
}

/// Classify one item with a cascade, returning the row and simulated cost.
/// Shared by the trigger (eager path) and the query-time miss path.
pub fn classify_item(
    repo: &ModelRepository,
    thresholds: &ThresholdTable,
    cost: &CostContext,
    cascade: &Cascade,
    scorer: &dyn ItemScorer,
    item: &CorpusItem,
) -> (MaterializedRow, f64) {
    let depth = cascade.depth();
    let mut time = cost.fixed_s;
    let mut seen_reps = [u32::MAX; crate::cascade::MAX_LEVELS];
    for l in 0..depth {
        let m = cascade.model_at(l) as usize;
        debug_assert!(m < repo.len());
        time += cost.infer_s[m];
        let key = cost.rep_key[m];
        if !seen_reps[..l].contains(&key) {
            time += cost.rep_marginal_s[m];
        }
        seen_reps[l] = key;
        let score = scorer.score(ModelId(m as u32), item);
        if l + 1 == depth {
            return (
                MaterializedRow {
                    value: score >= 0.5,
                    score,
                    decided_at: l as u8,
                },
                time,
            );
        }
        let thr = thresholds.get(m, cascade.setting_at(l) as usize);
        if let Some(value) = thr.decide(score) {
            return (
                MaterializedRow {
                    value,
                    score,
                    decided_at: l as u8,
                },
                time,
            );
        }
    }
    unreachable!("terminal level always decides")
}

/// Trigger that classifies newly ingested items into the store, §V-A style:
/// it may use a slower, more accurate cascade than query time would pick.
pub struct IngestTrigger<'a> {
    repo: &'a ModelRepository,
    thresholds: &'a ThresholdTable,
    cost: &'a CostContext,
    kind: ObjectKind,
    cascade: Cascade,
    ingested: u64,
    simulated_time_s: f64,
}

impl<'a> IngestTrigger<'a> {
    /// Create a trigger for one predicate.
    pub fn new(
        repo: &'a ModelRepository,
        thresholds: &'a ThresholdTable,
        cost: &'a CostContext,
        kind: ObjectKind,
        cascade: Cascade,
    ) -> IngestTrigger<'a> {
        IngestTrigger {
            repo,
            thresholds,
            cost,
            kind,
            cascade,
            ingested: 0,
            simulated_time_s: 0.0,
        }
    }

    /// Fire on one newly ingested item: classify and materialize.
    pub fn on_insert(
        &mut self,
        store: &mut MaterializedStore,
        scorer: &dyn ItemScorer,
        item: &CorpusItem,
    ) {
        let (row, t) = classify_item(
            self.repo,
            self.thresholds,
            self.cost,
            &self.cascade,
            scorer,
            item,
        );
        store.put(self.kind, item.id, row);
        self.ingested += 1;
        self.simulated_time_s += t;
    }

    /// (items ingested, simulated seconds spent).
    pub fn stats(&self) -> (u64, f64) {
        (self.ingested, self.simulated_time_s)
    }
}

/// Query-time read path: serve from the store, classify only misses with
/// the query-time cascade, materializing their results for next time.
/// Returns (rows in item order, simulated seconds spent on misses).
#[allow(clippy::too_many_arguments)]
pub fn read_through(
    store: &mut MaterializedStore,
    repo: &ModelRepository,
    thresholds: &ThresholdTable,
    cost: &CostContext,
    kind: ObjectKind,
    cascade: &Cascade,
    scorer: &dyn ItemScorer,
    items: &[&CorpusItem],
) -> (Vec<MaterializedRow>, f64) {
    let mut out = Vec::with_capacity(items.len());
    let mut time = 0.0f64;
    for item in items {
        let row = match store.get(kind, item.id) {
            Some(row) => row,
            None => {
                let (row, t) = classify_item(repo, thresholds, cost, cascade, scorer, item);
                time += t;
                store.put(kind, item.id, row);
                row
            }
        };
        out.push(row);
    }
    (out, time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BuilderConfig;
    use crate::pipeline::TahomaSystem;
    use crate::query::{Corpus, SurrogateItemScorer};
    use tahoma_costmodel::{AnalyticProfiler, Scenario};
    use tahoma_zoo::repository::{build_surrogate_repository, SurrogateBuildConfig};
    use tahoma_zoo::{PredicateSpec, SurrogateScorer};

    struct Fixture {
        system: TahomaSystem,
        scorer: SurrogateScorer,
        corpus: Corpus,
        cost: CostContext,
    }

    fn fixture() -> Fixture {
        let pred = PredicateSpec::for_kind(ObjectKind::Fence);
        let cfg = SurrogateBuildConfig {
            n_config: 150,
            n_eval: 200,
            seed: 33,
            variants: Some(
                tahoma_zoo::variant::paper_variants()
                    .into_iter()
                    .step_by(20)
                    .collect(),
            ),
            ..Default::default()
        };
        let scorer = SurrogateScorer {
            pred,
            params: cfg.params,
            seed: cfg.seed,
        };
        let repo = build_surrogate_repository(pred, &cfg, &tahoma_costmodel::DeviceProfile::k80());
        let builder = BuilderConfig {
            n_settings: 2,
            ..BuilderConfig::paper_main(&repo)
        };
        let system = TahomaSystem::initialize(repo, &[0.95, 0.99], &builder);
        let cost = CostContext::build(
            &system.repo,
            &AnalyticProfiler::paper_testbed(Scenario::Ongoing),
        );
        Fixture {
            scorer,
            corpus: Corpus::synthetic(300, 0.3, 12),
            cost,
            system,
        }
    }

    #[test]
    fn read_through_materializes_and_then_hits() {
        let fx = fixture();
        let mut store = MaterializedStore::new();
        let scorer = SurrogateItemScorer {
            scorer: &fx.scorer,
            repo: &fx.system.repo,
        };
        let cascade = Cascade::new(&[(0, 1), (1, 0)]);
        let items: Vec<&CorpusItem> = fx.corpus.items.iter().collect();
        let (rows1, t1) = read_through(
            &mut store,
            &fx.system.repo,
            &fx.system.thresholds,
            &fx.cost,
            ObjectKind::Fence,
            &cascade,
            &scorer,
            &items,
        );
        assert_eq!(rows1.len(), items.len());
        assert_eq!(store.len(), items.len());
        assert!(t1 > 0.0);
        // Second read: all hits, zero classification time, identical rows.
        let (rows2, t2) = read_through(
            &mut store,
            &fx.system.repo,
            &fx.system.thresholds,
            &fx.cost,
            ObjectKind::Fence,
            &cascade,
            &scorer,
            &items,
        );
        assert_eq!(rows1, rows2);
        assert_eq!(t2, 0.0);
        let (hits, misses) = store.stats();
        assert_eq!(misses, items.len() as u64);
        assert_eq!(hits, items.len() as u64);
    }

    #[test]
    fn trigger_prematerializes_for_query_time() {
        let fx = fixture();
        let mut store = MaterializedStore::new();
        let scorer = SurrogateItemScorer {
            scorer: &fx.scorer,
            repo: &fx.system.repo,
        };
        // Trigger uses a slower, more accurate cascade (§V-A).
        let resnet = fx.system.repo.resnet.unwrap().0 as u16;
        let trigger_cascade = Cascade::new(&[(0, 1), (resnet, 0)]);
        let mut trigger = IngestTrigger::new(
            &fx.system.repo,
            &fx.system.thresholds,
            &fx.cost,
            ObjectKind::Fence,
            trigger_cascade,
        );
        for item in &fx.corpus.items {
            trigger.on_insert(&mut store, &scorer, item);
        }
        let (ingested, trigger_time) = trigger.stats();
        assert_eq!(ingested, fx.corpus.len() as u64);
        assert!(trigger_time > 0.0);
        // Query time: everything is already materialized.
        let items: Vec<&CorpusItem> = fx.corpus.items.iter().collect();
        let query_cascade = Cascade::single(0);
        let (_, query_time) = read_through(
            &mut store,
            &fx.system.repo,
            &fx.system.thresholds,
            &fx.cost,
            ObjectKind::Fence,
            &query_cascade,
            &scorer,
            &items,
        );
        assert_eq!(query_time, 0.0, "all rows should be served from the store");
    }

    #[test]
    fn invalidation_clears_only_the_target_predicate() {
        let mut store = MaterializedStore::new();
        let row = MaterializedRow {
            value: true,
            score: 0.9,
            decided_at: 0,
        };
        store.put(ObjectKind::Fence, 1, row);
        store.put(ObjectKind::Acorn, 1, row);
        store.invalidate(ObjectKind::Fence);
        assert!(store.get(ObjectKind::Fence, 1).is_none());
        assert!(store.get(ObjectKind::Acorn, 1).is_some());
    }

    #[test]
    fn classify_item_matches_query_processor_costs() {
        // classify_item and QueryProcessor::run_cascade share the costing
        // rules: fixed once, reps deduped, inference per level.
        let fx = fixture();
        let scorer = SurrogateItemScorer {
            scorer: &fx.scorer,
            repo: &fx.system.repo,
        };
        let cascade = Cascade::new(&[(2, 0), (5, 0)]);
        let item = &fx.corpus.items[0];
        let (_, t) = classify_item(
            &fx.system.repo,
            &fx.system.thresholds,
            &fx.cost,
            &cascade,
            &scorer,
            item,
        );
        // Lower bound: fixed + first-level inference + its rep.
        let lb = fx.cost.fixed_s + fx.cost.infer_s[2] + fx.cost.rep_marginal_s[2];
        assert!(t >= lb - 1e-15);
    }
}

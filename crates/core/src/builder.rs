//! Cascade-set enumeration (paper §V-D, §VII-A).
//!
//! The paper's main configuration: all one- and two-level cascades over the
//! 360-model pool plus ResNet50, and three-level cascades with ResNet50 as
//! the terminal classifier, across five precision settings — "1,301,405
//! possible cascades per predicate". The paper does not spell out its exact
//! tie between precision settings and levels; we share one precision setting
//! across all non-terminal levels of a cascade, which lands within 0.3% of
//! the paper's count (1,298,161) and keeps the set product-structured.
//! Deeper full cross-products for the §VII-F depth study are supported with
//! a configurable pool.

use crate::cascade::{Cascade, MAX_LEVELS};
use tahoma_zoo::{ModelId, ModelRepository};

/// What to enumerate.
#[derive(Debug, Clone)]
pub struct BuilderConfig {
    /// Specialized model pool (non-terminal and terminal candidates).
    pub pool: Vec<ModelId>,
    /// Expensive reference model appended as a terminal level, if any.
    pub reference: Option<ModelId>,
    /// Number of precision settings (indexes into the `ThresholdTable`).
    pub n_settings: usize,
    /// Maximum depth counting only pool levels (1 or 2 in the main
    /// experiments; 3 for the depth study).
    pub max_pool_depth: usize,
    /// Also emit each pool prefix with the reference appended as an extra
    /// terminal level.
    pub with_reference_terminal: bool,
}

impl BuilderConfig {
    /// The paper's main configuration over a repository: 1- and 2-level
    /// cascades from the full pool, plus reference-terminated variants.
    pub fn paper_main(repo: &ModelRepository) -> BuilderConfig {
        BuilderConfig {
            pool: repo.specialized_ids(),
            reference: repo.resnet,
            n_settings: crate::thresholds::PAPER_PRECISION_SETTINGS.len(),
            max_pool_depth: 2,
            with_reference_terminal: true,
        }
    }

    /// Count the cascades this configuration will produce (used to
    /// preallocate and by the depth study's cost projections).
    pub fn count(&self) -> usize {
        let p = self.pool.len();
        let has_ref = self.reference.is_some();
        let s = self.n_settings;
        // Depth-1: each pool model alone, plus the reference alone.
        let mut total = p + has_ref as usize;
        // Depth-k (k >= 2): (k-1)-length pool prefix x pool terminal,
        // per setting.
        for depth in 2..=self.max_pool_depth {
            total += s * p.pow((depth - 1) as u32) * p;
        }
        // Reference-terminated: pool prefixes of length 1..=max_pool_depth,
        // per setting.
        if has_ref && self.with_reference_terminal {
            for depth in 1..=self.max_pool_depth {
                total += s * p.pow(depth as u32);
            }
        }
        total
    }
}

/// Advance a mixed-radix odometer; false when it wraps to all zeros.
fn advance(idx: &mut [usize], base: usize) -> bool {
    for slot in idx.iter_mut().rev() {
        *slot += 1;
        if *slot < base {
            return true;
        }
        *slot = 0;
    }
    false
}

/// Enumerate the configured cascade set.
///
/// Ordering is deterministic: depth-1 cascades first (pool order, then the
/// reference), then per precision setting the deeper sets.
pub fn build_cascades(cfg: &BuilderConfig) -> Vec<Cascade> {
    assert!(
        cfg.max_pool_depth >= 1 && cfg.max_pool_depth < MAX_LEVELS,
        "max_pool_depth must be in 1..{MAX_LEVELS}"
    );
    assert!(cfg.n_settings > 0 && cfg.n_settings <= u8::MAX as usize);
    assert!(!cfg.pool.is_empty(), "empty model pool");
    let mut out = Vec::with_capacity(cfg.count());
    let pool: Vec<u16> = cfg.pool.iter().map(|m| m.0 as u16).collect();
    let reference = cfg.reference.map(|m| m.0 as u16);

    let prefix_of = |idx: &[usize], setting: u8| -> Cascade {
        let mut c = Cascade::new(&[(pool[idx[0]], setting)]);
        for &j in &idx[1..] {
            c = c.appended(pool[j], setting);
        }
        c
    };

    // Depth 1.
    for &m in &pool {
        out.push(Cascade::single(m));
    }
    if let Some(r) = reference {
        out.push(Cascade::single(r));
    }

    for setting in 0..cfg.n_settings as u8 {
        // Pool-terminated cascades of depth 2..=max_pool_depth.
        for depth in 2..=cfg.max_pool_depth {
            let mut idx = vec![0usize; depth - 1];
            loop {
                let prefix = prefix_of(&idx, setting);
                for &terminal in &pool {
                    out.push(prefix.appended(terminal, 0));
                }
                if !advance(&mut idx, pool.len()) {
                    break;
                }
            }
        }
        // Reference-terminated cascades over prefixes of length
        // 1..=max_pool_depth.
        if let (Some(r), true) = (reference, cfg.with_reference_terminal) {
            for depth in 1..=cfg.max_pool_depth {
                let mut idx = vec![0usize; depth];
                loop {
                    out.push(prefix_of(&idx, setting).appended(r, 0));
                    if !advance(&mut idx, pool.len()) {
                        break;
                    }
                }
            }
        }
    }
    debug_assert_eq!(out.len(), cfg.count(), "count() must match enumeration");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pool_n: usize, reference: bool, settings: usize, depth: usize) -> BuilderConfig {
        BuilderConfig {
            pool: (0..pool_n as u32).map(ModelId).collect(),
            reference: reference.then_some(ModelId(900)),
            n_settings: settings,
            max_pool_depth: depth,
            with_reference_terminal: reference,
        }
    }

    #[test]
    fn depth_one_only() {
        let c = cfg(4, false, 3, 1);
        let cascades = build_cascades(&c);
        assert_eq!(cascades.len(), 4);
        assert!(cascades.iter().all(|c| c.depth() == 1));
    }

    #[test]
    fn two_level_cross_product_count() {
        // pool 3, 2 settings, no reference: 3 + 2 * 3*3 = 21.
        let c = cfg(3, false, 2, 2);
        let cascades = build_cascades(&c);
        assert_eq!(cascades.len(), 21);
        assert_eq!(c.count(), 21);
    }

    #[test]
    fn reference_adds_terminated_variants() {
        // pool 3, 2 settings, reference, depth 2:
        // depth1: 3 + 1 = 4
        // per setting: 2-level 3*3 = 9; ref-terminated prefixes: len1 (3) + len2 (9) = 12
        // total = 4 + 2*(9 + 12) = 46.
        let c = cfg(3, true, 2, 2);
        let cascades = build_cascades(&c);
        assert_eq!(cascades.len(), 46);
        assert_eq!(c.count(), 46);
        // Some cascade must end in the reference at depth 3.
        assert!(cascades
            .iter()
            .any(|c| c.depth() == 3 && c.model_at(2) == 900));
    }

    #[test]
    fn paper_main_count_matches_documented_value() {
        // 360-model pool, resnet reference, 5 settings, depth 2:
        // 361 + 5*(360*360 + 360 + 360*360) = 1,298,161.
        let c = cfg(360, true, 5, 2);
        assert_eq!(c.count(), 1_298_161);
    }

    #[test]
    fn enumeration_is_unique() {
        let c = cfg(5, true, 2, 2);
        let cascades = build_cascades(&c);
        let set: std::collections::HashSet<Cascade> = cascades.iter().copied().collect();
        assert_eq!(set.len(), cascades.len(), "duplicate cascades emitted");
    }

    #[test]
    fn settings_are_shared_across_non_terminal_levels() {
        let c = cfg(4, true, 3, 3);
        for cascade in build_cascades(&c) {
            if cascade.depth() >= 3 {
                let s0 = cascade.setting_at(0);
                for l in 1..cascade.depth() - 1 {
                    assert_eq!(cascade.setting_at(l), s0, "{cascade}");
                }
            }
        }
    }

    #[test]
    fn depth_three_count() {
        // pool 2, 1 setting, no ref, depth 3:
        // depth1: 2; depth2: 2*2 = 4; depth3: 2^2 * 2 = 8 → 14.
        let c = cfg(2, false, 1, 3);
        let cascades = build_cascades(&c);
        assert_eq!(cascades.len(), 14);
        assert_eq!(c.count(), 14);
    }

    #[test]
    fn terminal_levels_use_setting_zero() {
        let c = cfg(3, true, 2, 2);
        for cascade in build_cascades(&c) {
            let last = cascade.depth() - 1;
            assert_eq!(cascade.setting_at(last), 0, "{cascade}");
        }
    }

    #[test]
    fn odometer_advances_correctly() {
        let mut idx = vec![0usize; 2];
        let mut seen = vec![idx.clone()];
        while advance(&mut idx, 3) {
            seen.push(idx.clone());
        }
        assert_eq!(seen.len(), 9);
        assert_eq!(seen[1], vec![0, 1]);
        assert_eq!(seen[3], vec![1, 0]);
        assert_eq!(seen[8], vec![2, 2]);
    }
}

//! Pareto frontiers over (accuracy, throughput) (paper §V-E).
//!
//! The paper cites Kung, Luccio & Preparata: 2-D maxima in O(n log n) —
//! sort by one coordinate, sweep keeping the running maximum of the other.

/// One point on (or off) the frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Index into the original cascade set.
    pub idx: usize,
    /// Eval accuracy.
    pub accuracy: f64,
    /// Throughput in frames/second.
    pub throughput: f64,
}

/// Compute the Pareto-optimal subset (maximal in both accuracy and
/// throughput). Returns points sorted by throughput descending — accuracy is
/// therefore strictly ascending along the result.
///
/// Dominated-or-equal duplicates are dropped: a point enters the frontier
/// only if its accuracy strictly exceeds every faster point's accuracy.
/// Malformed measurements demote rather than panic: a point with a NaN
/// accuracy or throughput is excluded from the frontier outright (its
/// operating point is unknowable, so it can dominate nothing), and the
/// sort itself stays total under NaN inputs.
pub fn pareto_frontier(accuracy: &[f32], throughput: &[f64]) -> Vec<ParetoPoint> {
    assert_eq!(accuracy.len(), throughput.len());
    let n = accuracy.len();
    let mut order: Vec<usize> = (0..n).collect();
    // Sort by throughput desc (NaN last); ties broken by accuracy desc so
    // the best of a tie group is seen first and the rest are dominated.
    order.sort_by(|&a, &b| {
        crate::order::nan_lowest(throughput[b], throughput[a])
            .then_with(|| crate::order::nan_lowest_f32(accuracy[b], accuracy[a]))
    });
    let mut frontier = Vec::new();
    let mut best_acc = f32::NEG_INFINITY;
    for idx in order {
        if accuracy[idx].is_nan() || throughput[idx].is_nan() {
            continue;
        }
        if accuracy[idx] > best_acc {
            best_acc = accuracy[idx];
            frontier.push(ParetoPoint {
                idx,
                accuracy: accuracy[idx] as f64,
                throughput: throughput[idx],
            });
        }
    }
    frontier
}

/// Check the defining property: no point in `points` dominates any frontier
/// member (used by property tests).
pub fn is_pareto_optimal(frontier: &[ParetoPoint], accuracy: &[f32], throughput: &[f64]) -> bool {
    frontier.iter().all(|f| {
        !(0..accuracy.len()).any(|i| {
            accuracy[i] as f64 >= f.accuracy
                && throughput[i] >= f.throughput
                && ((accuracy[i] as f64) > f.accuracy || throughput[i] > f.throughput)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_frontier() {
        //   A(0.9, 10) B(0.8, 20) C(0.7, 5) D(0.85, 15)
        // C is dominated by everything; D dominated by nothing.
        let acc = [0.9f32, 0.8, 0.7, 0.85];
        let thr = [10.0f64, 20.0, 5.0, 15.0];
        let f = pareto_frontier(&acc, &thr);
        let idxs: Vec<usize> = f.iter().map(|p| p.idx).collect();
        assert_eq!(idxs, vec![1, 3, 0]);
    }

    #[test]
    fn frontier_accuracy_strictly_increases_as_throughput_drops() {
        let acc = [0.6f32, 0.7, 0.7, 0.9, 0.5];
        let thr = [50.0f64, 40.0, 45.0, 10.0, 60.0];
        let f = pareto_frontier(&acc, &thr);
        for w in f.windows(2) {
            assert!(w[0].throughput > w[1].throughput);
            assert!(w[0].accuracy < w[1].accuracy);
        }
    }

    #[test]
    fn single_point() {
        let f = pareto_frontier(&[0.5], &[1.0]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].idx, 0);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_frontier(&[], &[]).is_empty());
    }

    #[test]
    fn nan_points_are_excluded_not_fatal() {
        let acc = [0.9f32, f32::NAN, 0.8, 0.95];
        let thr = [10.0f64, 50.0, f64::NAN, f64::NAN];
        let f = pareto_frontier(&acc, &thr);
        let idxs: Vec<usize> = f.iter().map(|p| p.idx).collect();
        assert_eq!(idxs, vec![0], "only the fully-measured point survives");
    }

    #[test]
    fn duplicates_collapse_to_one() {
        let acc = [0.8f32, 0.8, 0.8];
        let thr = [10.0f64, 10.0, 10.0];
        let f = pareto_frontier(&acc, &thr);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn no_member_is_dominated() {
        let mut rng = tahoma_mathx::DetRng::new(3);
        let n = 5000;
        let acc: Vec<f32> = (0..n).map(|_| rng.uniform_in(0.5, 1.0) as f32).collect();
        let thr: Vec<f64> = (0..n).map(|_| rng.uniform_in(1.0, 1e4)).collect();
        let f = pareto_frontier(&acc, &thr);
        assert!(!f.is_empty());
        assert!(is_pareto_optimal(&f, &acc, &thr));
        // Every non-frontier point must be dominated by some frontier point.
        let on_frontier: std::collections::HashSet<usize> = f.iter().map(|p| p.idx).collect();
        for i in 0..n {
            if !on_frontier.contains(&i) {
                let dominated = f
                    .iter()
                    .any(|p| p.accuracy >= acc[i] as f64 && p.throughput >= thr[i]);
                assert!(dominated, "point {i} neither on frontier nor dominated");
            }
        }
    }

    #[test]
    fn anticorrelated_points_all_survive() {
        // Perfect accuracy/throughput tradeoff: everything is optimal.
        let acc: Vec<f32> = (0..100).map(|i| 0.5 + i as f32 * 0.004).collect();
        let thr: Vec<f64> = (0..100).map(|i| 1000.0 - i as f64 * 9.0).collect();
        let f = pareto_frontier(&acc, &thr);
        assert_eq!(f.len(), 100);
    }
}

//! Multi-predicate ordering — the paper's explicitly-deferred future work
//! (§IV: "further query optimization could be done considering multiple
//! binary predicates in concert, we leave that for future work").
//!
//! For a conjunctive query with several `contains_object` predicates, the
//! classic System-R-style rule applies: evaluate predicates in increasing
//! `cost / rejection-rate` order so cheap, selective predicates prune the
//! item set before expensive ones run. Selectivity comes from each
//! cascade's simulated eval-split outcomes (its positive rate); cost from
//! the scenario-priced expected per-image time.

use crate::cascade::Cascade;
use crate::evaluator::{CostContext, Outcome};
use crate::order::nan_last;
use tahoma_imagery::ObjectKind;

/// One content predicate with its selected cascade and statistics.
#[derive(Debug, Clone)]
pub struct PlannedPredicate {
    /// The category tested.
    pub kind: ObjectKind,
    /// The cascade implementing it.
    pub cascade: Cascade,
    /// Expected per-image cost under the deployment scenario (seconds).
    pub expected_cost_s: f64,
    /// Expected fraction of items that pass (labeled positive).
    pub selectivity: f64,
}

impl PlannedPredicate {
    /// Build from a cascade's simulated outcome and pricing.
    ///
    /// Selectivity is estimated from the cascade's positive rate on the
    /// eval split, which the simulation already knows via its accuracy and
    /// the split's base rate; here we take it directly as an argument so
    /// callers can use corpus-specific priors when they have them.
    pub fn new(
        kind: ObjectKind,
        cascade: Cascade,
        outcome: &Outcome,
        n_images: usize,
        cost: &CostContext,
        selectivity: f64,
    ) -> PlannedPredicate {
        PlannedPredicate {
            kind,
            cascade,
            expected_cost_s: cost.expected_cost_s(&cascade, outcome, n_images),
            selectivity: selectivity.clamp(0.0, 1.0),
        }
    }

    /// The rank metric: cost per unit of rejection. Lower runs earlier.
    /// A predicate that rejects nothing (selectivity 1) is infinitely
    /// unattractive to run early. A NaN cost (or a NaN selectivity, which
    /// survives the constructor's clamp) yields a NaN rank, which
    /// [`order_predicates`] treats as worse than infinite — a predicate
    /// whose statistics are unmeasurable runs last.
    pub fn rank(&self) -> f64 {
        let rejection = 1.0 - self.selectivity;
        if rejection <= 0.0 {
            f64::INFINITY
        } else {
            self.expected_cost_s / rejection
        }
    }
}

/// Order predicates for conjunctive evaluation: ascending `cost/rejection`.
///
/// The ordering is *total and deterministic* for every float input,
/// including the degenerate ones:
///
/// 1. ascending [`PlannedPredicate::rank`], NaN ranks after `+∞` (a
///    predicate with unmeasurable statistics never runs early, and never
///    panics the planner);
/// 2. ties — in particular *all* infinite-rank predicates, which share
///    `rank() == +∞` whenever selectivity ≥ 1 — break on lower expected
///    cost (NaN cost last): among predicates that reject nothing, the
///    cheapest runs first, bounding the wasted work;
/// 3. remaining ties break on lower selectivity (NaN last), preferring the
///    predicate more likely to reject if the estimates were conservative;
/// 4. and finally on [`ObjectKind`], so equal-statistics predicates come
///    out in a stable, input-permutation-independent order.
pub fn order_predicates(mut preds: Vec<PlannedPredicate>) -> Vec<PlannedPredicate> {
    preds.sort_by(cmp_planned);
    preds
}

/// The [`order_predicates`] comparator, exposed so index-based orderings
/// share the exact rule set.
fn cmp_planned(a: &PlannedPredicate, b: &PlannedPredicate) -> std::cmp::Ordering {
    nan_last(a.rank(), b.rank())
        .then_with(|| nan_last(a.expected_cost_s, b.expected_cost_s))
        .then_with(|| nan_last(a.selectivity, b.selectivity))
        .then_with(|| a.kind.cmp(&b.kind))
}

/// The execution-order permutation of `preds` under the exact
/// [`order_predicates`] rules, without moving the predicates — what the
/// vectorized executor ([`crate::exec`]) uses to run query positions in
/// rank order while still reporting relations in query order. Full ties
/// (identical statistics *and* kind, i.e. a duplicated predicate) keep
/// their input order, matching the stable sort in [`order_predicates`].
pub fn order_indices(preds: &[PlannedPredicate]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..preds.len()).collect();
    idx.sort_by(|&a, &b| cmp_planned(&preds[a], &preds[b]).then(a.cmp(&b)));
    idx
}

/// Expected per-item cost of evaluating the predicates in the given order
/// with short-circuiting (independence assumption across predicates).
///
/// The estimate is a plain product-sum, so it propagates whatever the
/// inputs carry: a NaN cost or selectivity makes the total NaN (callers
/// comparing plans should use [`crate::order::nan_last`], under which such
/// a plan loses to any measurable one), and an infinite cost makes it
/// infinite. An infinite *rank* is harmless here — rank only orders
/// predicates; the cost of a non-rejecting predicate still enters the sum
/// weighted by the survival probability of everything before it.
pub fn expected_conjunction_cost_s(ordered: &[PlannedPredicate]) -> f64 {
    let mut surviving = 1.0f64;
    let mut total = 0.0f64;
    for p in ordered {
        total += surviving * p.expected_cost_s;
        surviving *= p.selectivity;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(kind: ObjectKind, cost: f64, sel: f64) -> PlannedPredicate {
        PlannedPredicate {
            kind,
            cascade: Cascade::single(0),
            expected_cost_s: cost,
            selectivity: sel,
        }
    }

    #[test]
    fn cheap_selective_predicates_run_first() {
        let ordered = order_predicates(vec![
            pred(ObjectKind::Acorn, 10e-3, 0.5),  // rank 0.02
            pred(ObjectKind::Fence, 1e-3, 0.5),   // rank 0.002
            pred(ObjectKind::Wallet, 1e-3, 0.95), // rank 0.02
        ]);
        assert_eq!(ordered[0].kind, ObjectKind::Fence);
        // Acorn and Wallet tie on rank 0.02; lower cost (wallet) wins.
        assert_eq!(ordered[1].kind, ObjectKind::Wallet);
        assert_eq!(ordered[2].kind, ObjectKind::Acorn);
    }

    #[test]
    fn ordering_minimizes_expected_cost_for_two_predicates() {
        // Exhaustively check the rank rule against brute force on a grid.
        for &(c1, s1) in &[(1e-3, 0.2), (5e-3, 0.9), (2e-3, 0.5)] {
            for &(c2, s2) in &[(1e-4, 0.8), (8e-3, 0.1), (3e-3, 0.6)] {
                let a = pred(ObjectKind::Acorn, c1, s1);
                let b = pred(ObjectKind::Fence, c2, s2);
                let ordered = order_predicates(vec![a.clone(), b.clone()]);
                let chosen = expected_conjunction_cost_s(&ordered);
                let alt = expected_conjunction_cost_s(&[b.clone(), a.clone()]);
                let alt2 = expected_conjunction_cost_s(&[a, b]);
                let best = alt.min(alt2);
                assert!(
                    chosen <= best + 1e-12,
                    "({c1},{s1}) x ({c2},{s2}): chosen {chosen} > best {best}"
                );
            }
        }
    }

    #[test]
    fn non_rejecting_predicate_goes_last() {
        let ordered = order_predicates(vec![
            pred(ObjectKind::Acorn, 1e-6, 1.0), // rejects nothing
            pred(ObjectKind::Fence, 1e-2, 0.3),
        ]);
        assert_eq!(ordered[0].kind, ObjectKind::Fence);
        assert!(ordered[1].rank().is_infinite());
    }

    #[test]
    fn short_circuit_cost_accounts_for_survival() {
        let a = pred(ObjectKind::Acorn, 1e-3, 0.25);
        let b = pred(ObjectKind::Fence, 4e-3, 0.5);
        let cost = expected_conjunction_cost_s(&[a, b]);
        // 1e-3 on every item + 4e-3 on the surviving quarter.
        assert!((cost - (1e-3 + 0.25 * 4e-3)).abs() < 1e-12);
    }

    #[test]
    fn empty_plan_is_free() {
        assert_eq!(expected_conjunction_cost_s(&[]), 0.0);
    }

    #[test]
    fn order_indices_matches_order_predicates() {
        let preds = vec![
            pred(ObjectKind::Acorn, 10e-3, 0.5),
            pred(ObjectKind::Fence, 1e-3, 0.5),
            pred(ObjectKind::Wallet, 1e-3, 0.95),
            pred(ObjectKind::Fence, 1e-3, 0.5), // exact duplicate: stays in input order
            pred(ObjectKind::Coho, f64::NAN, 1.0),
        ];
        let idx = order_indices(&preds);
        let via_sort = order_predicates(preds.clone());
        for (rank, &i) in idx.iter().enumerate() {
            assert_eq!(
                (preds[i].kind, preds[i].expected_cost_s.to_bits()),
                (
                    via_sort[rank].kind,
                    via_sort[rank].expected_cost_s.to_bits()
                ),
                "rank {rank}"
            );
        }
        // The duplicate Fence entries keep input order (1 before 3).
        let f1 = idx.iter().position(|&i| i == 1).unwrap();
        let f3 = idx.iter().position(|&i| i == 3).unwrap();
        assert!(f1 < f3);
    }

    #[test]
    fn nan_statistics_demote_instead_of_panicking() {
        let ordered = order_predicates(vec![
            pred(ObjectKind::Acorn, f64::NAN, 0.5), // NaN rank
            pred(ObjectKind::Fence, 1e-2, 0.3),
            pred(ObjectKind::Wallet, 1e-3, f64::NAN), // NaN rank via selectivity
        ]);
        assert_eq!(ordered[0].kind, ObjectKind::Fence, "measurable runs first");
        assert!(ordered[1].rank().is_nan());
        assert!(ordered[2].rank().is_nan());
        // Among the unmeasurable, the one with a real (lower) cost first.
        assert_eq!(ordered[1].kind, ObjectKind::Wallet);
    }

    #[test]
    fn infinite_ranks_order_by_cost_then_kind() {
        // Three non-rejecting predicates all rank +inf; cheapest first, and
        // an exact cost tie falls through to the kind ordering.
        let ordered = order_predicates(vec![
            pred(ObjectKind::Wallet, 5e-3, 1.0),
            pred(ObjectKind::Fence, 1e-3, 1.0),
            pred(ObjectKind::Acorn, 1e-3, 1.0),
        ]);
        assert!(ordered.iter().all(|p| p.rank() == f64::INFINITY));
        assert_eq!(ordered[0].kind, ObjectKind::Acorn);
        assert_eq!(ordered[1].kind, ObjectKind::Fence);
        assert_eq!(ordered[2].kind, ObjectKind::Wallet);
    }
}

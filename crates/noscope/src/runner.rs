//! Shared stream-execution loop: frame skipping, difference detection, and
//! cost accounting around a pluggable classifier stage.

use tahoma_video::diff::DdDecision;
use tahoma_video::{DifferenceDetector, Frame, FrameSkipper};

/// The classifier stage of a pipeline: labels a frame at a simulated cost.
pub trait FrameClassifier {
    /// Classify one frame, returning (label, cost in seconds).
    fn classify(&self, frame: &Frame) -> (bool, f64);
    /// Classify a batch of frames, returning (label, cost) per frame in
    /// order. The default loops [`FrameClassifier::classify`]; classifiers
    /// backed by a real CNN override this to run the batched GEMM inference
    /// path.
    fn classify_batch(&self, frames: &[&Frame]) -> Vec<(bool, f64)> {
        frames.iter().map(|f| self.classify(f)).collect()
    }
    /// Name for reports.
    fn name(&self) -> &str;
}

/// Outcome of running a pipeline over a stream.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Sampled (post-skip) frames handled.
    pub frames: usize,
    /// Frames that actually ran the classifier stage.
    pub processed: usize,
    /// Difference-detector reuse rate among sampled frames.
    pub reuse_rate: f64,
    /// Label accuracy over sampled frames.
    pub accuracy: f64,
    /// Simulated total time (s), difference detection included.
    pub total_time_s: f64,
    /// Throughput over the actively handled frames (fps), matching the
    /// paper's "results include only those frames actively processed".
    pub throughput_fps: f64,
}

/// Per-frame cost of the difference detector itself (thumbnail MSE on a
/// 16x16 crop — effectively free next to any CNN, but not zero).
pub const DD_COST_S: f64 = 2e-6;

/// Run `classifier` over a frame sequence behind frame skipping and a
/// difference detector.
pub fn run_with_dd(
    frames: &[Frame],
    skipper: FrameSkipper,
    dd: &mut DifferenceDetector,
    classifier: &dyn FrameClassifier,
) -> RunReport {
    let sampled = skipper.sample(frames);
    let mut total_time = 0.0f64;
    let mut processed = 0usize;
    let mut correct = 0usize;
    for frame in &sampled {
        total_time += DD_COST_S;
        let label = match dd.inspect(frame) {
            DdDecision::Reuse(label) => label,
            DdDecision::Process => {
                let (label, cost) = classifier.classify(frame);
                total_time += cost;
                processed += 1;
                dd.commit(frame, label);
                label
            }
        };
        if label == frame.label {
            correct += 1;
        }
    }
    let n = sampled.len();
    RunReport {
        frames: n,
        processed,
        reuse_rate: if n == 0 {
            0.0
        } else {
            1.0 - processed as f64 / n as f64
        },
        accuracy: if n == 0 {
            0.0
        } else {
            correct as f64 / n as f64
        },
        total_time_s: total_time,
        throughput_fps: if total_time > 0.0 {
            n as f64 / total_time
        } else {
            0.0
        },
    }
}

/// Batched counterpart of [`run_with_dd`], equivalent in its report (the
/// classifier costs are summed in bulk rather than interleaved with the
/// per-frame detector cost, so `total_time_s` can differ from the
/// sequential loop by float-rounding ULPs; every count and label is
/// identical).
///
/// The difference detector's Reuse/Process partition depends only on
/// thumbnail similarity — never on the labels being classified — so the loop
/// splits into two phases: walk the stream once recording decisions
/// (committing keyframes with placeholder labels), then classify every
/// Process frame in one [`FrameClassifier::classify_batch`] call and
/// propagate labels to the Reuse frames that followed each keyframe. This
/// lets CNN-backed classifiers amortize inference over whole minibatches
/// instead of being called frame by frame.
pub fn run_with_dd_batched(
    frames: &[Frame],
    skipper: FrameSkipper,
    dd: &mut DifferenceDetector,
    classifier: &dyn FrameClassifier,
) -> RunReport {
    let sampled = skipper.sample(frames);
    let carried_label = dd.last_label();
    // Phase 1: decisions. For each sampled frame, record the index into the
    // process list whose label it will inherit (its own, or the preceding
    // keyframe's).
    let mut to_process: Vec<&Frame> = Vec::new();
    let mut label_source: Vec<Option<usize>> = Vec::with_capacity(sampled.len());
    for &frame in &sampled {
        match dd.inspect(frame) {
            DdDecision::Reuse(_) => {
                label_source.push(to_process.len().checked_sub(1));
            }
            DdDecision::Process => {
                dd.commit(frame, false); // placeholder; relabeled below
                label_source.push(Some(to_process.len()));
                to_process.push(frame);
            }
        }
    }
    // Phase 2: one batched classification of every Process frame.
    let results = classifier.classify_batch(&to_process);
    debug_assert_eq!(results.len(), to_process.len());
    if let Some(&(label, _)) = results.last() {
        dd.relabel_last(label);
    }
    // Phase 3: assemble the report exactly as the sequential loop would.
    // Every processed frame pays its classifier cost exactly once, so the
    // total is a plain sum; per-frame labels come from the source map.
    let total_time =
        sampled.len() as f64 * DD_COST_S + results.iter().map(|&(_, cost)| cost).sum::<f64>();
    let mut correct = 0usize;
    for (&frame, src) in sampled.iter().zip(&label_source) {
        let label = match src {
            // A reuse frame before any keyframe in this run inherits the
            // label the detector carried in, matching the sequential loop.
            None => carried_label,
            Some(i) => results[*i].0,
        };
        if label == frame.label {
            correct += 1;
        }
    }
    let n = sampled.len();
    let processed = to_process.len();
    RunReport {
        frames: n,
        processed,
        reuse_rate: if n == 0 {
            0.0
        } else {
            1.0 - processed as f64 / n as f64
        },
        accuracy: if n == 0 {
            0.0
        } else {
            correct as f64 / n as f64
        },
        total_time_s: total_time,
        throughput_fps: if total_time > 0.0 {
            n as f64 / total_time
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_video::{StreamConfig, VideoStream};

    struct Oracle;
    impl FrameClassifier for Oracle {
        fn classify(&self, frame: &Frame) -> (bool, f64) {
            (frame.label, 1e-3)
        }
        fn name(&self) -> &str {
            "oracle"
        }
    }

    #[test]
    fn oracle_with_dd_is_nearly_perfect_on_coral() {
        let mut stream = VideoStream::new(StreamConfig::coral(3));
        let frames = stream.take_frames(9000);
        let mut dd = DifferenceDetector::new(2.5e-4);
        let report = run_with_dd(&frames, FrameSkipper::paper_default(), &mut dd, &Oracle);
        assert_eq!(report.frames, 300);
        assert!(report.accuracy > 0.9, "accuracy {}", report.accuracy);
        assert!(report.processed <= report.frames);
    }

    #[test]
    fn reuse_makes_runs_cheaper() {
        let mut stream = VideoStream::new(StreamConfig::coral(5));
        let frames = stream.take_frames(9000);
        let mut dd_off = DifferenceDetector::new(0.0); // never reuses
        let off = run_with_dd(&frames, FrameSkipper { stride: 1 }, &mut dd_off, &Oracle);
        let mut dd_on = DifferenceDetector::new(2.5e-4);
        let on = run_with_dd(&frames, FrameSkipper { stride: 1 }, &mut dd_on, &Oracle);
        assert!(on.reuse_rate > off.reuse_rate);
        assert!(on.total_time_s < off.total_time_s);
        assert!(on.throughput_fps > off.throughput_fps);
    }

    #[test]
    fn batched_runner_matches_sequential_exactly() {
        // The batched two-phase runner must reproduce the sequential report
        // bit for bit on both datasets' dynamics, including detector state.
        for cfg in [StreamConfig::coral(7), StreamConfig::jackson(7)] {
            let frames = VideoStream::new(cfg).take_frames(4500);
            let mut dd_seq = DifferenceDetector::new(2.5e-4);
            let seq = run_with_dd(&frames, FrameSkipper::paper_default(), &mut dd_seq, &Oracle);
            let mut dd_bat = DifferenceDetector::new(2.5e-4);
            let bat =
                run_with_dd_batched(&frames, FrameSkipper::paper_default(), &mut dd_bat, &Oracle);
            assert_eq!(seq.frames, bat.frames);
            assert_eq!(seq.processed, bat.processed);
            assert_eq!(seq.reuse_rate, bat.reuse_rate);
            assert_eq!(seq.accuracy, bat.accuracy);
            // Costs are summed in a different order; equal up to rounding.
            assert!(
                (seq.total_time_s - bat.total_time_s).abs() < 1e-9 * seq.total_time_s.max(1e-12),
                "total time {} vs {}",
                seq.total_time_s,
                bat.total_time_s
            );
            assert_eq!(dd_seq.counts(), dd_bat.counts());
            assert_eq!(dd_seq.last_label(), dd_bat.last_label());
        }
    }

    #[test]
    fn batched_runner_chains_across_calls() {
        // Detector state carried between batched runs keeps reuse labels
        // consistent with one long sequential run.
        let frames = VideoStream::new(StreamConfig::coral(9)).take_frames(6000);
        let (a, b) = frames.split_at(3000);
        let mut dd_seq = DifferenceDetector::new(2.5e-4);
        let s1 = run_with_dd(a, FrameSkipper { stride: 10 }, &mut dd_seq, &Oracle);
        let s2 = run_with_dd(b, FrameSkipper { stride: 10 }, &mut dd_seq, &Oracle);
        let mut dd_bat = DifferenceDetector::new(2.5e-4);
        let b1 = run_with_dd_batched(a, FrameSkipper { stride: 10 }, &mut dd_bat, &Oracle);
        let b2 = run_with_dd_batched(b, FrameSkipper { stride: 10 }, &mut dd_bat, &Oracle);
        assert_eq!(s1.accuracy, b1.accuracy);
        assert_eq!(s2.accuracy, b2.accuracy);
        // Costs are summed in a different order; equal up to rounding.
        let (seq_t, bat_t) = (
            s1.total_time_s + s2.total_time_s,
            b1.total_time_s + b2.total_time_s,
        );
        assert!(
            (seq_t - bat_t).abs() < 1e-9 * seq_t.max(1e-12),
            "total time {seq_t} vs {bat_t}"
        );
    }

    #[test]
    fn empty_stream_is_handled() {
        let mut dd = DifferenceDetector::new(1e-4);
        let report = run_with_dd(&[], FrameSkipper::paper_default(), &mut dd, &Oracle);
        assert_eq!(report.frames, 0);
        assert_eq!(report.throughput_fps, 0.0);
    }
}

//! Shared stream-execution loop: frame skipping, difference detection, and
//! cost accounting around a pluggable classifier stage.

use tahoma_video::diff::DdDecision;
use tahoma_video::{DifferenceDetector, Frame, FrameSkipper};

/// The classifier stage of a pipeline: labels a frame at a simulated cost.
pub trait FrameClassifier {
    /// Classify one frame, returning (label, cost in seconds).
    fn classify(&self, frame: &Frame) -> (bool, f64);
    /// Name for reports.
    fn name(&self) -> &str;
}

/// Outcome of running a pipeline over a stream.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Sampled (post-skip) frames handled.
    pub frames: usize,
    /// Frames that actually ran the classifier stage.
    pub processed: usize,
    /// Difference-detector reuse rate among sampled frames.
    pub reuse_rate: f64,
    /// Label accuracy over sampled frames.
    pub accuracy: f64,
    /// Simulated total time (s), difference detection included.
    pub total_time_s: f64,
    /// Throughput over the actively handled frames (fps), matching the
    /// paper's "results include only those frames actively processed".
    pub throughput_fps: f64,
}

/// Per-frame cost of the difference detector itself (thumbnail MSE on a
/// 16x16 crop — effectively free next to any CNN, but not zero).
pub const DD_COST_S: f64 = 2e-6;

/// Run `classifier` over a frame sequence behind frame skipping and a
/// difference detector.
pub fn run_with_dd(
    frames: &[Frame],
    skipper: FrameSkipper,
    dd: &mut DifferenceDetector,
    classifier: &dyn FrameClassifier,
) -> RunReport {
    let sampled = skipper.sample(frames);
    let mut total_time = 0.0f64;
    let mut processed = 0usize;
    let mut correct = 0usize;
    for frame in &sampled {
        total_time += DD_COST_S;
        let label = match dd.inspect(frame) {
            DdDecision::Reuse(label) => label,
            DdDecision::Process => {
                let (label, cost) = classifier.classify(frame);
                total_time += cost;
                processed += 1;
                dd.commit(frame, label);
                label
            }
        };
        if label == frame.label {
            correct += 1;
        }
    }
    let n = sampled.len();
    RunReport {
        frames: n,
        processed,
        reuse_rate: if n == 0 { 0.0 } else { 1.0 - processed as f64 / n as f64 },
        accuracy: if n == 0 { 0.0 } else { correct as f64 / n as f64 },
        total_time_s: total_time,
        throughput_fps: if total_time > 0.0 { n as f64 / total_time } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_video::{StreamConfig, VideoStream};

    struct Oracle;
    impl FrameClassifier for Oracle {
        fn classify(&self, frame: &Frame) -> (bool, f64) {
            (frame.label, 1e-3)
        }
        fn name(&self) -> &str {
            "oracle"
        }
    }

    #[test]
    fn oracle_with_dd_is_nearly_perfect_on_coral() {
        let mut stream = VideoStream::new(StreamConfig::coral(3));
        let frames = stream.take_frames(9000);
        let mut dd = DifferenceDetector::new(2.5e-4);
        let report = run_with_dd(&frames, FrameSkipper::paper_default(), &mut dd, &Oracle);
        assert_eq!(report.frames, 300);
        assert!(report.accuracy > 0.9, "accuracy {}", report.accuracy);
        assert!(report.processed <= report.frames);
    }

    #[test]
    fn reuse_makes_runs_cheaper() {
        let mut stream = VideoStream::new(StreamConfig::coral(5));
        let frames = stream.take_frames(9000);
        let mut dd_off = DifferenceDetector::new(0.0); // never reuses
        let off = run_with_dd(&frames, FrameSkipper { stride: 1 }, &mut dd_off, &Oracle);
        let mut dd_on = DifferenceDetector::new(2.5e-4);
        let on = run_with_dd(&frames, FrameSkipper { stride: 1 }, &mut dd_on, &Oracle);
        assert!(on.reuse_rate > off.reuse_rate);
        assert!(on.total_time_s < off.total_time_s);
        assert!(on.throughput_fps > off.throughput_fps);
    }

    #[test]
    fn empty_stream_is_handled() {
        let mut dd = DifferenceDetector::new(1e-4);
        let report = run_with_dd(&[], FrameSkipper::paper_default(), &mut dd, &Oracle);
        assert_eq!(report.frames, 0);
        assert_eq!(report.throughput_fps, 0.0);
    }
}

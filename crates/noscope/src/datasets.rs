//! The two public NoScope video datasets, reconstructed synthetically
//! (DESIGN.md §2.5).

use tahoma_imagery::{ObjectKind, SceneParams, SceneRenderer, TranscodeEngine};
use tahoma_video::{Frame, StreamConfig, VideoStream};
use tahoma_zoo::PredicateSpec;

/// A video dataset: stream dynamics plus task hardness.
#[derive(Debug, Clone)]
pub struct VideoDataset {
    /// Stream generator configuration.
    pub stream: StreamConfig,
    /// Predicate hardness driving the surrogate classifiers on this stream.
    pub pred: PredicateSpec,
    /// Total frames before frame skipping.
    pub n_frames: usize,
    /// Difference-detector MSE threshold.
    pub dd_threshold: f64,
}

impl VideoDataset {
    /// The `coral` dataset: an easy, slow-changing reef camera. NoScope
    /// reported high difference-detector reuse (25.2%) and high throughput.
    pub fn coral(seed: u64, n_frames: usize) -> VideoDataset {
        VideoDataset {
            stream: StreamConfig::coral(seed),
            pred: PredicateSpec {
                kind: ObjectKind::Coho,
                // An easy task: NoScope's own specialized model rarely
                // falls through to YOLOv2 on coral (its 3,494 fps implies
                // near-zero fallthrough).
                d_max: 6.0,
            },
            n_frames,
            dd_threshold: 2.6e-4,
        }
    }

    /// The `jackson` dataset: a busy intersection. Low reuse (3.8%), a hard
    /// task that forces NoScope to call YOLOv2 often (footnote 2).
    pub fn jackson(seed: u64, n_frames: usize) -> VideoDataset {
        VideoDataset {
            stream: StreamConfig::jackson(seed),
            pred: PredicateSpec {
                kind: ObjectKind::Wallet,
                // Hard enough that a single fixed specialized model is
                // uncertain on a sizable fraction of frames (NoScope's 260
                // fps implies ~25% YOLOv2 fallthrough).
                d_max: 4.2,
            },
            n_frames,
            dd_threshold: 6.3e-4,
        }
    }

    /// Materialize `n` frames of this stream as *real* raster imagery:
    /// presence/difficulty dynamics come from the synthetic stream
    /// generator, pixels from the planted-object renderer at
    /// `scene_size`px, and each difference-detector thumbnail is the
    /// transcode engine's luma downscale of the rendered frame — the same
    /// per-frame thumbnailing cost a deployment pays at ingest. Pass one
    /// engine for the whole call chain so its resize tables and scratch
    /// amortize across frames.
    pub fn rendered_frames(
        &self,
        n: usize,
        scene_size: usize,
        engine: &mut TranscodeEngine,
    ) -> Vec<Frame> {
        let mut stream = VideoStream::new(self.stream.clone());
        let renderer = SceneRenderer::new(
            self.pred.kind,
            SceneParams::small(scene_size),
            self.stream.seed ^ 0xF8A3E,
        );
        stream
            .take_frames(n)
            .into_iter()
            .map(|f| {
                let (img, _) = renderer.render(f.idx, f.label);
                Frame::from_image(
                    f.idx,
                    f.label,
                    f.difficulty,
                    &img,
                    self.stream.thumb_side,
                    engine,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coral_is_easier_than_jackson() {
        let c = VideoDataset::coral(1, 100);
        let j = VideoDataset::jackson(1, 100);
        assert!(c.pred.d_max > j.pred.d_max);
        assert!(c.stream.drift < j.stream.drift);
    }

    #[test]
    fn rendered_frames_carry_stream_labels_and_real_thumbs() {
        let ds = VideoDataset::coral(11, 40);
        let mut engine = TranscodeEngine::new();
        let frames = ds.rendered_frames(40, 32, &mut engine);
        assert_eq!(frames.len(), 40);
        // Labels match the underlying stream dynamics.
        let reference = VideoStream::new(ds.stream.clone()).take_frames(40);
        for (f, r) in frames.iter().zip(&reference) {
            assert_eq!(f.label, r.label);
            assert_eq!(f.thumb.len(), ds.stream.thumb_side * ds.stream.thumb_side);
            assert!(f.thumb.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        // Rendered thumbnails reflect content, not a constant fill.
        let spread = frames
            .iter()
            .map(|f| {
                let mean = f.thumb.iter().sum::<f32>() / f.thumb.len() as f32;
                f.thumb.iter().map(|v| (v - mean).abs()).sum::<f32>() / f.thumb.len() as f32
            })
            .sum::<f32>()
            / frames.len() as f32;
        assert!(spread > 1e-3, "thumbnails look constant: {spread}");
        // The batched DD runner agrees with the sequential one on real
        // imagery-backed frames too.
        struct Oracle;
        impl crate::runner::FrameClassifier for Oracle {
            fn classify(&self, frame: &Frame) -> (bool, f64) {
                (frame.label, 1e-3)
            }
            fn name(&self) -> &str {
                "oracle"
            }
        }
        let mut dd_seq = tahoma_video::DifferenceDetector::new(ds.dd_threshold);
        let seq = crate::runner::run_with_dd(
            &frames,
            tahoma_video::FrameSkipper { stride: 1 },
            &mut dd_seq,
            &Oracle,
        );
        let mut dd_bat = tahoma_video::DifferenceDetector::new(ds.dd_threshold);
        let bat = crate::runner::run_with_dd_batched(
            &frames,
            tahoma_video::FrameSkipper { stride: 1 },
            &mut dd_bat,
            &Oracle,
        );
        assert_eq!(seq.frames, bat.frames);
        assert_eq!(seq.processed, bat.processed);
        assert_eq!(seq.accuracy, bat.accuracy);
    }
}

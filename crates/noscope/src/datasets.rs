//! The two public NoScope video datasets, reconstructed synthetically
//! (DESIGN.md §2.5).

use tahoma_imagery::ObjectKind;
use tahoma_video::StreamConfig;
use tahoma_zoo::PredicateSpec;

/// A video dataset: stream dynamics plus task hardness.
#[derive(Debug, Clone)]
pub struct VideoDataset {
    /// Stream generator configuration.
    pub stream: StreamConfig,
    /// Predicate hardness driving the surrogate classifiers on this stream.
    pub pred: PredicateSpec,
    /// Total frames before frame skipping.
    pub n_frames: usize,
    /// Difference-detector MSE threshold.
    pub dd_threshold: f64,
}

impl VideoDataset {
    /// The `coral` dataset: an easy, slow-changing reef camera. NoScope
    /// reported high difference-detector reuse (25.2%) and high throughput.
    pub fn coral(seed: u64, n_frames: usize) -> VideoDataset {
        VideoDataset {
            stream: StreamConfig::coral(seed),
            pred: PredicateSpec {
                kind: ObjectKind::Coho,
                // An easy task: NoScope's own specialized model rarely
                // falls through to YOLOv2 on coral (its 3,494 fps implies
                // near-zero fallthrough).
                d_max: 6.0,
            },
            n_frames,
            dd_threshold: 2.6e-4,
        }
    }

    /// The `jackson` dataset: a busy intersection. Low reuse (3.8%), a hard
    /// task that forces NoScope to call YOLOv2 often (footnote 2).
    pub fn jackson(seed: u64, n_frames: usize) -> VideoDataset {
        VideoDataset {
            stream: StreamConfig::jackson(seed),
            pred: PredicateSpec {
                kind: ObjectKind::Wallet,
                // Hard enough that a single fixed specialized model is
                // uncertain on a sizable fraction of frames (NoScope's 260
                // fps implies ~25% YOLOv2 fallthrough).
                d_max: 4.2,
            },
            n_frames,
            dd_threshold: 6.3e-4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coral_is_easier_than_jackson() {
        let c = VideoDataset::coral(1, 100);
        let j = VideoDataset::jackson(1, 100);
        assert!(c.pred.d_max > j.pred.d_max);
        assert!(c.stream.drift < j.stream.drift);
    }
}

//! NoScope-style baseline and the TAHOMA+DD comparison system (paper
//! §VII-C, Fig. 8).
//!
//! NoScope's pipeline per sampled frame: difference detector → one
//! specialized CNN with decision thresholds → YOLOv2-class reference when
//! uncertain. `TAHOMA+DD` keeps the same difference detector and frame
//! skipping but replaces the fixed specialized-model stage with TAHOMA's
//! selected Pareto-optimal cascade (chosen at the accuracy level closest
//! above NoScope's), drawn from the full physical-representation design
//! space. Throughput accounting follows the paper: INFER-ONLY costs, only
//! actively processed frames counted.

pub mod datasets;
pub mod runner;
pub mod system;
pub mod tahoma_dd;

pub use datasets::VideoDataset;
pub use runner::{run_with_dd, run_with_dd_batched, FrameClassifier, RunReport};
pub use system::{NoScopeConfig, NoScopeSystem};
pub use tahoma_dd::TahomaDdSystem;

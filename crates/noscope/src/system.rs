//! The NoScope-style baseline system (paper §VII-C).
//!
//! One fixed specialized CNN (full-color input, NoScope's design point —
//! no physical-representation optimization) with decision thresholds at a
//! target precision, falling back to a YOLOv2-class reference when
//! uncertain. Both the specialized model and the reference are scored by the
//! same surrogate family the TAHOMA side uses, so the comparison isolates
//! the system design, not the classifier substrate.

use crate::datasets::VideoDataset;
use crate::runner::FrameClassifier;
use tahoma_core::thresholds::{calibrate, DecisionThresholds};
use tahoma_costmodel::DeviceProfile;
use tahoma_imagery::{ColorMode, Representation};
use tahoma_mathx::DetRng;
use tahoma_video::{Frame, VideoStream};
use tahoma_zoo::surrogate::Split;
use tahoma_zoo::{ArchSpec, ModelId, ModelKind, ModelVariant, SurrogateScorer};

/// NoScope configuration.
#[derive(Debug, Clone)]
pub struct NoScopeConfig {
    /// Threshold-calibration precision target (paper uses 0.95).
    pub target_precision: f64,
    /// Config frames used for calibration (sampled from a separate stream
    /// prefix).
    pub n_config_frames: usize,
    /// Seed for the calibration stream.
    pub seed: u64,
}

impl Default for NoScopeConfig {
    fn default() -> Self {
        NoScopeConfig {
            target_precision: 0.95,
            n_config_frames: 600,
            seed: 0x0505,
        }
    }
}

/// The assembled NoScope pipeline stage (specialized model + reference).
pub struct NoScopeSystem {
    scorer: SurrogateScorer,
    specialized: ModelVariant,
    reference: ModelVariant,
    thresholds: DecisionThresholds,
    spec_infer_s: f64,
    ref_infer_s: f64,
}

impl NoScopeSystem {
    /// NoScope's specialized-model design point: a small CNN on full-color
    /// 60x60 inputs (closest paper representation to NoScope's 50x50 RGB).
    pub fn specialized_variant() -> ModelVariant {
        ModelVariant {
            id: ModelId(0),
            kind: ModelKind::Cnn(ArchSpec {
                conv_layers: 2,
                conv_nodes: 16,
                dense_nodes: 32,
            }),
            input: Representation::new(60, ColorMode::Rgb),
        }
    }

    /// Build the system: score the specialized model on a calibration
    /// stream and fit its thresholds at the target precision.
    pub fn build(dataset: &VideoDataset, cfg: &NoScopeConfig) -> NoScopeSystem {
        let device = DeviceProfile::k80();
        let scorer = SurrogateScorer::new(dataset.pred, cfg.seed ^ 0x5C0);
        let specialized = Self::specialized_variant();
        let reference = ModelVariant {
            id: ModelId(1),
            kind: ModelKind::YoloV2,
            input: Representation::full(),
        };
        // Calibration stream: same dynamics, different seed, so thresholds
        // are not fit on the measurement stream.
        let mut cal_cfg = dataset.stream.clone();
        cal_cfg.seed ^= 0xCA11B;
        let mut stream = VideoStream::new(cal_cfg);
        let frames = stream.take_frames(cfg.n_config_frames);
        let scores: Vec<f32> = frames
            .iter()
            .map(|f| scorer.score(&specialized, Split::Config, f.idx, f.label, f.difficulty))
            .collect();
        let labels: Vec<bool> = frames.iter().map(|f| f.label).collect();
        let thresholds = calibrate(&scores, &labels, cfg.target_precision);
        NoScopeSystem {
            spec_infer_s: specialized.infer_s(&device),
            ref_infer_s: reference.infer_s(&device),
            scorer,
            specialized,
            reference,
            thresholds,
        }
    }

    /// The calibrated thresholds (exposed for reporting).
    pub fn thresholds(&self) -> DecisionThresholds {
        self.thresholds
    }

    /// Fraction of a frame set that would fall through to the reference.
    pub fn fallthrough_rate(&self, frames: &[Frame]) -> f64 {
        if frames.is_empty() {
            return 0.0;
        }
        let uncertain = frames
            .iter()
            .filter(|f| {
                let s =
                    self.scorer
                        .score(&self.specialized, Split::Eval, f.idx, f.label, f.difficulty);
                self.thresholds.decide(s).is_none()
            })
            .count();
        uncertain as f64 / frames.len() as f64
    }
}

impl FrameClassifier for NoScopeSystem {
    fn classify(&self, frame: &Frame) -> (bool, f64) {
        let mut cost = self.spec_infer_s;
        let score = self.scorer.score(
            &self.specialized,
            Split::Eval,
            frame.idx,
            frame.label,
            frame.difficulty,
        );
        if let Some(label) = self.thresholds.decide(score) {
            return (label, cost);
        }
        cost += self.ref_infer_s;
        let ref_score = self.scorer.score(
            &self.reference,
            Split::Eval,
            frame.idx,
            frame.label,
            frame.difficulty,
        );
        (ref_score >= 0.5, cost)
    }

    fn name(&self) -> &str {
        "noscope"
    }
}

/// Scores an arbitrary model variant on frames — adapter shared with the
/// TAHOMA+DD side.
pub struct FrameScorer {
    /// Underlying surrogate family.
    pub scorer: SurrogateScorer,
}

impl FrameScorer {
    /// Score one variant on one frame.
    pub fn score(&self, variant: &ModelVariant, frame: &Frame) -> f32 {
        self.scorer.score(
            variant,
            Split::Eval,
            frame.idx,
            frame.label,
            frame.difficulty,
        )
    }
}

/// Deterministic helper used by tests: a seeded shuffle of frame indices.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    DetRng::new(seed).shuffle(&mut idx);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_with_dd, DD_COST_S};
    use tahoma_video::{DifferenceDetector, FrameSkipper};

    #[test]
    fn builds_and_classifies() {
        let ds = VideoDataset::coral(1, 3000);
        let sys = NoScopeSystem::build(&ds, &NoScopeConfig::default());
        let mut stream = VideoStream::new(ds.stream.clone());
        let frames = stream.take_frames(3000);
        let mut dd = DifferenceDetector::new(ds.dd_threshold);
        let report = run_with_dd(&frames, FrameSkipper::paper_default(), &mut dd, &sys);
        assert!(report.accuracy > 0.7, "accuracy {}", report.accuracy);
        assert!(report.throughput_fps > 1.0 / (sys.ref_infer_s + DD_COST_S));
    }

    #[test]
    fn jackson_falls_through_more_than_coral() {
        let coral = VideoDataset::coral(2, 1500);
        let jackson = VideoDataset::jackson(2, 1500);
        let cfg = NoScopeConfig::default();
        let sys_c = NoScopeSystem::build(&coral, &cfg);
        let sys_j = NoScopeSystem::build(&jackson, &cfg);
        let frames_c = VideoStream::new(coral.stream.clone()).take_frames(1500);
        let frames_j = VideoStream::new(jackson.stream.clone()).take_frames(1500);
        let fc = sys_c.fallthrough_rate(&frames_c);
        let fj = sys_j.fallthrough_rate(&frames_j);
        assert!(
            fj > fc,
            "jackson fallthrough {fj:.3} should exceed coral {fc:.3}"
        );
    }

    #[test]
    fn shuffled_indices_is_permutation() {
        let s = shuffled_indices(50, 9);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

//! TAHOMA+DD: TAHOMA's cascade optimizer behind NoScope's difference
//! detector (paper §VII-C).
//!
//! "To create TAHOMA+DD, we recorded frame similarity using NoScope's
//! difference detector and reused TAHOMA's results for frames meeting
//! NoScope's threshold instead of classifying them." The cascade is the
//! Pareto-optimal one with accuracy closest above NoScope's measured
//! accuracy, selected under INFER-ONLY pricing (matching the paper's
//! throughput accounting).

use crate::datasets::VideoDataset;
use crate::runner::FrameClassifier;
use tahoma_core::evaluator::CostContext;
use tahoma_core::pipeline::TahomaSystem;
use tahoma_core::selector::select_matching_accuracy;
use tahoma_core::Cascade;
use tahoma_costmodel::{AnalyticProfiler, Scenario};
use tahoma_video::Frame;
use tahoma_zoo::repository::SurrogateBuildConfig;
use tahoma_zoo::surrogate::Split;
use tahoma_zoo::SurrogateScorer;

/// TAHOMA with a difference detector front end.
pub struct TahomaDdSystem {
    system: TahomaSystem,
    scorer: SurrogateScorer,
    cascade: Cascade,
    cost: CostContext,
    expected_accuracy: f64,
    description: String,
}

impl TahomaDdSystem {
    /// Initialize TAHOMA for the dataset's predicate and select the
    /// Pareto-optimal cascade with accuracy closest above
    /// `target_accuracy` (NoScope's measured accuracy) under INFER-ONLY
    /// pricing. `build_cfg` controls repository scale (the Fig. 8 harness
    /// uses the full 360-model space; tests use a subset).
    pub fn build(
        dataset: &VideoDataset,
        mut build_cfg: SurrogateBuildConfig,
        target_accuracy: f64,
    ) -> TahomaDdSystem {
        build_cfg.include_yolo = true;
        let repo = tahoma_zoo::repository::build_surrogate_repository(
            dataset.pred,
            &build_cfg,
            &tahoma_costmodel::DeviceProfile::k80(),
        );
        let scorer = SurrogateScorer {
            pred: dataset.pred,
            params: build_cfg.params,
            seed: build_cfg.seed,
        };
        let system = TahomaSystem::initialize_paper_main(repo);
        let profiler = AnalyticProfiler::paper_testbed(Scenario::InferOnly);
        let frontier = system.frontier(&profiler);
        let point = select_matching_accuracy(&frontier.points, target_accuracy)
            .expect("frontier is nonempty");
        let cascade = system.outcomes.cascades[point.idx];
        let cost = CostContext::build(&system.repo, &profiler);
        let description = system.describe(&cascade);
        TahomaDdSystem {
            scorer,
            cascade,
            cost,
            expected_accuracy: point.accuracy,
            description,
            system,
        }
    }

    /// The selected cascade's expected (eval-split) accuracy.
    pub fn expected_accuracy(&self) -> f64 {
        self.expected_accuracy
    }

    /// Human-readable cascade plan.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The underlying initialized system (for inspection in reports).
    pub fn system(&self) -> &TahomaSystem {
        &self.system
    }
}

impl FrameClassifier for TahomaDdSystem {
    fn classify(&self, frame: &Frame) -> (bool, f64) {
        let depth = self.cascade.depth();
        let mut cost = 0.0f64;
        for l in 0..depth {
            let m = self.cascade.model_at(l) as usize;
            cost += self.cost.infer_s[m];
            let variant = &self.system.repo.entries[m].variant;
            let score = self.scorer.score(
                variant,
                Split::Eval,
                frame.idx,
                frame.label,
                frame.difficulty,
            );
            if l + 1 == depth {
                return (score >= 0.5, cost);
            }
            let thr = self
                .system
                .thresholds
                .get(m, self.cascade.setting_at(l) as usize);
            if let Some(label) = thr.decide(score) {
                return (label, cost);
            }
        }
        unreachable!("terminal level always decides")
    }

    /// Batch-major cascade walk through the shared level-major executor
    /// ([`tahoma_core::exec::run_level_major`]): levels outer, frames
    /// inner, survivors compacted per level. The per-(variant, split)
    /// scoring context is derived once per *level* instead of once per
    /// (level, frame) — the same hoisting `score_population` does for
    /// repository building. Costs price a frame's deciding level through
    /// an inference-cost prefix table whose accumulation order matches
    /// [`TahomaDdSystem::classify`], so labels and costs are bit-identical
    /// to the per-frame walk.
    fn classify_batch(&self, frames: &[&Frame]) -> Vec<(bool, f64)> {
        let depth = self.cascade.depth();
        let streams: Vec<_> = (0..depth)
            .map(|l| {
                let m = self.cascade.model_at(l) as usize;
                self.scorer
                    .variant_stream(&self.system.repo.entries[m].variant, Split::Eval)
            })
            .collect();
        let decisions = tahoma_core::exec::run_level_major(
            &self.cascade,
            &self.system.thresholds,
            frames.len(),
            |l, _, pack, out| {
                streams[l].score_into(
                    pack.iter().map(|&fi| {
                        let f = frames[fi];
                        (f.idx, f.label, f.difficulty)
                    }),
                    out,
                );
            },
        );
        let mut prefix = [0.0f64; tahoma_core::MAX_LEVELS];
        let mut acc = 0.0f64;
        for (l, slot) in prefix.iter_mut().take(depth).enumerate() {
            acc += self.cost.infer_s[self.cascade.model_at(l) as usize];
            *slot = acc;
        }
        decisions
            .iter()
            .map(|d| (d.value, prefix[d.level as usize]))
            .collect()
    }

    fn name(&self) -> &str {
        "tahoma+dd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_with_dd;
    use crate::system::{NoScopeConfig, NoScopeSystem};
    use tahoma_video::{DifferenceDetector, FrameSkipper, VideoStream};

    fn small_build_cfg() -> SurrogateBuildConfig {
        SurrogateBuildConfig {
            n_config: 200,
            n_eval: 250,
            seed: 0xF168,
            variants: Some(
                tahoma_zoo::variant::paper_variants()
                    .into_iter()
                    .step_by(10)
                    .collect(),
            ),
            ..Default::default()
        }
    }

    #[test]
    fn tahoma_dd_beats_noscope_on_jackson() {
        let ds = VideoDataset::jackson(4, 9000);
        let frames = VideoStream::new(ds.stream.clone()).take_frames(ds.n_frames);
        let skipper = FrameSkipper::paper_default();

        let noscope = NoScopeSystem::build(&ds, &NoScopeConfig::default());
        let mut dd = DifferenceDetector::new(ds.dd_threshold);
        let ns_report = run_with_dd(&frames, skipper, &mut dd, &noscope);

        let tahoma = TahomaDdSystem::build(&ds, small_build_cfg(), ns_report.accuracy);
        let mut dd = DifferenceDetector::new(ds.dd_threshold);
        let t_report = run_with_dd(&frames, skipper, &mut dd, &tahoma);

        assert!(
            t_report.throughput_fps > ns_report.throughput_fps * 2.0,
            "TAHOMA+DD {:.0} fps vs NoScope {:.0} fps",
            t_report.throughput_fps,
            ns_report.throughput_fps
        );
        // The stream's difficulty distribution is harder-tailed than the
        // eval split the cascade was selected on, so measured accuracy can
        // sit somewhat below the selection target.
        assert!(
            t_report.accuracy >= ns_report.accuracy - 0.10,
            "TAHOMA+DD accuracy {:.3} collapsed vs NoScope {:.3}",
            t_report.accuracy,
            ns_report.accuracy
        );
    }

    #[test]
    fn batch_classification_matches_per_frame_bitwise() {
        let ds = VideoDataset::coral(6, 500);
        let sys = TahomaDdSystem::build(&ds, small_build_cfg(), 0.85);
        let frames = VideoStream::new(ds.stream.clone()).take_frames(500);
        let refs: Vec<&Frame> = frames.iter().collect();
        let batched = sys.classify_batch(&refs);
        assert_eq!(batched.len(), frames.len());
        for (frame, &got) in frames.iter().zip(&batched) {
            assert_eq!(sys.classify(frame), got, "frame {}", frame.idx);
        }
    }

    #[test]
    fn selected_cascade_has_expected_accuracy_at_least_target() {
        let ds = VideoDataset::coral(5, 1000);
        let sys = TahomaDdSystem::build(&ds, small_build_cfg(), 0.85);
        assert!(sys.expected_accuracy() >= 0.85 - 1e-9 || sys.expected_accuracy() > 0.8);
        assert!(!sys.description().is_empty());
    }
}

//! Self-contained binary serialization of trained models (`TAHN` format).
//!
//! The paper's system initializes a model repository per predicate and keeps
//! it for query time; persisting weights makes that repository durable. The
//! format is deliberately simple: header, layer count, then per layer a type
//! code, geometry, and raw little-endian f32 parameters.

use crate::layer::{Conv2d, Dense, Layer, MaxPool2, Relu};
use crate::model::Sequential;
use crate::tensor::Shape;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"TAHN";
const VERSION: u8 = 1;

const TAG_CONV: u8 = 1;
const TAG_POOL: u8 = 2;
const TAG_RELU: u8 = 3;
const TAG_DENSE: u8 = 4;

/// Serialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializeError {
    /// Stream is not a TAHN model or is truncated.
    Malformed(String),
    /// Version newer than this library understands.
    UnsupportedVersion(u8),
    /// A layer kind that the format cannot express.
    UnsupportedLayer(&'static str),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Malformed(m) => write!(f, "malformed model stream: {m}"),
            SerializeError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            SerializeError::UnsupportedLayer(n) => write!(f, "unsupported layer {n}"),
        }
    }
}

impl std::error::Error for SerializeError {}

fn put_shape(buf: &mut BytesMut, s: Shape) {
    buf.put_u32_le(s.c as u32);
    buf.put_u32_le(s.h as u32);
    buf.put_u32_le(s.w as u32);
}

fn get_shape(buf: &mut &[u8]) -> Result<Shape, SerializeError> {
    if buf.remaining() < 12 {
        return Err(SerializeError::Malformed("truncated shape".into()));
    }
    Ok(Shape::new(
        buf.get_u32_le() as usize,
        buf.get_u32_le() as usize,
        buf.get_u32_le() as usize,
    ))
}

fn put_f32s(buf: &mut BytesMut, xs: &[f32]) {
    buf.put_u32_le(xs.len() as u32);
    for &x in xs {
        buf.put_f32_le(x);
    }
}

fn get_f32s(buf: &mut &[u8]) -> Result<Vec<f32>, SerializeError> {
    if buf.remaining() < 4 {
        return Err(SerializeError::Malformed("truncated f32 count".into()));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 4 {
        return Err(SerializeError::Malformed("truncated f32 payload".into()));
    }
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

/// Serialize a model to bytes.
///
/// Only layers produced by `CnnSpec::build` (conv/pool/relu/dense) are
/// supported; an unknown layer kind yields `UnsupportedLayer`.
pub fn save(model: &Sequential) -> Result<Bytes, SerializeError> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    put_shape(&mut buf, model.input_shape());
    buf.put_u32_le(model.layers().len() as u32);
    for layer in model.layers() {
        let any = layer.as_any();
        if let Some(conv) = any.downcast_ref::<Conv2d>() {
            buf.put_u8(TAG_CONV);
            let (input, out_c, k) = conv.geometry();
            put_shape(&mut buf, input);
            buf.put_u32_le(out_c as u32);
            buf.put_u32_le(k as u32);
            let (w, b) = conv.weights_bias();
            put_f32s(&mut buf, w);
            put_f32s(&mut buf, b);
        } else if let Some(pool) = any.downcast_ref::<MaxPool2>() {
            buf.put_u8(TAG_POOL);
            put_shape(&mut buf, pool.input_shape());
        } else if let Some(relu) = any.downcast_ref::<Relu>() {
            buf.put_u8(TAG_RELU);
            put_shape(&mut buf, relu.output_shape());
        } else if let Some(dense) = any.downcast_ref::<Dense>() {
            buf.put_u8(TAG_DENSE);
            let (n_in, n_out) = dense.geometry();
            buf.put_u32_le(n_in as u32);
            buf.put_u32_le(n_out as u32);
            let (w, b) = dense.weights_bias();
            put_f32s(&mut buf, w);
            put_f32s(&mut buf, b);
        } else {
            return Err(SerializeError::UnsupportedLayer(layer.name()));
        }
    }
    Ok(buf.freeze())
}

/// Deserialize a model saved with [`save`].
pub fn load(bytes: &[u8]) -> Result<Sequential, SerializeError> {
    let mut buf = bytes;
    if buf.remaining() < 5 || &buf[..4] != MAGIC {
        return Err(SerializeError::Malformed("bad magic".into()));
    }
    buf.advance(4);
    let version = buf.get_u8();
    if version != VERSION {
        return Err(SerializeError::UnsupportedVersion(version));
    }
    let input = get_shape(&mut buf)?;
    if buf.remaining() < 4 {
        return Err(SerializeError::Malformed("truncated layer count".into()));
    }
    let n_layers = buf.get_u32_le() as usize;
    let mut model = Sequential::new(input);
    for _ in 0..n_layers {
        if buf.remaining() < 1 {
            return Err(SerializeError::Malformed("truncated layer tag".into()));
        }
        match buf.get_u8() {
            TAG_CONV => {
                let input = get_shape(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(SerializeError::Malformed("truncated conv geom".into()));
                }
                let out_c = buf.get_u32_le() as usize;
                let k = buf.get_u32_le() as usize;
                let w = get_f32s(&mut buf)?;
                let b = get_f32s(&mut buf)?;
                if w.len() != out_c * input.c * k * k || b.len() != out_c {
                    return Err(SerializeError::Malformed("conv param size".into()));
                }
                model.push(Box::new(Conv2d::from_parts(input, out_c, k, w, b)));
            }
            TAG_POOL => {
                let input = get_shape(&mut buf)?;
                model.push(Box::new(MaxPool2::new(input)));
            }
            TAG_RELU => {
                let shape = get_shape(&mut buf)?;
                model.push(Box::new(Relu::new(shape)));
            }
            TAG_DENSE => {
                if buf.remaining() < 8 {
                    return Err(SerializeError::Malformed("truncated dense geom".into()));
                }
                let n_in = buf.get_u32_le() as usize;
                let n_out = buf.get_u32_le() as usize;
                let w = get_f32s(&mut buf)?;
                let b = get_f32s(&mut buf)?;
                if w.len() != n_in * n_out || b.len() != n_out {
                    return Err(SerializeError::Malformed("dense param size".into()));
                }
                model.push(Box::new(Dense::from_parts(n_in, n_out, w, b)));
            }
            tag => {
                return Err(SerializeError::Malformed(format!(
                    "unknown layer tag {tag}"
                )));
            }
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CnnSpec;

    fn model() -> Sequential {
        CnnSpec {
            input: Shape::new(1, 8, 8),
            conv_channels: vec![3],
            kernel: 3,
            dense_units: 4,
        }
        .build(77)
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let mut m = model();
        let bytes = save(&m).unwrap();
        let mut m2 = load(&bytes).unwrap();
        let input: Vec<f32> = (0..64).map(|i| (i % 9) as f32 / 9.0).collect();
        assert_eq!(m.forward_logit(&input), m2.forward_logit(&input));
        assert_eq!(m.flops(), m2.flops());
        assert_eq!(m.param_count(), m2.param_count());
    }

    #[test]
    fn roundtrip_preserves_architecture() {
        let m = model();
        let m2 = load(&save(&m).unwrap()).unwrap();
        assert_eq!(m.summary(), m2.summary());
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(load(b"NOPE"), Err(SerializeError::Malformed(_))));
    }

    #[test]
    fn rejects_future_version() {
        let m = model();
        let mut bytes = save(&m).unwrap().to_vec();
        bytes[4] = 99;
        assert!(matches!(
            load(&bytes),
            Err(SerializeError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let m = model();
        let bytes = save(&m).unwrap();
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(
                load(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }
}

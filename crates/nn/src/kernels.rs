//! Explicit SIMD kernels for the non-GEMM layers: batch-1 dense
//! matrix–vector products, the ReLU inference sweep, and the 2x2 max-pool
//! inference sweep.
//!
//! With `-C target-cpu=native` gone from the default build (PR 2), these
//! sweeps compiled to baseline SSE2 — worth 5–10% of whole-model inference
//! throughput (ROADMAP). Like `gemm` and the imagery transcode engine, each
//! operation dispatches at runtime across AVX-512 / AVX2+FMA / portable
//! tiers that execute the **same IEEE operations in the same order**, so
//! every tier is bitwise identical to the portable reference
//! (property-tested in `tests/proptests.rs`); `Kernel::Auto` resolves
//! through the per-op-class policy ([`tahoma_mathx::simd_policy`]) under
//! the [`OpClass::Matvec`] / [`OpClass::Relu`] / [`OpClass::Pool`] classes.
//!
//! Bitwise-identity recipes:
//!
//! * **matvec** accumulates into [`MV_LANES`] = 16 f32 lanes (element `i`
//!   of the dot product lands in lane `i % 16`) with one fused
//!   multiply-add chain per lane, finished by a fixed pairwise fold tree —
//!   one zmm on AVX-512, two ymm on AVX2, a plain `f32::mul_add` array in
//!   the portable tier;
//! * **relu** is the strict select `if x > 0.0 { x } else { 0.0 }` (the
//!   exact semantics of the training path's mask), which maps to a
//!   compare-and-mask in both vector tiers — NaN and `-0.0` inputs map to
//!   `+0.0` in every tier;
//! * **max-pool** replays the scalar reference's strict-`>` running max
//!   over the four window values in the same order (top-left, top-right,
//!   bottom-left, bottom-right, starting from `-inf`), as a
//!   compare-and-blend chain over deinterleaved even/odd vectors.
//!
//! This is one of the four files sanctioned to contain raw-pointer
//! arithmetic; see `SAFETY.md` at the repository root for the unsafe
//! policy and the `checked-kernels` feature that asserts every vector
//! span here at runtime.

use crate::gemm::Kernel;
use tahoma_mathx::checked;
use tahoma_mathx::simd_policy::OpClass;

/// f32 accumulator lanes in the matvec reduction: element `i` of a dot
/// product accumulates into lane `i % MV_LANES`, in every tier.
pub const MV_LANES: usize = 16;

/// Fixed pairwise fold over the 16 matvec lanes — identical in every tier,
/// so the final scalar is too.
#[inline]
fn fold_lanes(l: &[f32; MV_LANES]) -> f32 {
    let a = ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
    let b = ((l[8] + l[9]) + (l[10] + l[11])) + ((l[12] + l[13]) + (l[14] + l[15]));
    a + b
}

/// Scalar tail: fold elements `main..n` into the lane accumulators with
/// the same per-lane fused chain the vector body uses.
#[inline]
fn matvec_tail(row: &[f32], x: &[f32], main: usize, lanes: &mut [f32; MV_LANES]) {
    for t in main..x.len() {
        lanes[t % MV_LANES] = row[t].mul_add(x[t], lanes[t % MV_LANES]);
    }
}

/// `out[o] = bias[o] + W[o] · x` for a `[n_out][n_in]` row-major weight
/// matrix — the batch-1 `Dense` forward. `Auto` resolves through the
/// policy's [`OpClass::Matvec`] entry; all tiers agree bitwise.
pub fn matvec(kernel: Kernel, weights: &[f32], bias: &[f32], x: &[f32], out: &mut [f32]) {
    let (n_out, n_in) = (out.len(), x.len());
    assert_eq!(weights.len(), n_out * n_in, "weight matrix shape");
    assert_eq!(bias.len(), n_out, "bias length");
    // Audit mode restates the bounds every vector load below relies on
    // (each row slice plus the shared x vector) as hard assertions.
    if checked::active() {
        checked::aligned(weights.as_ptr(), "matvec weights");
        for o in 0..n_out {
            checked::span(weights.len(), o * n_in, n_in, "matvec weight row");
        }
    }
    match kernel.resolve_class(OpClass::Matvec) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier only produced after runtime detection of avx512f.
        Kernel::Avx512 => unsafe { x86::matvec_avx512(weights, bias, x, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — avx2 and fma runtime-detected.
        Kernel::Avx2 => unsafe { x86::matvec_avx2(weights, bias, x, out) },
        _ => {
            for (o, dst) in out.iter_mut().enumerate() {
                let row = &weights[o * n_in..(o + 1) * n_in];
                let mut lanes = [0.0f32; MV_LANES];
                let main = n_in - n_in % MV_LANES;
                for p in (0..main).step_by(MV_LANES) {
                    for j in 0..MV_LANES {
                        lanes[j] = row[p + j].mul_add(x[p + j], lanes[j]);
                    }
                }
                matvec_tail(row, x, main, &mut lanes);
                *dst = bias[o] + fold_lanes(&lanes);
            }
        }
    }
}

/// `dst[i] = if src[i] > 0.0 { src[i] } else { 0.0 }` — the ReLU inference
/// sweep. `Auto` resolves through the policy's [`OpClass::Relu`] entry;
/// all tiers agree bitwise (NaN and `-0.0` both map to `+0.0`).
pub fn relu(kernel: Kernel, src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "relu buffer length");
    checked::span(src.len(), 0, dst.len(), "relu sweep");
    match kernel.resolve_class(OpClass::Relu) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier only produced after runtime detection of avx512f.
        Kernel::Avx512 => unsafe { x86::relu_avx512(src, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — avx2 runtime-detected (fma implied by the
        // tier but unused here).
        Kernel::Avx2 => unsafe { x86::relu_avx2(src, dst) },
        _ => {
            for (d, &v) in dst.iter_mut().zip(src) {
                *d = if v > 0.0 { v } else { 0.0 };
            }
        }
    }
}

/// One channel plane of 2x2/stride-2 max pooling (floor semantics): writes
/// `(h/2) x (w/2)` outputs. Exactly the scalar reference's strict-`>`
/// running max starting from `-inf`, so NaN window values never win and
/// ties keep the earliest element. `Auto` resolves through the policy's
/// [`OpClass::Pool`] entry; all tiers agree bitwise.
pub fn maxpool2_plane(kernel: Kernel, plane: &[f32], h: usize, w: usize, out: &mut [f32]) {
    let (oh, ow) = (h / 2, w / 2);
    assert!(plane.len() >= h * w, "input plane length");
    assert_eq!(out.len(), oh * ow, "output plane length");
    // Audit mode restates the two-row window reads of the deepest output
    // row — every shallower row reads strictly inside this span.
    if oh > 0 {
        checked::span(plane.len(), (2 * oh - 1) * w, 2 * ow, "maxpool bottom row");
    }
    // One dispatch per plane, with the row loop inside the
    // `#[target_feature]` kernels — per-row dispatch would rebuild the
    // shuffle constants and pay an uninlinable call 15 times per 30x30
    // plane, which costs more than the vectorization saves.
    match kernel.resolve_class(OpClass::Pool) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier only produced after runtime detection of avx512f;
        // plane holds h*w samples (asserted above) and every row read
        // stays inside 2*ow <= w columns of rows 2*oy and 2*oy+1 < h.
        Kernel::Avx512 => unsafe { x86::pool_plane_avx512(plane, h, w, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — avx2 runtime-detected.
        Kernel::Avx2 => unsafe { x86::pool_plane_avx2(plane, h, w, out) },
        _ => {
            for oy in 0..oh {
                pool_row_portable(
                    &plane[(2 * oy) * w..],
                    &plane[(2 * oy + 1) * w..],
                    &mut out[oy * ow..(oy + 1) * ow],
                );
            }
        }
    }
}

/// Portable max-pool row: the bitwise reference every vector tier matches.
#[inline]
fn pool_row_portable(r0: &[f32], r1: &[f32], dst: &mut [f32]) {
    for (ox, d) in dst.iter_mut().enumerate() {
        let mut best = f32::NEG_INFINITY;
        for v in [r0[2 * ox], r0[2 * ox + 1], r1[2 * ox], r1[2 * ox + 1]] {
            if v > best {
                best = v;
            }
        }
        *d = best;
    }
}

/// Explicit `std::arch` kernels. Each carries the `#[target_feature]` set
/// its caller must have runtime-detected (that is the entire unsafety of
/// calling them); inside, the only unsafe operations are raw-pointer
/// vector loads and stores bounded by the length checks in the safe
/// dispatchers above. Main loops cover `len - len % LANES` elements; tails
/// run the identical scalar expression.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{fold_lanes, matvec_tail, MV_LANES};
    use core::arch::x86_64::*;

    #[target_feature(enable = "avx512f")]
    pub(super) fn matvec_avx512(weights: &[f32], bias: &[f32], x: &[f32], out: &mut [f32]) {
        let n_in = x.len();
        let main = n_in - n_in % MV_LANES;
        for (o, dst) in out.iter_mut().enumerate() {
            let row = &weights[o * n_in..(o + 1) * n_in];
            let mut acc = _mm512_setzero_ps();
            let mut p = 0;
            while p < main {
                // SAFETY: p + 16 <= main <= n_in == row.len() == x.len().
                unsafe {
                    let wv = _mm512_loadu_ps(row.as_ptr().add(p));
                    let xv = _mm512_loadu_ps(x.as_ptr().add(p));
                    acc = _mm512_fmadd_ps(wv, xv, acc);
                }
                p += MV_LANES;
            }
            let mut lanes = [0.0f32; MV_LANES];
            // SAFETY: `lanes` holds 16 consecutive f32.
            unsafe { _mm512_storeu_ps(lanes.as_mut_ptr(), acc) };
            matvec_tail(row, x, main, &mut lanes);
            *dst = bias[o] + fold_lanes(&lanes);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) fn matvec_avx2(weights: &[f32], bias: &[f32], x: &[f32], out: &mut [f32]) {
        let n_in = x.len();
        let main = n_in - n_in % MV_LANES;
        for (o, dst) in out.iter_mut().enumerate() {
            let row = &weights[o * n_in..(o + 1) * n_in];
            // Lanes 0..8 and 8..16 in two ymm — the same per-lane fused
            // chain as one zmm on AVX-512.
            let mut lo = _mm256_setzero_ps();
            let mut hi = _mm256_setzero_ps();
            let mut p = 0;
            while p < main {
                // SAFETY: p + 16 <= main <= n_in == row.len() == x.len().
                unsafe {
                    let w0 = _mm256_loadu_ps(row.as_ptr().add(p));
                    let x0 = _mm256_loadu_ps(x.as_ptr().add(p));
                    lo = _mm256_fmadd_ps(w0, x0, lo);
                    let w1 = _mm256_loadu_ps(row.as_ptr().add(p + 8));
                    let x1 = _mm256_loadu_ps(x.as_ptr().add(p + 8));
                    hi = _mm256_fmadd_ps(w1, x1, hi);
                }
                p += MV_LANES;
            }
            let mut lanes = [0.0f32; MV_LANES];
            // SAFETY: the two halves of `lanes` are 8 f32 each.
            unsafe {
                _mm256_storeu_ps(lanes.as_mut_ptr(), lo);
                _mm256_storeu_ps(lanes.as_mut_ptr().add(8), hi);
            }
            matvec_tail(row, x, main, &mut lanes);
            *dst = bias[o] + fold_lanes(&lanes);
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) fn relu_avx512(src: &[f32], dst: &mut [f32]) {
        let n = dst.len();
        let main = n - n % 16;
        let zero = _mm512_setzero_ps();
        let mut i = 0;
        while i < main {
            // SAFETY: i + 16 <= n == src.len() == dst.len().
            unsafe {
                let v = _mm512_loadu_ps(src.as_ptr().add(i));
                // x > 0 ? x : 0 — NaN compares false, so it zeroes.
                let keep = _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v, zero);
                _mm512_storeu_ps(dst.as_mut_ptr().add(i), _mm512_maskz_mov_ps(keep, v));
            }
            i += 16;
        }
        for j in main..n {
            dst[j] = if src[j] > 0.0 { src[j] } else { 0.0 };
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn relu_avx2(src: &[f32], dst: &mut [f32]) {
        let n = dst.len();
        let main = n - n % 8;
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i < main {
            // SAFETY: i + 8 <= n == src.len() == dst.len().
            unsafe {
                let v = _mm256_loadu_ps(src.as_ptr().add(i));
                // The GT mask is all-ones where x > 0 (false on NaN), so
                // AND passes x's bits through or yields +0.0.
                let keep = _mm256_cmp_ps::<_CMP_GT_OQ>(v, zero);
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_and_ps(v, keep));
            }
            i += 8;
        }
        for j in main..n {
            dst[j] = if src[j] > 0.0 { src[j] } else { 0.0 };
        }
    }

    /// Scalar tail shared by both vector pool kernels (identical to the
    /// portable reference's per-window chain).
    #[inline(always)]
    fn pool_tail(r0: &[f32], r1: &[f32], dst: &mut [f32], main: usize) {
        for (j, d) in dst[main..].iter_mut().enumerate() {
            let ox = main + j;
            let mut best = f32::NEG_INFINITY;
            for v in [r0[2 * ox], r0[2 * ox + 1], r1[2 * ox], r1[2 * ox + 1]] {
                if v > best {
                    best = v;
                }
            }
            *d = best;
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) fn pool_plane_avx512(plane: &[f32], h: usize, w: usize, out: &mut [f32]) {
        let (oh, ow) = (h / 2, w / 2);
        let main = ow - ow % 16;
        // Even/odd deinterleave indices over a concatenated 32-float pair;
        // built once per plane (per-row rebuild costs more than the
        // vectorization saves at 30px widths).
        let even = _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30);
        let odd = _mm512_setr_epi32(1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 29, 31);
        let ninf = _mm512_set1_ps(f32::NEG_INFINITY);
        for oy in 0..oh {
            let r0 = &plane[(2 * oy) * w..(2 * oy) * w + w];
            let r1 = &plane[(2 * oy + 1) * w..(2 * oy + 1) * w + w];
            let dst = &mut out[oy * ow..(oy + 1) * ow];
            let mut ox = 0;
            while ox < main {
                // SAFETY: 2*ox + 32 <= 2*main <= 2*ow <= w == r0.len() ==
                // r1.len(); dst holds ow.
                unsafe {
                    let ta = _mm512_loadu_ps(r0.as_ptr().add(2 * ox));
                    let tb = _mm512_loadu_ps(r0.as_ptr().add(2 * ox + 16));
                    let ba = _mm512_loadu_ps(r1.as_ptr().add(2 * ox));
                    let bb = _mm512_loadu_ps(r1.as_ptr().add(2 * ox + 16));
                    let candidates = [
                        _mm512_permutex2var_ps(ta, even, tb),
                        _mm512_permutex2var_ps(ta, odd, tb),
                        _mm512_permutex2var_ps(ba, even, bb),
                        _mm512_permutex2var_ps(ba, odd, bb),
                    ];
                    // The scalar reference's strict-> chain, window order.
                    let mut best = ninf;
                    for v in candidates {
                        let gt = _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v, best);
                        best = _mm512_mask_mov_ps(best, gt, v);
                    }
                    _mm512_storeu_ps(dst.as_mut_ptr().add(ox), best);
                }
                ox += 16;
            }
            pool_tail(r0, r1, dst, main);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn pool_plane_avx2(plane: &[f32], h: usize, w: usize, out: &mut [f32]) {
        let (oh, ow) = (h / 2, w / 2);
        let main = ow - ow % 8;
        // shuffle_ps picks evens/odds within each 128-bit half; this
        // permutation restores sequential order across halves.
        let fix = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
        let ninf = _mm256_set1_ps(f32::NEG_INFINITY);
        for oy in 0..oh {
            let r0 = &plane[(2 * oy) * w..(2 * oy) * w + w];
            let r1 = &plane[(2 * oy + 1) * w..(2 * oy + 1) * w + w];
            let dst = &mut out[oy * ow..(oy + 1) * ow];
            let mut ox = 0;
            while ox < main {
                // SAFETY: 2*ox + 16 <= 2*main <= 2*ow <= w == r0.len() ==
                // r1.len(); dst holds ow.
                unsafe {
                    let ta = _mm256_loadu_ps(r0.as_ptr().add(2 * ox));
                    let tb = _mm256_loadu_ps(r0.as_ptr().add(2 * ox + 8));
                    let ba = _mm256_loadu_ps(r1.as_ptr().add(2 * ox));
                    let bb = _mm256_loadu_ps(r1.as_ptr().add(2 * ox + 8));
                    let deint = |a: __m256, b: __m256, sel: i32| -> __m256 {
                        let v = match sel {
                            0 => _mm256_shuffle_ps::<0x88>(a, b),
                            _ => _mm256_shuffle_ps::<0xDD>(a, b),
                        };
                        _mm256_permutevar8x32_ps(v, fix)
                    };
                    let candidates = [
                        deint(ta, tb, 0),
                        deint(ta, tb, 1),
                        deint(ba, bb, 0),
                        deint(ba, bb, 1),
                    ];
                    let mut best = ninf;
                    for v in candidates {
                        let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(v, best);
                        best = _mm256_blendv_ps(best, v, gt);
                    }
                    _mm256_storeu_ps(dst.as_mut_ptr().add(ox), best);
                }
                ox += 8;
            }
            pool_tail(r0, r1, dst, main);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_mathx::DetRng;

    fn rand_vec(rng: &mut DetRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.uniform_in(-1.0, 1.0) as f32).collect()
    }

    #[test]
    fn matvec_matches_f64_reference_and_tiers_agree() {
        let mut rng = DetRng::new(0xA1);
        for (n_out, n_in) in [(1, 1), (3, 17), (8, 16), (5, 100), (16, 451)] {
            let w = rand_vec(&mut rng, n_out * n_in);
            let bias = rand_vec(&mut rng, n_out);
            let x = rand_vec(&mut rng, n_in);
            let mut want = vec![0.0f32; n_out];
            for o in 0..n_out {
                let mut acc = bias[o] as f64;
                for i in 0..n_in {
                    acc += w[o * n_in + i] as f64 * x[i] as f64;
                }
                want[o] = acc as f32;
            }
            let mut base: Option<Vec<f32>> = None;
            for kernel in Kernel::available() {
                let mut out = vec![f32::NAN; n_out];
                matvec(kernel, &w, &bias, &x, &mut out);
                for (o, (&g, &e)) in out.iter().zip(&want).enumerate() {
                    let tol = 1e-5 * (1.0 + e.abs()) * (n_in as f32).sqrt();
                    assert!((g - e).abs() <= tol, "{n_out}x{n_in} out {o}: {g} vs {e}");
                }
                match &base {
                    None => base = Some(out),
                    Some(b) => assert_eq!(b, &out, "tier {} diverges", kernel.name()),
                }
            }
        }
    }

    #[test]
    fn relu_tiers_agree_and_handle_specials() {
        let mut src: Vec<f32> = (-40..40).map(|i| i as f32 / 7.0).collect();
        src.extend([f32::NAN, -0.0, 0.0, f32::INFINITY, f32::NEG_INFINITY]);
        let mut base: Option<Vec<f32>> = None;
        for kernel in Kernel::available() {
            let mut dst = vec![f32::NAN; src.len()];
            relu(kernel, &src, &mut dst);
            for (&s, &d) in src.iter().zip(&dst) {
                let want = if s > 0.0 { s } else { 0.0 };
                assert_eq!(d.to_bits(), want.to_bits(), "relu({s})");
            }
            match &base {
                None => base = Some(dst),
                Some(b) => assert_eq!(
                    b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    dst.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "tier {} diverges",
                    kernel.name()
                ),
            }
        }
    }

    #[test]
    fn maxpool_tiers_match_scalar_reference_bitwise() {
        let mut rng = DetRng::new(0xA2);
        for (h, w) in [(2, 2), (4, 6), (5, 7), (30, 30), (17, 66), (2, 40)] {
            let mut plane = rand_vec(&mut rng, h * w);
            if plane.len() > 4 {
                plane[1] = f32::NAN;
                plane[3] = f32::NEG_INFINITY;
            }
            let (oh, ow) = (h / 2, w / 2);
            let mut want = vec![0.0f32; oh * ow];
            pool_row_reference(&plane, h, w, &mut want);
            for kernel in Kernel::available() {
                let mut got = vec![f32::NAN; oh * ow];
                maxpool2_plane(kernel, &plane, h, w, &mut got);
                assert_eq!(
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{h}x{w} tier {} diverges",
                    kernel.name()
                );
            }
        }
    }

    /// Free-standing scalar pool over a plane (mirrors `MaxPool2::pool_one`).
    fn pool_row_reference(plane: &[f32], h: usize, w: usize, out: &mut [f32]) {
        let (oh, ow) = (h / 2, w / 2);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let v = plane[(2 * oy + dy) * w + 2 * ox + dx];
                        if v > best {
                            best = v;
                        }
                    }
                }
                out[oy * ow + ox] = best;
            }
        }
    }
}

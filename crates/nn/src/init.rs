//! Weight initialization schemes.

use tahoma_mathx::DetRng;

/// Glorot/Xavier uniform: U(-a, a) with `a = sqrt(6 / (fan_in + fan_out))`.
/// The standard choice for sigmoid/linear outputs.
pub fn xavier_uniform(rng: &mut DetRng, fan_in: usize, fan_out: usize, n: usize) -> Vec<f32> {
    let a = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    (0..n).map(|_| rng.uniform_in(-a, a) as f32).collect()
}

/// He normal: N(0, sqrt(2 / fan_in)) — the standard choice ahead of ReLU.
pub fn he_normal(rng: &mut DetRng, fan_in: usize, n: usize) -> Vec<f32> {
    let sd = (2.0 / fan_in.max(1) as f64).sqrt();
    (0..n).map(|_| rng.normal(0.0, sd) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bounds() {
        let mut rng = DetRng::new(1);
        let a = (6.0f64 / 20.0).sqrt() as f32;
        for v in xavier_uniform(&mut rng, 10, 10, 1000) {
            assert!(v.abs() <= a);
        }
    }

    #[test]
    fn he_scale_tracks_fan_in() {
        let mut rng = DetRng::new(2);
        let w = he_normal(&mut rng, 200, 10_000);
        let var = w.iter().map(|v| (*v as f64).powi(2)).sum::<f64>() / w.len() as f64;
        let expected = 2.0 / 200.0;
        assert!((var - expected).abs() < expected * 0.2, "var {var}");
    }

    #[test]
    fn deterministic() {
        let a = he_normal(&mut DetRng::new(3), 16, 64);
        let b = he_normal(&mut DetRng::new(3), 16, 64);
        assert_eq!(a, b);
    }
}

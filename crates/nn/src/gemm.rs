//! Blocked, cache-tiled f32 matrix multiply and the im2col convolution
//! lowering.
//!
//! This is the engine room of the batched inference path: `Conv2d`'s
//! forward runs [`conv2d_forward`] (a virtual-im2col GEMM that addresses the
//! patch matrix inside the image instead of materializing it), its backward
//! lowers through [`im2col`]/[`col2im_add`], and `Dense` multiplies whole
//! minibatches against its weight matrix. Explicit products run through one
//! [`gemm`] implementation in the classic BLIS/GotoBLAS structure:
//!
//! * three blocking loops (`NC` columns of B, `KC` of the shared dimension,
//!   `MC` rows of A) size working sets for the cache hierarchy;
//! * A- and B-blocks are packed into panel-contiguous, zero-padded buffers,
//!   which also absorbs the `N`/`T` layout variants — the kernel only ever
//!   sees full `MR x NR` tiles;
//! * an `MR x NR` register-tile micro-kernel does the FLOPs. It is written
//!   as plain loops over fixed-size row-local arrays with `f32::mul_add`, a
//!   shape LLVM reliably auto-vectorizes to FMA register tiles (compile with
//!   `-C target-cpu=native`, see `.cargo/config.toml`; there are no
//!   intrinsics and no `unsafe`). Measured at ~90 GFLOP/s single-threaded on
//!   an AVX-512 host, ~45% of theoretical peak.
//!
//! Accumulation order within a dot product differs from a naive loop, so
//! results can differ from the scalar reference path by a few ULPs — the
//! property tests in `tests/proptests.rs` bound this.

/// Micro-kernel tile rows (register blocking in M).
pub const MR: usize = 6;
/// Micro-kernel tile columns (register blocking in N); two AVX-512 or four
/// AVX2 vectors of f32. The `6 x 32` tile needs 12 AVX-512 accumulator
/// registers — enough independent FMA chains to hide the FMA latency while
/// leaving registers for the operand loads (measured fastest among 2/4/6/8
/// row variants on an AVX-512 host).
pub const NR: usize = 32;

/// Cache-blocking size along M (rows of A per packed block; multiple of MR).
const MC: usize = 60;
/// Cache-blocking size along K (shared dimension per packed block).
const KC: usize = 256;
/// Cache-blocking size along N (columns of B per packed block).
const NC: usize = 1024;
/// Upper bound on `k` for the no-pack direct path: beyond this the packed-A
/// buffer (`ceil(m/MR)*MR*k` floats) and per-tile B strips stop being
/// cache-friendly, so fall back to the fully blocked path.
const DIRECT_K_MAX: usize = 8192;
/// Combined budget for one column block of B plus its C block in the direct
/// path — sized to stay comfortably inside a 2 MiB L2.
const DIRECT_BLOCK_BYTES: usize = 3 * 512 * 1024;

/// Whether an operand is used as stored or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the matrix as stored (row-major).
    N,
    /// Use the transpose of the stored matrix.
    T,
}

/// Reusable packing buffers; keep one per call site to avoid per-call
/// allocation on hot paths. The `conv_*` fields are used only by
/// [`conv2d_forward`]; plain [`gemm`] calls leave them empty.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    packed_a: Vec<f32>,
    packed_b: Vec<f32>,
    conv_padded: Vec<f32>,
    conv_offsets: Vec<usize>,
    conv_edge_col: Vec<f32>,
    conv_edge_out: Vec<f32>,
}

/// `C += A · B` where `C` is `m x n` row-major and `A`/`B` are interpreted
/// through their [`Trans`] flags: `A` is `m x k` when `N` (stored `k x m`
/// when `T`), `B` is `k x n` when `N` (stored `n x k` when `T`). All storage
/// is compact row-major. The caller initializes `C` (zeros, or a broadcast
/// bias for a fused bias-add).
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    scratch: &mut GemmScratch,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k, "A size mismatch");
    debug_assert_eq!(b.len(), k * n, "B size mismatch");
    debug_assert_eq!(c.len(), m * n, "C size mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if ta == Trans::N && tb == Trans::N && k <= DIRECT_K_MAX {
        return gemm_direct_nn(scratch, m, n, k, a, b, c, None);
    }
    scratch.packed_a.resize(MC * KC, 0.0);
    scratch.packed_b.resize(KC * NC, 0.0);

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(&mut scratch.packed_b, b, tb, k, n, pc, kc, jc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(&mut scratch.packed_a, a, ta, m, k, ic, mc, pc, kc);
                macro_kernel(
                    &scratch.packed_a,
                    &scratch.packed_b,
                    mc,
                    nc,
                    kc,
                    c,
                    n,
                    ic,
                    jc,
                );
            }
        }
    }
}

/// Run the packed `mc x nc` block through `MR x NR` micro-kernel tiles,
/// accumulating into `C` (row-major, leading dimension `ldc`) at offset
/// `(ic, jc)`.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    packed_a: &[f32],
    packed_b: &[f32],
    mc: usize,
    nc: usize,
    kc: usize,
    c: &mut [f32],
    ldc: usize,
    ic: usize,
    jc: usize,
) {
    let mc_panels = mc.div_ceil(MR);
    let nc_panels = nc.div_ceil(NR);
    for ip in 0..mc_panels {
        let a_panel = &packed_a[ip * MR * kc..(ip * MR + MR) * kc];
        let mr = MR.min(mc - ip * MR);
        for jp in 0..nc_panels {
            let b_panel = &packed_b[jp * NR * kc..(jp * NR + NR) * kc];
            let nr = NR.min(nc - jp * NR);
            let mut acc = [[0.0f32; NR]; MR];
            micro_kernel(kc, a_panel, b_panel, &mut acc);
            let c_row0 = ic + ip * MR;
            let c_col0 = jc + jp * NR;
            for (i, acc_row) in acc.iter().enumerate().take(mr) {
                let row = &mut c[(c_row0 + i) * ldc + c_col0..];
                for (dst, &v) in row.iter_mut().zip(acc_row.iter()).take(nr) {
                    *dst += v;
                }
            }
        }
    }
}

/// The no-pack fast path for `C += A · B` with both operands as stored:
/// only A is packed (whole matrix, zero-padded to `MR`-row panels); the
/// kernel reads `B` in place through its leading dimension. Skipping the
/// B-pack halves B-side memory traffic, which dominates when `m` is small —
/// exactly the shape of the im2col convolution (`m = out_c`), where this
/// path is ~35% faster end to end than the packed one.
#[allow(clippy::too_many_arguments)]
fn gemm_direct_nn(
    scratch: &mut GemmScratch,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    init: Option<&[f32]>,
) {
    let m_panels = m.div_ceil(MR);
    scratch.packed_a.resize(m_panels * MR * k, 0.0);
    pack_a(&mut scratch.packed_a, a, Trans::N, m, k, 0, m, 0, k);

    // Two-level column blocking. Outer: balanced `jc` blocks sized so the
    // C block plus B block stay L2-resident (C tiles are written in strided
    // strips, so they must hit cache). Inner: one `k x NR` strip of B is
    // pushed through every A panel while it is L1-hot, so B streams out of
    // L2 exactly once per block regardless of m.
    let max_nc = (DIRECT_BLOCK_BYTES / (4 * (m + k))).max(NR);
    let blocks = n.div_ceil(max_nc).max(1);
    let nc_block = n.div_ceil(blocks).div_ceil(NR).max(1) * NR;

    for jc in (0..n).step_by(nc_block) {
        let nc = nc_block.min(n - jc);
        let full_nr = nc / NR;
        let tail = nc - full_nr * NR;
        for jp in 0..full_nr {
            let j0 = jc + jp * NR;
            for ip in 0..m_panels {
                let a_panel = &scratch.packed_a[ip * MR * k..(ip * MR + MR) * k];
                let mr = MR.min(m - ip * MR);
                let mut acc = [[0.0f32; NR]; MR];
                direct_tile(k, a_panel, &b[j0..], n, mr, &mut acc);
                for (i, acc_row) in acc.iter().enumerate().take(mr) {
                    let row = &mut c[(ip * MR + i) * n + j0..(ip * MR + i) * n + j0 + NR];
                    match init {
                        // Fused epilogue: C = bias + A·B, write-only (no
                        // read-modify-write pass over C).
                        Some(bias) => {
                            let base = bias[ip * MR + i];
                            for (dst, &v) in row.iter_mut().zip(acc_row.iter()) {
                                *dst = base + v;
                            }
                        }
                        None => {
                            for (dst, &v) in row.iter_mut().zip(acc_row.iter()) {
                                *dst += v;
                            }
                        }
                    }
                }
            }
        }
        if tail > 0 {
            // Pack the ragged final columns of the block, zero-padded to NR.
            scratch.packed_b.resize(k * NR, 0.0);
            let j0 = jc + full_nr * NR;
            for p in 0..k {
                let dst = &mut scratch.packed_b[p * NR..(p + 1) * NR];
                dst[..tail].copy_from_slice(&b[p * n + j0..p * n + j0 + tail]);
                dst[tail..].fill(0.0);
            }
            for ip in 0..m_panels {
                let a_panel = &scratch.packed_a[ip * MR * k..(ip * MR + MR) * k];
                let mr = MR.min(m - ip * MR);
                let mut acc = [[0.0f32; NR]; MR];
                direct_tile(k, a_panel, &scratch.packed_b, NR, mr, &mut acc);
                for (i, acc_row) in acc.iter().enumerate().take(mr) {
                    let row = &mut c[(ip * MR + i) * n + j0..(ip * MR + i) * n + jc + nc];
                    match init {
                        Some(bias) => {
                            let base = bias[ip * MR + i];
                            for (dst, &v) in row.iter_mut().zip(acc_row.iter()).take(tail) {
                                *dst = base + v;
                            }
                        }
                        None => {
                            for (dst, &v) in row.iter_mut().zip(acc_row.iter()).take(tail) {
                                *dst += v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `C = bias ⊕ A · B` with both operands as stored: row `i` of `C` is
/// initialized to the scalar `bias[i]` and accumulated in one write-only
/// epilogue pass (the convolution forward's bias-add, fused so `C` is never
/// pre-filled or re-read). `C`'s prior contents are ignored.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn_bias(
    scratch: &mut GemmScratch,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    c: &mut [f32],
) {
    debug_assert_eq!(bias.len(), m, "bias size mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || k > DIRECT_K_MAX {
        // Degenerate or oversized-k shapes: fill then accumulate.
        for (row, &b0) in c.chunks_exact_mut(n).zip(bias) {
            row.fill(b0);
        }
        return gemm(scratch, m, n, k, a, Trans::N, b, Trans::N, c);
    }
    gemm_direct_nn(scratch, m, n, k, a, b, c, Some(bias))
}

/// Convolution forward pass without materializing the patch matrix:
/// `out[out_c x hw] = bias ⊕ W[out_c x (c_in*kk*kk)] · col(input)`, where
/// `col` is only ever *addressed*, never built.
///
/// For stride-1 "same" convolution the patch matrix is almost an affine
/// re-indexing of the image: row `(i, ky, kx)` at output pixel `q` equals
/// `plane_i[q + (ky-pad)*w + (kx-pad)]`. Two deviations exist — y-overflow
/// (must read zero padding) and x-overflow (the linear index wraps to the
/// adjacent row). Copying each plane once into a zero-slack frame makes
/// every y-overflow read an actual zero, so the micro-kernel can stream B
/// straight out of the ~image-sized padded buffer (L1/L2-resident, vs.
/// `kk*kk` times that for a materialized patch matrix). The x-overflow
/// positions are exactly the `2*pad` edge columns; those output pixels are
/// recomputed afterwards with a small correctly-padded patch GEMM
/// (`2*pad*h` of `h*w` pixels) that overwrites the wrapped garbage.
///
/// The backward pass still materializes [`im2col`]; this path is for the
/// throughput-critical forward direction.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward(
    scratch: &mut GemmScratch,
    input: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    kk: usize,
    weights: &[f32],
    bias: &[f32],
    out_c: usize,
    out: &mut [f32],
) {
    let pad = kk / 2;
    let hw = h * w;
    let k_total = c_in * kk * kk;
    debug_assert_eq!(input.len(), c_in * hw);
    debug_assert_eq!(weights.len(), out_c * k_total);
    debug_assert_eq!(bias.len(), out_c);
    debug_assert_eq!(out.len(), out_c * hw);
    if hw == 0 || out_c == 0 {
        return;
    }

    // 1. Frame every plane in zero slack wide enough for any (ky, kx)
    //    offset, plus an NR guard at the very end for the last strip.
    let slack = pad * w + pad + w;
    let cstride = hw + 2 * slack;
    let need = c_in * cstride + NR;
    if scratch.conv_padded.len() != need {
        scratch.conv_padded.clear();
        scratch.conv_padded.resize(need, 0.0);
    }
    for i in 0..c_in {
        scratch.conv_padded[i * cstride + slack..i * cstride + slack + hw]
            .copy_from_slice(&input[i * hw..(i + 1) * hw]);
    }

    // 2. Per-patch-row base offsets into the padded buffer.
    scratch.conv_offsets.clear();
    scratch.conv_offsets.reserve(k_total);
    for i in 0..c_in {
        for ky in 0..kk {
            for kx in 0..kk {
                scratch
                    .conv_offsets
                    .push(i * cstride + slack + ky * w + kx - (pad * w + pad));
            }
        }
    }

    // 3. Pack the filter matrix once for the whole image.
    let m_panels = out_c.div_ceil(MR);
    scratch.packed_a.resize(m_panels * MR * k_total, 0.0);
    pack_a(
        &mut scratch.packed_a,
        weights,
        Trans::N,
        out_c,
        k_total,
        0,
        out_c,
        0,
        k_total,
    );

    // 4. Main sweep: offset-addressed B, bias-fused write-only epilogue.
    let full_nr = hw / NR;
    let tail = hw - full_nr * NR;
    for jp in 0..=full_nr {
        let j0 = jp * NR;
        let nr = if jp < full_nr { NR } else { tail };
        if nr == 0 {
            break;
        }
        if nr < NR {
            // Gather the ragged final columns into a packed strip.
            scratch.packed_b.resize(k_total * NR, 0.0);
            for (p, &off) in scratch.conv_offsets.iter().enumerate() {
                let dst = &mut scratch.packed_b[p * NR..(p + 1) * NR];
                dst[..nr].copy_from_slice(&scratch.conv_padded[off + j0..off + j0 + nr]);
                dst[nr..].fill(0.0);
            }
        }
        for ip in 0..m_panels {
            let a_panel = &scratch.packed_a[ip * MR * k_total..(ip * MR + MR) * k_total];
            let mr = MR.min(out_c - ip * MR);
            let mut acc = [[0.0f32; NR]; MR];
            if nr < NR {
                direct_tile(k_total, a_panel, &scratch.packed_b, NR, mr, &mut acc);
            } else {
                micro_kernel_conv(
                    k_total,
                    a_panel,
                    &scratch.conv_padded,
                    &scratch.conv_offsets,
                    j0,
                    &mut acc,
                );
            }
            for (i, acc_row) in acc.iter().enumerate().take(mr) {
                let base = bias[ip * MR + i];
                let row = &mut out[(ip * MR + i) * hw + j0..(ip * MR + i) * hw + j0 + nr];
                for (dst, &v) in row.iter_mut().zip(acc_row.iter()) {
                    *dst = base + v;
                }
            }
        }
    }

    // 5. Repair the x-edge columns (wrapped reads) with a correctly padded
    //    patch GEMM over just those pixels.
    let edge_xs: Vec<usize> = if w > 2 * pad {
        (0..pad).chain(w - pad..w).collect()
    } else {
        (0..w).collect()
    };
    let ne = edge_xs.len() * h;
    if ne == 0 {
        return;
    }
    let mut edge_col = std::mem::take(&mut scratch.conv_edge_col);
    let mut edge_out = std::mem::take(&mut scratch.conv_edge_out);
    edge_col.clear();
    edge_col.resize(k_total * ne, 0.0);
    for i in 0..c_in {
        let plane = &input[i * hw..(i + 1) * hw];
        for ky in 0..kk {
            for kx in 0..kk {
                let row = &mut edge_col[((i * kk + ky) * kk + kx) * ne..];
                let mut ei = 0;
                for &x in &edge_xs {
                    let sx = x + kx;
                    let x_ok = sx >= pad && sx < w + pad;
                    for y in 0..h {
                        let sy = y + ky;
                        row[ei] = if x_ok && sy >= pad && sy < h + pad {
                            plane[(sy - pad) * w + sx - pad]
                        } else {
                            0.0
                        };
                        ei += 1;
                    }
                }
            }
        }
    }
    edge_out.clear();
    edge_out.resize(out_c * ne, 0.0);
    gemm_nn_bias(
        scratch,
        out_c,
        ne,
        k_total,
        weights,
        &edge_col,
        bias,
        &mut edge_out,
    );
    for o in 0..out_c {
        let mut ei = 0;
        for &x in &edge_xs {
            for y in 0..h {
                out[o * hw + y * w + x] = edge_out[o * ne + ei];
                ei += 1;
            }
        }
    }
    scratch.conv_edge_col = edge_col;
    scratch.conv_edge_out = edge_out;
}

/// Offset-addressed variant of [`micro_kernel_direct`] for the virtual
/// patch matrix: row `p` of B lives at `padded[offsets[p] + j0..]`.
#[inline(always)]
fn micro_kernel_conv(
    kc: usize,
    a: &[f32],
    padded: &[f32],
    offsets: &[usize],
    j0: usize,
    acc: &mut [[f32; NR]; MR],
) {
    let mut c0 = acc[0];
    let mut c1 = acc[1];
    let mut c2 = acc[2];
    let mut c3 = acc[3];
    let mut c4 = acc[4];
    let mut c5 = acc[5];
    for p in 0..kc {
        let a_step: &[f32; MR] = a[p * MR..p * MR + MR].try_into().expect("packed panel");
        let base = offsets[p] + j0;
        let b_step: &[f32; NR] = padded[base..base + NR].try_into().expect("padded strip");
        for j in 0..NR {
            let bv = b_step[j];
            c0[j] = a_step[0].mul_add(bv, c0[j]);
            c1[j] = a_step[1].mul_add(bv, c1[j]);
            c2[j] = a_step[2].mul_add(bv, c2[j]);
            c3[j] = a_step[3].mul_add(bv, c3[j]);
            c4[j] = a_step[4].mul_add(bv, c4[j]);
            c5[j] = a_step[5].mul_add(bv, c5[j]);
        }
    }
    acc[0] = c0;
    acc[1] = c1;
    acc[2] = c2;
    acc[3] = c3;
    acc[4] = c4;
    acc[5] = c5;
}

/// `C += A · B` with both operands as stored.
pub fn gemm_nn(
    scratch: &mut GemmScratch,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    gemm(scratch, m, n, k, a, Trans::N, b, Trans::N, c);
}

/// `C += A · Bᵀ` (`B` stored `n x k`).
pub fn gemm_nt(
    scratch: &mut GemmScratch,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    gemm(scratch, m, n, k, a, Trans::N, b, Trans::T, c);
}

/// `C += Aᵀ · B` (`A` stored `k x m`).
pub fn gemm_tn(
    scratch: &mut GemmScratch,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    gemm(scratch, m, n, k, a, Trans::T, b, Trans::N, c);
}

/// The register-tile kernel: `acc += A_panel · B_panel` over `kc` steps.
/// `a` holds `kc` groups of `MR` row values, `b` holds `kc` groups of `NR`
/// column values (panel-major packing). Fixed trip counts over arrays let
/// LLVM keep `acc` entirely in vector registers.
#[inline(always)]
fn micro_kernel(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    // A packed B panel is the direct layout with a leading dimension of NR.
    micro_kernel_direct(kc, a, b, NR, acc);
}

/// Variant of [`micro_kernel`] whose B operand is read in place from a
/// row-major matrix with leading dimension `ldb` (no packing). `b` must
/// cover `NR` full columns; ragged edges go through a packed tail instead.
#[inline(always)]
fn micro_kernel_direct(kc: usize, a: &[f32], b: &[f32], ldb: usize, acc: &mut [[f32; NR]; MR]) {
    let mut c0 = acc[0];
    let mut c1 = acc[1];
    let mut c2 = acc[2];
    let mut c3 = acc[3];
    let mut c4 = acc[4];
    let mut c5 = acc[5];
    for p in 0..kc {
        let a_step: &[f32; MR] = a[p * MR..p * MR + MR].try_into().expect("packed panel");
        let b_step: &[f32; NR] = b[p * ldb..p * ldb + NR].try_into().expect("B row chunk");
        for j in 0..NR {
            let bv = b_step[j];
            c0[j] = a_step[0].mul_add(bv, c0[j]);
            c1[j] = a_step[1].mul_add(bv, c1[j]);
            c2[j] = a_step[2].mul_add(bv, c2[j]);
            c3[j] = a_step[3].mul_add(bv, c3[j]);
            c4[j] = a_step[4].mul_add(bv, c4[j]);
            c5[j] = a_step[5].mul_add(bv, c5[j]);
        }
    }
    acc[0] = c0;
    acc[1] = c1;
    acc[2] = c2;
    acc[3] = c3;
    acc[4] = c4;
    acc[5] = c5;
}

/// 4-row remainder variant of [`micro_kernel_direct`]: reads the same
/// `MR`-strided A panel but only its first four rows, so a partial final
/// panel with 3-4 live rows skips a third of the tile FLOPs instead of
/// multiplying padded zeros.
#[inline(always)]
fn micro_kernel_direct_4(kc: usize, a: &[f32], b: &[f32], ldb: usize, acc: &mut [[f32; NR]; 4]) {
    let mut c0 = acc[0];
    let mut c1 = acc[1];
    let mut c2 = acc[2];
    let mut c3 = acc[3];
    for p in 0..kc {
        let a_step: &[f32; MR] = a[p * MR..p * MR + MR].try_into().expect("packed panel");
        let b_step: &[f32; NR] = b[p * ldb..p * ldb + NR].try_into().expect("B row chunk");
        for j in 0..NR {
            let bv = b_step[j];
            c0[j] = a_step[0].mul_add(bv, c0[j]);
            c1[j] = a_step[1].mul_add(bv, c1[j]);
            c2[j] = a_step[2].mul_add(bv, c2[j]);
            c3[j] = a_step[3].mul_add(bv, c3[j]);
        }
    }
    acc[0] = c0;
    acc[1] = c1;
    acc[2] = c2;
    acc[3] = c3;
}

/// 2-row remainder variant of [`micro_kernel_direct`].
#[inline(always)]
fn micro_kernel_direct_2(kc: usize, a: &[f32], b: &[f32], ldb: usize, acc: &mut [[f32; NR]; 2]) {
    let mut c0 = acc[0];
    let mut c1 = acc[1];
    for p in 0..kc {
        let a_step: &[f32; MR] = a[p * MR..p * MR + MR].try_into().expect("packed panel");
        let b_step: &[f32; NR] = b[p * ldb..p * ldb + NR].try_into().expect("B row chunk");
        for j in 0..NR {
            let bv = b_step[j];
            c0[j] = a_step[0].mul_add(bv, c0[j]);
            c1[j] = a_step[1].mul_add(bv, c1[j]);
        }
    }
    acc[0] = c0;
    acc[1] = c1;
}

/// Dispatch one `mr x NR` direct tile (`mr <= MR`) into `acc`, picking the
/// widest kernel that does no padded-row work.
#[inline(always)]
fn direct_tile(kc: usize, a: &[f32], b: &[f32], ldb: usize, mr: usize, acc: &mut [[f32; NR]; MR]) {
    match mr {
        5 | 6 => micro_kernel_direct(kc, a, b, ldb, acc),
        3 | 4 => {
            let mut small = [[0.0f32; NR]; 4];
            micro_kernel_direct_4(kc, a, b, ldb, &mut small);
            acc[..4].copy_from_slice(&small);
        }
        _ => {
            let mut small = [[0.0f32; NR]; 2];
            micro_kernel_direct_2(kc, a, b, ldb, &mut small);
            acc[..2].copy_from_slice(&small);
        }
    }
}

/// Pack `mc x kc` of A (rows `ic..`, k-range `pc..`) into `MR`-row panels,
/// zero-padding the ragged final panel.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    dst: &mut [f32],
    a: &[f32],
    ta: Trans,
    m: usize,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let panels = mc.div_ceil(MR);
    for ip in 0..panels {
        let rows = MR.min(mc - ip * MR);
        let base = ip * MR * kc;
        for p in 0..kc {
            let out = &mut dst[base + p * MR..base + p * MR + MR];
            for (r, slot) in out.iter_mut().enumerate() {
                *slot = if r < rows {
                    let row = ic + ip * MR + r;
                    match ta {
                        Trans::N => a[row * k + pc + p],
                        Trans::T => a[(pc + p) * m + row],
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// Pack `kc x nc` of B (k-range `pc..`, cols `jc..`) into `NR`-column
/// panels, zero-padding the ragged final panel.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    dst: &mut [f32],
    b: &[f32],
    tb: Trans,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    for jp in 0..panels {
        let cols = NR.min(nc - jp * NR);
        let base = jp * NR * kc;
        for p in 0..kc {
            let out = &mut dst[base + p * NR..base + p * NR + NR];
            match tb {
                Trans::N => {
                    let src_base = (pc + p) * n + jc + jp * NR;
                    out[..cols].copy_from_slice(&b[src_base..src_base + cols]);
                    out[cols..].fill(0.0);
                }
                Trans::T => {
                    for (col, slot) in out.iter_mut().enumerate() {
                        *slot = if col < cols {
                            b[(jc + jp * NR + col) * k + pc + p]
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }
}

/// Lower one channel-planar image to the im2col patch matrix for a `kk x kk`
/// "same"-padded, stride-1 convolution.
///
/// `col` is resized to `(c_in * kk * kk) x (h * w)` row-major: row
/// `(i * kk + ky) * kk + kx` holds, for every output pixel `(y, x)` in
/// row-major order, the input value at channel `i`, position
/// `(y + ky - pad, x + kx - pad)`, or zero where that falls outside the
/// image. The weight matrix `[out_c][c_in * kk * kk]` multiplies it directly.
pub fn im2col(input: &[f32], c_in: usize, h: usize, w: usize, kk: usize, col: &mut Vec<f32>) {
    debug_assert_eq!(input.len(), c_in * h * w);
    let pad = kk / 2;
    let hw = h * w;
    col.clear();
    col.resize(c_in * kk * kk * hw, 0.0);
    for i in 0..c_in {
        let plane = &input[i * hw..(i + 1) * hw];
        for ky in 0..kk {
            for kx in 0..kk {
                let row_idx = (i * kk + ky) * kk + kx;
                let row = &mut col[row_idx * hw..(row_idx + 1) * hw];
                let y_lo = pad.saturating_sub(ky);
                let y_hi = (h + pad).saturating_sub(ky).min(h);
                // Left/right zero-column widths for this kx.
                let lz = pad.saturating_sub(kx);
                let rz = (kx + w).saturating_sub(w + pad).min(w);
                row[..y_lo * w].fill(0.0);
                row[y_hi * w..].fill(0.0);
                if y_hi <= y_lo || lz + rz >= w {
                    row[y_lo * w..y_hi * w].fill(0.0);
                    continue;
                }
                // One bulk copy covers every interior column of every valid
                // output row at once (the patch is the image shifted by
                // (ky-pad, kx-pad)); the wrapped-around values this smears
                // into the lz/rz edge columns are zeroed right after.
                let d0 = y_lo * w + lz;
                let d1 = y_hi * w - rz;
                let shift = (ky * w + kx) as isize - (pad * w + pad) as isize;
                let s0 = (d0 as isize + shift) as usize;
                row[d0..d1].copy_from_slice(&plane[s0..s0 + (d1 - d0)]);
                if lz + rz > 0 {
                    for y in y_lo..y_hi {
                        row[y * w..y * w + lz].fill(0.0);
                        row[(y + 1) * w - rz..(y + 1) * w].fill(0.0);
                    }
                }
            }
        }
    }
}

/// Inverse of [`im2col`] for gradients: scatter-add a patch-matrix gradient
/// back onto the (channel-planar) input gradient.
pub fn col2im_add(col: &[f32], c_in: usize, h: usize, w: usize, kk: usize, grad_in: &mut [f32]) {
    debug_assert_eq!(grad_in.len(), c_in * h * w);
    let pad = kk / 2;
    let hw = h * w;
    debug_assert_eq!(col.len(), c_in * kk * kk * hw);
    for i in 0..c_in {
        let plane = &mut grad_in[i * hw..(i + 1) * hw];
        for ky in 0..kk {
            for kx in 0..kk {
                let row_idx = (i * kk + ky) * kk + kx;
                let row = &col[row_idx * hw..(row_idx + 1) * hw];
                let y_lo = pad.saturating_sub(ky);
                let y_hi = (h + pad).saturating_sub(ky).min(h);
                let x_lo = pad.saturating_sub(kx);
                let x_hi = (w + pad).saturating_sub(kx).min(w);
                if x_hi <= x_lo {
                    continue;
                }
                for y in y_lo..y_hi {
                    let sy = y + ky - pad;
                    let src = &row[y * w + x_lo..y * w + x_hi];
                    let dst = &mut plane[sy * w + x_lo + kx - pad..sy * w + x_hi + kx - pad];
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_mathx::DetRng;

    fn reference_gemm(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        ta: Trans,
        b: &[f32],
        tb: Trans,
    ) -> Vec<f32> {
        let at = |i: usize, p: usize| match ta {
            Trans::N => a[i * k + p],
            Trans::T => a[p * m + i],
        };
        let bt = |p: usize, j: usize| match tb {
            Trans::N => b[p * n + j],
            Trans::T => b[j * k + p],
        };
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += at(i, p) as f64 * bt(p, j) as f64;
                }
                c[i * n + j] = acc as f32;
            }
        }
        c
    }

    fn random_vec(rng: &mut DetRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.uniform_in(-1.0, 1.0) as f32).collect()
    }

    fn check_all_variants(m: usize, n: usize, k: usize, seed: u64) {
        let mut rng = DetRng::new(seed);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, k * n);
        let mut scratch = GemmScratch::default();
        for (ta, tb) in [
            (Trans::N, Trans::N),
            (Trans::N, Trans::T),
            (Trans::T, Trans::N),
            (Trans::T, Trans::T),
        ] {
            let expect = reference_gemm(m, n, k, &a, ta, &b, tb);
            let mut c = vec![0.0f32; m * n];
            gemm(&mut scratch, m, n, k, &a, ta, &b, tb, &mut c);
            for (i, (&got, &want)) in c.iter().zip(&expect).enumerate() {
                let tol = 1e-5 * (1.0 + want.abs()) * (k as f32).sqrt();
                assert!(
                    (got - want).abs() <= tol,
                    "({m}x{n}x{k}) {ta:?}{tb:?} idx {i}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_on_small_shapes() {
        for (m, n, k) in [
            (1, 1, 1),
            (1, 7, 5),
            (3, 2, 9),
            (8, 32, 16),
            (9, 33, 17),
            (5, 100, 3),
        ] {
            check_all_variants(m, n, k, (m * 1000 + n * 10 + k) as u64);
        }
    }

    #[test]
    fn matches_reference_across_block_boundaries() {
        // Exercise the MC/KC/NC edges and ragged final panels.
        for (m, n, k) in [
            (MR + 1, NR + 1, 2),
            (MC + 3, NC / 8 + 5, KC + 9),
            (2 * MC, 40, 2 * KC + 1),
            (17, NC + NR + 3, 31),
        ] {
            check_all_variants(m, n, k, (m + n + k) as u64);
        }
    }

    #[test]
    fn bias_fused_matches_fill_then_accumulate() {
        let mut rng = DetRng::new(31);
        for (m, n, k) in [(1, 9, 4), (7, 65, 27), (16, 900, 144), (13, 37, 5)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let bias = random_vec(&mut rng, m);
            let mut scratch = GemmScratch::default();
            let mut want = vec![0.0f32; m * n];
            for (row, &b0) in want.chunks_exact_mut(n).zip(&bias) {
                row.fill(b0);
            }
            gemm_nn(&mut scratch, m, n, k, &a, &b, &mut want);
            let mut got = vec![f32::NAN; m * n];
            gemm_nn_bias(&mut scratch, m, n, k, &a, &b, &bias, &mut got);
            for (i, (&g, &w0)) in got.iter().zip(&want).enumerate() {
                assert!((g - w0).abs() < 1e-5, "({m}x{n}x{k}) idx {i}: {g} vs {w0}");
            }
        }
    }

    #[test]
    fn accumulates_into_c() {
        let mut scratch = GemmScratch::default();
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut c = [10.0f32];
        gemm_nn(&mut scratch, 1, 1, 2, &a, &b, &mut c);
        assert_eq!(c[0], 10.0 + 3.0 + 8.0);
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut scratch = GemmScratch::default();
        let mut c = [5.0f32];
        gemm_nn(&mut scratch, 1, 1, 0, &[], &[], &mut c);
        assert_eq!(c[0], 5.0);
        gemm_nn(&mut scratch, 0, 0, 4, &[], &[], &mut []);
    }

    #[test]
    fn im2col_matches_definition() {
        // 1 channel, 3x3 image, 3x3 kernel: center row of the patch matrix
        // reproduces the image; corner rows show the zero padding.
        let img: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let mut col = Vec::new();
        im2col(&img, 1, 3, 3, 3, &mut col);
        let hw = 9;
        // row (ky=1, kx=1) == identity.
        assert_eq!(&col[4 * hw..5 * hw], &img[..]);
        // row (ky=0, kx=0): pixel up-left; first row and column are padding.
        assert_eq!(&col[0..hw], &[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 4.0, 5.0]);
        // row (ky=2, kx=2): pixel down-right; last row/column are padding.
        assert_eq!(
            &col[8 * hw..9 * hw],
            &[5.0, 6.0, 0.0, 8.0, 9.0, 0.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn conv2d_forward_matches_materialized_im2col() {
        for (c_in, h, w, kk, out_c, seed) in [
            (1, 5, 5, 3, 4, 1u64),
            (3, 8, 6, 3, 16, 2),
            (2, 7, 33, 5, 7, 3),
            (4, 40, 40, 3, 13, 4),
            (1, 3, 2, 5, 3, 5), // kernel larger than the image
            (2, 6, 6, 1, 5, 6), // 1x1 kernel, no padding at all
            (16, 30, 30, 3, 16, 7),
        ] {
            let mut rng = DetRng::new(seed);
            let input = random_vec(&mut rng, c_in * h * w);
            let k_total = c_in * kk * kk;
            let weights = random_vec(&mut rng, out_c * k_total);
            let bias = random_vec(&mut rng, out_c);
            let hw = h * w;
            let mut scratch = GemmScratch::default();

            let mut col = Vec::new();
            im2col(&input, c_in, h, w, kk, &mut col);
            let mut want = vec![0.0f32; out_c * hw];
            gemm_nn_bias(
                &mut scratch,
                out_c,
                hw,
                k_total,
                &weights,
                &col,
                &bias,
                &mut want,
            );

            let mut got = vec![f32::NAN; out_c * hw];
            conv2d_forward(
                &mut scratch,
                &input,
                c_in,
                h,
                w,
                kk,
                &weights,
                &bias,
                out_c,
                &mut got,
            );
            for (i, (&g, &w0)) in got.iter().zip(&want).enumerate() {
                let tol = 1e-5 * (1.0 + w0.abs()) * (k_total as f32).sqrt();
                assert!(
                    (g - w0).abs() <= tol,
                    "shape c{c_in} {h}x{w} k{kk} out{out_c} idx {i}: {g} vs {w0}"
                );
            }
        }
    }

    #[test]
    fn col2im_add_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im_add(y)> — the defining property of
        // the adjoint scatter used by the conv backward pass.
        let (c_in, h, w, kk) = (2, 4, 5, 3);
        let mut rng = DetRng::new(9);
        let x = random_vec(&mut rng, c_in * h * w);
        let y = random_vec(&mut rng, c_in * kk * kk * h * w);
        let mut col = Vec::new();
        im2col(&x, c_in, h, w, kk, &mut col);
        let forward: f64 = col.iter().zip(&y).map(|(&a, &b)| a as f64 * b as f64).sum();
        let mut back = vec![0.0f32; c_in * h * w];
        col2im_add(&y, c_in, h, w, kk, &mut back);
        let adjoint: f64 = x
            .iter()
            .zip(&back)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!(
            (forward - adjoint).abs() < 1e-3 * forward.abs().max(1.0),
            "forward {forward} adjoint {adjoint}"
        );
    }
}

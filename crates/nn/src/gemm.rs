//! Blocked, cache-tiled f32 matrix multiply with runtime SIMD dispatch, a
//! threaded macro-kernel, and the im2col convolution lowering.
//!
//! This is the engine room of the batched inference path: `Conv2d`'s
//! forward runs [`conv2d_forward`] (a virtual-im2col GEMM that addresses the
//! patch matrix inside the image instead of materializing it), its backward
//! lowers through [`im2col`]/[`col2im_add`], and `Dense` multiplies whole
//! minibatches against its weight matrix. Explicit products run through one
//! [`gemm`] implementation in the classic BLIS/GotoBLAS structure:
//!
//! * three blocking loops (`NC` columns of B, `KC` of the shared dimension,
//!   `MC` rows of A) size working sets for the cache hierarchy;
//! * A-blocks are packed into panel-contiguous, zero-padded buffers, which
//!   also absorbs the `N`/`T` layout variants; B is either packed the same
//!   way or addressed in place through a per-row offset table (the direct
//!   and virtual-im2col paths) — every micro-kernel reads row `p` of its B
//!   operand at `b[offsets[p] + j0..]`, so one kernel family serves all
//!   three addressing modes;
//! * an `MR x NR` register-tile micro-kernel does the FLOPs, selected at
//!   runtime from three tiers (see [`Kernel`]):
//!
//!   | tier | requires | shape |
//!   |------|----------|-------|
//!   | `Avx512` | `avx512f` (runtime-detected) | 6 rows x 2 zmm, plus a 6 x 4-zmm **wide tile** ([`NR_WIDE`] = 64 columns) that the conv path swaps in when the accumulation depth is short (`k <= 32`, the first-layer convs where per-tile fixed costs dominate) |
//!   | `Avx2` | `avx2` + `fma` (runtime-detected) | 6 rows x 2 ymm, two 16-column halves per `NR` strip |
//!   | `Portable` | nothing | plain loops over fixed-size arrays with `f32::mul_add`, auto-vectorized when the build enables wide FMA (e.g. `RUSTFLAGS="-C target-cpu=native"`); on a baseline non-FMA build it stays correct but falls back to library `fmaf`, which is why the runtime-dispatched tiers exist |
//!
//!   All tiers run the *same* per-element chain of fused multiply-adds in
//!   the same `k` order, so their results are **bitwise identical** to each
//!   other (property-tested in `tests/proptests.rs`); only accumulation
//!   *across* tiles (vs. the scalar reference path) differs by a few ULPs.
//!   `Auto` resolves through the per-op-class policy
//!   ([`tahoma_mathx::simd_policy`]): regular products under the `gemm`
//!   class, short-accumulation products (`k <=` [`SMALL_K_MAX`] — the
//!   first-layer convs) under `gemm-wide-k`, so a measured calibration
//!   (`tahoma_costmodel::kernels`) or `TAHOMA_KERNEL_POLICY` can steer each
//!   independently of the static widest-ISA heuristic.
//!
//! * the macro-kernel threads across `NR`-aligned column ranges of C via
//!   the persistent `tahoma_mathx::pool` workers when the problem is big
//!   enough ([`GemmScratch`]'s `threads` knob; automatic sizing uses
//!   roughly one worker per [`PAR_MIN_FLOPS`] of work, never more than the
//!   machine has cores — and no OS thread is ever created per call).
//!   Column-splitting leaves every output element's accumulation order
//!   untouched, so threaded results are bitwise equal to single-threaded
//!   ones.
//!
//! This is one of the four files sanctioned to contain raw-pointer
//! arithmetic; the workspace unsafe policy, the required shape of every
//! SAFETY comment, and the `checked-kernels` audit feature that promotes
//! the bounds/alignment/disjointness claims here into hard assertions are
//! documented in `SAFETY.md` at the repository root.

use tahoma_mathx::checked;
use tahoma_mathx::simd_policy::{self, OpClass, SimdTier};

/// Micro-kernel tile rows (register blocking in M).
pub const MR: usize = 6;
/// Micro-kernel tile columns (register blocking in N); two AVX-512 or four
/// AVX2 vectors of f32. The `6 x 32` tile needs 12 AVX-512 accumulator
/// registers — enough independent FMA chains to hide the FMA latency while
/// leaving registers for the operand loads (measured fastest among 2/4/6/8
/// row variants on an AVX-512 host).
pub const NR: usize = 32;
/// Wide-tile columns for the short-`k` conv fast path: 4 zmm vectors, so a
/// 6-row tile commits 24 of the 32 AVX-512 registers to accumulators and
/// halves the per-tile loop/epilogue overhead that dominates at small `k`.
pub const NR_WIDE: usize = 64;
/// Accumulation depth at or below which the conv path prefers the wide
/// tile: `k = c_in * kk * kk <= 32` covers 1-3 input channels with 3x3
/// kernels — exactly the first-layer shapes where the standard tile spends
/// more time on fixed costs than FLOPs.
pub const SMALL_K_MAX: usize = 32;

/// Cache-blocking size along M (rows of A per packed block; multiple of MR).
const MC: usize = 60;
/// Cache-blocking size along K (shared dimension per packed block).
const KC: usize = 256;
/// Cache-blocking size along N (columns of B per packed block).
const NC: usize = 1024;
/// Upper bound on `k` for the no-pack direct path: beyond this the packed-A
/// buffer (`ceil(m/MR)*MR*k` floats) and per-tile B strips stop being
/// cache-friendly, so fall back to the fully blocked path.
const DIRECT_K_MAX: usize = 8192;
/// Combined budget for one column block of B plus its C block in the direct
/// path — sized to stay comfortably inside a 2 MiB L2.
const DIRECT_BLOCK_BYTES: usize = 3 * 512 * 1024;
/// Auto-threading grain: spawn roughly one worker per this many FLOPs
/// (~0.2 ms of single-thread work), so scoped-thread spawn cost stays a
/// few percent of each worker's runtime.
pub const PAR_MIN_FLOPS: f64 = 1.6e7;

/// Whether an operand is used as stored or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the matrix as stored (row-major).
    N,
    /// Use the transpose of the stored matrix.
    T,
}

/// Micro-kernel selection. `Auto` (the default) resolves per call through
/// the per-op-class [`tahoma_mathx::simd_policy`] table — an entry of
/// `SimdTier::Auto` (the untuned default) falls back to
/// `is_x86_feature_detected!` — so a calibrated or env-forced policy
/// (`TAHOMA_KERNEL_POLICY`) steers every `Auto` call site without touching
/// it. The explicit variants exist so benches and property tests can pin a
/// tier. Forcing (or policy-selecting) a tier the running CPU does not
/// support silently resolves to detection instead (never to an illegal
/// instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Detect the best supported tier at call time.
    #[default]
    Auto,
    /// The dependency-free `f32::mul_add` kernel (any CPU).
    Portable,
    /// Explicit AVX2+FMA intrinsics (x86-64 with `avx2` and `fma`).
    Avx2,
    /// Explicit AVX-512 intrinsics (x86-64 with `avx512f`), including the
    /// wide small-`k` conv tile.
    Avx512,
}

impl Kernel {
    /// The best tier the running CPU supports.
    pub fn detect() -> Kernel {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Kernel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Kernel::Avx2;
            }
        }
        Kernel::Portable
    }

    /// Every tier the running CPU can execute, portable first. Benches and
    /// property tests iterate this to compare tiers.
    pub fn available() -> Vec<Kernel> {
        let mut out = vec![Kernel::Portable];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                out.push(Kernel::Avx2);
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                out.push(Kernel::Avx512);
            }
        }
        out
    }

    /// Whether the running CPU can execute this tier (`Auto` trivially).
    fn supported(self) -> bool {
        match self {
            Kernel::Auto | Kernel::Portable => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Resolve `Auto` for one op class: look the class up in the global
    /// [`tahoma_mathx::simd_policy`] table, falling back to feature
    /// detection when the policy says `Auto` or names a tier this CPU
    /// cannot run. Explicitly requested tiers bypass the policy (demoted
    /// to detection only when unsupported). Policy lookup is one relaxed
    /// atomic load and feature detection is cached by the standard
    /// library, so this is branch-cheap per call.
    pub fn resolve_class(self, class: OpClass) -> Kernel {
        let requested = match self {
            Kernel::Auto => Kernel::from_tier(simd_policy::global_tier(class)),
            k => k,
        };
        match requested {
            Kernel::Auto => Kernel::detect(),
            k if k.supported() => k,
            _ => Kernel::detect(),
        }
    }

    /// The crate-local kernel for a policy tier.
    pub fn from_tier(tier: SimdTier) -> Kernel {
        match tier {
            SimdTier::Auto => Kernel::Auto,
            SimdTier::Portable => Kernel::Portable,
            SimdTier::Avx2 => Kernel::Avx2,
            SimdTier::Avx512 => Kernel::Avx512,
        }
    }

    /// This kernel's policy-tier name (inverse of [`Kernel::from_tier`]).
    pub fn tier(self) -> SimdTier {
        match self {
            Kernel::Auto => SimdTier::Auto,
            Kernel::Portable => SimdTier::Portable,
            Kernel::Avx2 => SimdTier::Avx2,
            Kernel::Avx512 => SimdTier::Avx512,
        }
    }

    /// Short stable name for bench labels.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Auto => "auto",
            Kernel::Portable => "portable",
            Kernel::Avx2 => "avx2",
            Kernel::Avx512 => "avx512",
        }
    }
}

/// Reusable packing buffers plus the per-call-site execution knobs; keep
/// one per call site to avoid per-call allocation on hot paths. The
/// `conv_*` fields are used only by [`conv2d_forward`]; plain [`gemm`]
/// calls leave them empty.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    packed_a: Vec<f32>,
    packed_b: Vec<f32>,
    conv_padded: Vec<f32>,
    conv_offsets: Vec<usize>,
    conv_edge_col: Vec<f32>,
    conv_edge_out: Vec<f32>,
    /// Per-row B offsets for in-place (direct / virtual-im2col) addressing.
    off_main: Vec<usize>,
    /// Per-row B offsets for panel-packed (stride `NR`) addressing.
    off_panel: Vec<usize>,
    /// Worker scratches for threaded runs (see [`GemmScratch::worker_pool`]).
    pool: Vec<GemmScratch>,
    /// Micro-kernel tier; `Kernel::Auto` detects per call.
    pub kernel: Kernel,
    /// Worker-thread override: `None` sizes automatically from the problem
    /// (staying single-threaded below [`PAR_MIN_FLOPS`] per worker);
    /// `Some(t)` forces up to `t` workers regardless of size (used by tests
    /// to exercise the split on small problems, and by batch loops to pin
    /// their inner GEMMs to one thread).
    pub threads: Option<usize>,
}

impl GemmScratch {
    /// Scratch pinned to one micro-kernel tier (benches, property tests).
    pub fn with_kernel(kernel: Kernel) -> GemmScratch {
        GemmScratch {
            kernel,
            ..GemmScratch::default()
        }
    }

    /// Scratch with an explicit worker-thread count.
    pub fn with_threads(threads: usize) -> GemmScratch {
        GemmScratch {
            threads: Some(threads),
            ..GemmScratch::default()
        }
    }

    /// Split off `n` single-threaded worker scratches inheriting this
    /// scratch's kernel selection, growing the pool as needed. For callers
    /// that parallelize an *outer* loop (e.g. a batch of images) and need
    /// one scratch per worker with nested threading disabled.
    pub fn worker_pool(&mut self, n: usize) -> &mut [GemmScratch] {
        if self.pool.len() < n {
            self.pool.resize_with(n, GemmScratch::default);
        }
        for w in &mut self.pool[..n] {
            w.kernel = self.kernel;
            w.threads = Some(1);
        }
        &mut self.pool[..n]
    }
}

/// Machine parallelism, detected once (`available_parallelism` performs a
/// syscall per call, which would tax every batch-of-1 forward).
fn hw_threads() -> usize {
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, |v| v.get()))
}

/// Worker-thread count for a loop over `batch` items of `item_flops` each:
/// the explicit request clamped to the batch, or an automatic size that
/// stays serial until there is at least [`PAR_MIN_FLOPS`] of work per
/// worker (and never exceeds the machine's parallelism).
pub fn batch_threads(requested: Option<usize>, item_flops: u64, batch: usize) -> usize {
    match requested {
        Some(t) => t.clamp(1, batch.max(1)),
        None => {
            if batch < 2 || hw_threads() <= 1 {
                return 1;
            }
            let by_work = (item_flops as f64 * batch as f64 / PAR_MIN_FLOPS) as usize;
            by_work.min(hw_threads()).min(batch).max(1)
        }
    }
}

/// Worker count for one GEMM of the given shape (see
/// [`GemmScratch::threads`] for the policy).
fn plan_threads(requested: Option<usize>, m: usize, n: usize, k: usize) -> usize {
    let strips = n.div_ceil(NR);
    if m == 0 || n == 0 || k == 0 {
        return 1;
    }
    match requested {
        Some(t) => t.clamp(1, strips),
        None => {
            if hw_threads() <= 1 {
                return 1;
            }
            let by_work = (2.0 * (m * n) as f64 * k as f64 / PAR_MIN_FLOPS) as usize;
            by_work.min(hw_threads()).min(strips).max(1)
        }
    }
}

/// Split `n` columns into at most `t` contiguous `NR`-aligned ranges.
fn column_chunks(n: usize, t: usize) -> Vec<(usize, usize)> {
    let strips = n.div_ceil(NR);
    let t = t.clamp(1, strips);
    let per = strips.div_ceil(t);
    let mut out = Vec::with_capacity(t);
    let mut s = 0;
    while s < strips {
        let e = (s + per).min(strips);
        out.push((s * NR, (e * NR).min(n)));
        s = e;
    }
    out
}

/// A raw C pointer that column-partitioned workers share. Each worker
/// writes a disjoint set of columns, so no element is ever written by two
/// threads; reads never occur outside the owner.
#[derive(Clone, Copy)]
struct CPtr(*mut f32);
// SAFETY: workers write strictly disjoint column ranges of C (enforced by
// `column_chunks`), so concurrent access never aliases an element.
unsafe impl Send for CPtr {}
unsafe impl Sync for CPtr {}

/// `dst[i] += src[i]` over a raw row segment.
///
/// # Safety
/// `dst..dst + src.len()` must be writable and not concurrently accessed.
#[inline(always)]
unsafe fn add_row(dst: *mut f32, src: &[f32]) {
    for (i, &v) in src.iter().enumerate() {
        // SAFETY: in-bounds by the caller's contract.
        unsafe { *dst.add(i) += v };
    }
}

/// `dst[i] = base + src[i]` over a raw row segment (write-only bias-fused
/// epilogue).
///
/// # Safety
/// `dst..dst + src.len()` must be writable and not concurrently accessed.
#[inline(always)]
unsafe fn set_bias_row(dst: *mut f32, base: f32, src: &[f32]) {
    for (i, &v) in src.iter().enumerate() {
        // SAFETY: in-bounds by the caller's contract.
        unsafe { *dst.add(i) = base + v };
    }
}

/// Fill `dst` with `p * stride` for `p in 0..k` — the offset table that
/// lets one kernel family address packed panels, in-place rows, and the
/// virtual patch matrix uniformly.
fn fill_offsets(dst: &mut Vec<usize>, k: usize, stride: usize) {
    dst.clear();
    dst.extend((0..k).map(|p| p * stride));
}

/// `C += A · B` where `C` is `m x n` row-major and `A`/`B` are interpreted
/// through their [`Trans`] flags: `A` is `m x k` when `N` (stored `k x m`
/// when `T`), `B` is `k x n` when `N` (stored `n x k` when `T`). All storage
/// is compact row-major. The caller initializes `C` (zeros, or a broadcast
/// bias for a fused bias-add).
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    scratch: &mut GemmScratch,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k, "A size mismatch");
    debug_assert_eq!(b.len(), k * n, "B size mismatch");
    debug_assert_eq!(c.len(), m * n, "C size mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let kernel = scratch.kernel.resolve_class(OpClass::Gemm);
    if ta == Trans::N && tb == Trans::N && k <= DIRECT_K_MAX {
        return gemm_direct_nn(scratch, kernel, m, n, k, a, b, c, None);
    }
    let t = plan_threads(scratch.threads, m, n, k);
    let c_ptr = CPtr(c.as_mut_ptr());
    if t <= 1 {
        return gemm_blocked_cols(scratch, kernel, m, n, k, a, ta, b, tb, c_ptr, 0, n);
    }
    let chunks = column_chunks(n, t);
    checked::disjoint_chunks(&chunks, n, "gemm column partition");
    let pool = scratch.worker_pool(chunks.len());
    tahoma_mathx::pool::scope(|scope| {
        for (w, &(jlo, jhi)) in pool.iter_mut().zip(&chunks) {
            scope.spawn(move || {
                gemm_blocked_cols(w, kernel, m, n, k, a, ta, b, tb, c_ptr, jlo, jhi);
            });
        }
    });
}

/// The fully blocked path over columns `[jlo, jhi)` of C: pack B strips and
/// A blocks, run packed tiles. One invocation per worker thread.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked_cols(
    scratch: &mut GemmScratch,
    kernel: Kernel,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    c: CPtr,
    jlo: usize,
    jhi: usize,
) {
    let GemmScratch {
        packed_a,
        packed_b,
        off_panel,
        ..
    } = scratch;
    packed_a.resize(MC * KC, 0.0);
    packed_b.resize(KC * NC, 0.0);
    for jc in (jlo..jhi).step_by(NC) {
        let nc = NC.min(jhi - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(packed_b, b, tb, k, n, pc, kc, jc, nc);
            fill_offsets(off_panel, kc, NR);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(packed_a, a, ta, m, k, ic, mc, pc, kc);
                let mc_panels = mc.div_ceil(MR);
                let nc_panels = nc.div_ceil(NR);
                for ip in 0..mc_panels {
                    let a_panel = &packed_a[ip * MR * kc..(ip * MR + MR) * kc];
                    let mr = MR.min(mc - ip * MR);
                    for jp in 0..nc_panels {
                        let b_panel = &packed_b[jp * NR * kc..(jp * NR + NR) * kc];
                        let nr = NR.min(nc - jp * NR);
                        let mut acc = [[0.0f32; NR]; MR];
                        tile(kernel, kc, a_panel, b_panel, off_panel, 0, mr, &mut acc);
                        let row0 = ic + ip * MR;
                        let col0 = jc + jp * NR;
                        for (i, acc_row) in acc.iter().enumerate().take(mr) {
                            checked::span(m * n, (row0 + i) * n + col0, nr, "gemm C tile row");
                            // SAFETY: row/col in bounds; this worker owns
                            // columns [jlo, jhi) exclusively.
                            unsafe { add_row(c.0.add((row0 + i) * n + col0), &acc_row[..nr]) };
                        }
                    }
                }
            }
        }
    }
}

/// The no-pack fast path for `C += A · B` (or `C = bias ⊕ A · B`) with both
/// operands as stored: only A is packed (whole matrix, zero-padded to
/// `MR`-row panels); the kernel reads `B` in place through the shared
/// offset table. Skipping the B-pack halves B-side memory traffic, which
/// dominates when `m` is small — exactly the shape of the im2col
/// convolution (`m = out_c`), where this path is ~35% faster end to end
/// than the packed one. Threads across `NR`-aligned column ranges when the
/// problem is large enough.
#[allow(clippy::too_many_arguments)]
fn gemm_direct_nn(
    scratch: &mut GemmScratch,
    kernel: Kernel,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    init: Option<&[f32]>,
) {
    let t = plan_threads(scratch.threads, m, n, k);
    let GemmScratch {
        packed_a,
        packed_b,
        off_main,
        off_panel,
        ..
    } = scratch;
    let m_panels = m.div_ceil(MR);
    packed_a.resize(m_panels * MR * k, 0.0);
    pack_a(packed_a, a, Trans::N, m, k, 0, m, 0, k);
    fill_offsets(off_main, k, n);
    let c_ptr = CPtr(c.as_mut_ptr());
    if t <= 1 {
        return direct_nn_cols(
            kernel, packed_a, off_main, m, n, k, b, c_ptr, init, 0, n, off_panel, packed_b,
        );
    }
    let packed_a = &*packed_a;
    let off_main = &*off_main;
    let chunks = column_chunks(n, t);
    checked::disjoint_chunks(&chunks, n, "direct gemm column partition");
    tahoma_mathx::pool::scope(|scope| {
        for (jlo, jhi) in chunks {
            scope.spawn(move || {
                let mut off_panel = Vec::new();
                let mut tail_b = Vec::new();
                direct_nn_cols(
                    kernel,
                    packed_a,
                    off_main,
                    m,
                    n,
                    k,
                    b,
                    c_ptr,
                    init,
                    jlo,
                    jhi,
                    &mut off_panel,
                    &mut tail_b,
                );
            });
        }
    });
}

/// Direct-path worker over columns `[jlo, jhi)` of C.
///
/// Two-level column blocking. Outer: balanced `jc` blocks sized so the
/// C block plus B block stay L2-resident (C tiles are written in strided
/// strips, so they must hit cache). Inner: one `k x NR` strip of B is
/// pushed through every A panel while it is L1-hot, so B streams out of
/// L2 exactly once per block regardless of m.
#[allow(clippy::too_many_arguments)]
fn direct_nn_cols(
    kernel: Kernel,
    packed_a: &[f32],
    off_main: &[usize],
    m: usize,
    n: usize,
    k: usize,
    b: &[f32],
    c: CPtr,
    init: Option<&[f32]>,
    jlo: usize,
    jhi: usize,
    off_panel: &mut Vec<usize>,
    tail_b: &mut Vec<f32>,
) {
    if jhi <= jlo {
        return;
    }
    let m_panels = m.div_ceil(MR);
    let span = jhi - jlo;
    let max_nc = (DIRECT_BLOCK_BYTES / (4 * (m + k))).max(NR);
    let blocks = span.div_ceil(max_nc).max(1);
    let nc_block = span.div_ceil(blocks).div_ceil(NR).max(1) * NR;

    for jc in (jlo..jhi).step_by(nc_block) {
        let nc = nc_block.min(jhi - jc);
        let full_nr = nc / NR;
        let tail = nc - full_nr * NR;
        for jp in 0..full_nr {
            let j0 = jc + jp * NR;
            for ip in 0..m_panels {
                let a_panel = &packed_a[ip * MR * k..(ip * MR + MR) * k];
                let mr = MR.min(m - ip * MR);
                let mut acc = [[0.0f32; NR]; MR];
                tile(kernel, k, a_panel, b, off_main, j0, mr, &mut acc);
                for (i, acc_row) in acc.iter().enumerate().take(mr) {
                    let row = ip * MR + i;
                    checked::span(m * n, row * n + j0, NR, "direct gemm C strip");
                    // SAFETY: row < m, j0 + NR <= n; this worker owns
                    // columns [jlo, jhi) exclusively.
                    unsafe {
                        let dst = c.0.add(row * n + j0);
                        match init {
                            // Fused epilogue: C = bias + A·B, write-only (no
                            // read-modify-write pass over C).
                            Some(bias) => set_bias_row(dst, bias[row], &acc_row[..NR]),
                            None => add_row(dst, &acc_row[..NR]),
                        }
                    }
                }
            }
        }
        if tail > 0 {
            // Pack the ragged final columns of the block, zero-padded to NR.
            tail_b.resize(k * NR, 0.0);
            fill_offsets(off_panel, k, NR);
            let j0 = jc + full_nr * NR;
            for p in 0..k {
                let dst = &mut tail_b[p * NR..(p + 1) * NR];
                dst[..tail].copy_from_slice(&b[p * n + j0..p * n + j0 + tail]);
                dst[tail..].fill(0.0);
            }
            for ip in 0..m_panels {
                let a_panel = &packed_a[ip * MR * k..(ip * MR + MR) * k];
                let mr = MR.min(m - ip * MR);
                let mut acc = [[0.0f32; NR]; MR];
                tile(kernel, k, a_panel, tail_b, off_panel, 0, mr, &mut acc);
                for (i, acc_row) in acc.iter().enumerate().take(mr) {
                    let row = ip * MR + i;
                    checked::span(m * n, row * n + j0, tail, "direct gemm C tail");
                    // SAFETY: as above; only `tail` columns are live.
                    unsafe {
                        let dst = c.0.add(row * n + j0);
                        match init {
                            Some(bias) => set_bias_row(dst, bias[row], &acc_row[..tail]),
                            None => add_row(dst, &acc_row[..tail]),
                        }
                    }
                }
            }
        }
    }
}

/// `C = bias ⊕ A · B` with both operands as stored: row `i` of `C` is
/// initialized to the scalar `bias[i]` and accumulated in one write-only
/// epilogue pass (the convolution forward's bias-add, fused so `C` is never
/// pre-filled or re-read). `C`'s prior contents are ignored.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn_bias(
    scratch: &mut GemmScratch,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    c: &mut [f32],
) {
    debug_assert_eq!(bias.len(), m, "bias size mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || k > DIRECT_K_MAX {
        // Degenerate or oversized-k shapes: fill then accumulate.
        for (row, &b0) in c.chunks_exact_mut(n).zip(bias) {
            row.fill(b0);
        }
        return gemm(scratch, m, n, k, a, Trans::N, b, Trans::N, c);
    }
    let kernel = scratch.kernel.resolve_class(OpClass::Gemm);
    gemm_direct_nn(scratch, kernel, m, n, k, a, b, c, Some(bias))
}

/// Convolution forward pass without materializing the patch matrix:
/// `out[out_c x hw] = bias ⊕ W[out_c x (c_in*kk*kk)] · col(input)`, where
/// `col` is only ever *addressed*, never built.
///
/// For stride-1 "same" convolution the patch matrix is almost an affine
/// re-indexing of the image: row `(i, ky, kx)` at output pixel `q` equals
/// `plane_i[q + (ky-pad)*w + (kx-pad)]`. Two deviations exist — y-overflow
/// (must read zero padding) and x-overflow (the linear index wraps to the
/// adjacent row). Copying each plane once into a zero-slack frame makes
/// every y-overflow read an actual zero, so the micro-kernel can stream B
/// straight out of the ~image-sized padded buffer (L1/L2-resident, vs.
/// `kk*kk` times that for a materialized patch matrix). The x-overflow
/// positions are exactly the `2*pad` edge columns; those output pixels are
/// recomputed afterwards with a small correctly-padded patch GEMM
/// (`2*pad*h` of `h*w` pixels) that overwrites the wrapped garbage.
///
/// The pixel sweep threads across `NR`-pixel strips for large images (same
/// policy as [`gemm`]), and on the AVX-512 tier switches to the
/// [`NR_WIDE`]-column tile when the accumulation depth is short (the
/// first-layer shapes; see the module docs).
///
/// The backward pass still materializes [`im2col`]; this path is for the
/// throughput-critical forward direction.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward(
    scratch: &mut GemmScratch,
    input: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    kk: usize,
    weights: &[f32],
    bias: &[f32],
    out_c: usize,
    out: &mut [f32],
) {
    let pad = kk / 2;
    let hw = h * w;
    let k_total = c_in * kk * kk;
    debug_assert_eq!(input.len(), c_in * hw);
    debug_assert_eq!(weights.len(), out_c * k_total);
    debug_assert_eq!(bias.len(), out_c);
    debug_assert_eq!(out.len(), out_c * hw);
    if hw == 0 || out_c == 0 {
        return;
    }
    // Short accumulation depths are their own policy class: the AVX-512
    // wide tile and the AVX2 tier trade places depending on the part, so
    // the measured policy can pick per machine.
    let class = if k_total <= SMALL_K_MAX {
        OpClass::GemmWideK
    } else {
        OpClass::Gemm
    };
    let kernel = scratch.kernel.resolve_class(class);

    // 1. Frame every plane in zero slack wide enough for any (ky, kx)
    //    offset, plus a wide-tile guard at the very end for the last strip.
    let slack = pad * w + pad + w;
    let cstride = hw + 2 * slack;
    let need = c_in * cstride + NR_WIDE;
    if scratch.conv_padded.len() != need {
        scratch.conv_padded.clear();
        scratch.conv_padded.resize(need, 0.0);
    }
    for i in 0..c_in {
        scratch.conv_padded[i * cstride + slack..i * cstride + slack + hw]
            .copy_from_slice(&input[i * hw..(i + 1) * hw]);
    }

    // 2. Per-patch-row base offsets into the padded buffer.
    scratch.conv_offsets.clear();
    scratch.conv_offsets.reserve(k_total);
    for i in 0..c_in {
        for ky in 0..kk {
            for kx in 0..kk {
                scratch
                    .conv_offsets
                    .push(i * cstride + slack + ky * w + kx - (pad * w + pad));
            }
        }
    }

    // 3. Pack the filter matrix once for the whole image.
    let m_panels = out_c.div_ceil(MR);
    scratch.packed_a.resize(m_panels * MR * k_total, 0.0);
    pack_a(
        &mut scratch.packed_a,
        weights,
        Trans::N,
        out_c,
        k_total,
        0,
        out_c,
        0,
        k_total,
    );

    // 4. Main sweep over full NR strips: offset-addressed B, bias-fused
    //    write-only epilogue. Threaded across strip ranges.
    let full_nr = hw / NR;
    let tail = hw - full_nr * NR;
    let out_ptr = CPtr(out.as_mut_ptr());
    let t = plan_threads(scratch.threads, out_c, hw, k_total).min(full_nr.max(1));
    if full_nr > 0 {
        if t <= 1 {
            conv_sweep(
                kernel,
                &scratch.packed_a,
                &scratch.conv_padded,
                &scratch.conv_offsets,
                out_c,
                hw,
                k_total,
                bias,
                out_ptr,
                0,
                full_nr,
            );
        } else {
            let packed_a = &scratch.packed_a;
            let padded = &scratch.conv_padded;
            let offsets = &scratch.conv_offsets;
            let per = full_nr.div_ceil(t);
            tahoma_mathx::pool::scope(|scope| {
                let mut s = 0;
                while s < full_nr {
                    let e = (s + per).min(full_nr);
                    scope.spawn(move || {
                        conv_sweep(
                            kernel, packed_a, padded, offsets, out_c, hw, k_total, bias, out_ptr,
                            s, e,
                        );
                    });
                    s = e;
                }
            });
        }
    }
    if tail > 0 {
        // Gather the ragged final columns into a packed strip.
        let j0 = full_nr * NR;
        scratch.packed_b.resize(k_total * NR, 0.0);
        for (p, &off) in scratch.conv_offsets.iter().enumerate() {
            let dst = &mut scratch.packed_b[p * NR..(p + 1) * NR];
            dst[..tail].copy_from_slice(&scratch.conv_padded[off + j0..off + j0 + tail]);
            dst[tail..].fill(0.0);
        }
        fill_offsets(&mut scratch.off_panel, k_total, NR);
        for ip in 0..m_panels {
            let a_panel = &scratch.packed_a[ip * MR * k_total..(ip * MR + MR) * k_total];
            let mr = MR.min(out_c - ip * MR);
            let mut acc = [[0.0f32; NR]; MR];
            tile(
                kernel,
                k_total,
                a_panel,
                &scratch.packed_b,
                &scratch.off_panel,
                0,
                mr,
                &mut acc,
            );
            for (i, acc_row) in acc.iter().enumerate().take(mr) {
                let row = ip * MR + i;
                let dst = &mut out[row * hw + j0..row * hw + j0 + tail];
                for (d, &v) in dst.iter_mut().zip(acc_row.iter()) {
                    *d = bias[row] + v;
                }
            }
        }
    }

    // 5. Repair the x-edge columns (wrapped reads) with a correctly padded
    //    patch GEMM over just those pixels.
    let edge_xs: Vec<usize> = if w > 2 * pad {
        (0..pad).chain(w - pad..w).collect()
    } else {
        (0..w).collect()
    };
    let ne = edge_xs.len() * h;
    if ne == 0 {
        return;
    }
    let mut edge_col = std::mem::take(&mut scratch.conv_edge_col);
    let mut edge_out = std::mem::take(&mut scratch.conv_edge_out);
    edge_col.clear();
    edge_col.resize(k_total * ne, 0.0);
    for i in 0..c_in {
        let plane = &input[i * hw..(i + 1) * hw];
        for ky in 0..kk {
            for kx in 0..kk {
                let row = &mut edge_col[((i * kk + ky) * kk + kx) * ne..];
                let mut ei = 0;
                for &x in &edge_xs {
                    let sx = x + kx;
                    let x_ok = sx >= pad && sx < w + pad;
                    for y in 0..h {
                        let sy = y + ky;
                        row[ei] = if x_ok && sy >= pad && sy < h + pad {
                            plane[(sy - pad) * w + sx - pad]
                        } else {
                            0.0
                        };
                        ei += 1;
                    }
                }
            }
        }
    }
    edge_out.clear();
    edge_out.resize(out_c * ne, 0.0);
    gemm_nn_bias(
        scratch,
        out_c,
        ne,
        k_total,
        weights,
        &edge_col,
        bias,
        &mut edge_out,
    );
    for o in 0..out_c {
        let mut ei = 0;
        for &x in &edge_xs {
            for y in 0..h {
                out[o * hw + y * w + x] = edge_out[o * ne + ei];
                ei += 1;
            }
        }
    }
    scratch.conv_edge_col = edge_col;
    scratch.conv_edge_out = edge_out;
}

/// Conv main-sweep worker over full strips `[s0, s1)` (strip = `NR`
/// pixels). On the AVX-512 tier with short accumulation depth, pairs of
/// adjacent strips run through the wide tile.
#[allow(clippy::too_many_arguments)]
fn conv_sweep(
    kernel: Kernel,
    packed_a: &[f32],
    padded: &[f32],
    offsets: &[usize],
    out_c: usize,
    hw: usize,
    k_total: usize,
    bias: &[f32],
    out: CPtr,
    s0: usize,
    s1: usize,
) {
    let m_panels = out_c.div_ceil(MR);
    let wide = kernel == Kernel::Avx512 && k_total <= SMALL_K_MAX;
    let mut s = s0;
    while s < s1 {
        let j0 = s * NR;
        if wide && s + 1 < s1 {
            for ip in 0..m_panels {
                let a_panel = &packed_a[ip * MR * k_total..(ip * MR + MR) * k_total];
                let mr = MR.min(out_c - ip * MR);
                let mut acc = [[0.0f32; NR_WIDE]; MR];
                wide_tile(kernel, k_total, a_panel, padded, offsets, j0, mr, &mut acc);
                for (i, acc_row) in acc.iter().enumerate().take(mr) {
                    let row = ip * MR + i;
                    checked::span(out_c * hw, row * hw + j0, NR_WIDE, "conv out wide strip");
                    // SAFETY: j0 + NR_WIDE <= s1 * NR <= hw; this worker
                    // owns strips [s0, s1) exclusively.
                    unsafe { set_bias_row(out.0.add(row * hw + j0), bias[row], &acc_row[..]) };
                }
            }
            s += 2;
            continue;
        }
        for ip in 0..m_panels {
            let a_panel = &packed_a[ip * MR * k_total..(ip * MR + MR) * k_total];
            let mr = MR.min(out_c - ip * MR);
            let mut acc = [[0.0f32; NR]; MR];
            tile(kernel, k_total, a_panel, padded, offsets, j0, mr, &mut acc);
            for (i, acc_row) in acc.iter().enumerate().take(mr) {
                let row = ip * MR + i;
                checked::span(out_c * hw, row * hw + j0, NR, "conv out strip");
                // SAFETY: j0 + NR <= hw; strips [s0, s1) owned exclusively.
                unsafe { set_bias_row(out.0.add(row * hw + j0), bias[row], &acc_row[..]) };
            }
        }
        s += 1;
    }
}

/// `C += A · B` with both operands as stored.
pub fn gemm_nn(
    scratch: &mut GemmScratch,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    gemm(scratch, m, n, k, a, Trans::N, b, Trans::N, c);
}

/// `C += A · Bᵀ` (`B` stored `n x k`).
pub fn gemm_nt(
    scratch: &mut GemmScratch,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    gemm(scratch, m, n, k, a, Trans::N, b, Trans::T, c);
}

/// `C += Aᵀ · B` (`A` stored `k x m`).
pub fn gemm_tn(
    scratch: &mut GemmScratch,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    gemm(scratch, m, n, k, a, Trans::T, b, Trans::N, c);
}

/// Run one `mr x NR` tile (`mr <= MR`) on the selected kernel tier,
/// accumulating into the first `mr` rows of `acc`. `a` is an `MR`-strided
/// packed panel; row `p` of the B operand lives at `b[offsets[p] + j0..]`.
/// The 4- and 2-row variants skip padded-row work on ragged final panels.
#[allow(clippy::too_many_arguments)]
#[inline]
fn tile(
    kernel: Kernel,
    kc: usize,
    a: &[f32],
    b: &[f32],
    offsets: &[usize],
    j0: usize,
    mr: usize,
    acc: &mut [[f32; NR]; MR],
) {
    match kernel {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: these variants are only produced by `Kernel::resolve`
        // after runtime detection of the required CPU features.
        Kernel::Avx512 => unsafe {
            match mr {
                5 | 6 => x86::kernel_avx512::<MR>(kc, a, b, offsets, j0, acc),
                3 | 4 => x86::kernel_avx512::<4>(kc, a, b, offsets, j0, acc),
                _ => x86::kernel_avx512::<2>(kc, a, b, offsets, j0, acc),
            }
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — `avx2` and `fma` were detected at runtime.
        Kernel::Avx2 => unsafe {
            match mr {
                5 | 6 => x86::kernel_avx2::<MR>(kc, a, b, offsets, j0, acc),
                3 | 4 => x86::kernel_avx2::<4>(kc, a, b, offsets, j0, acc),
                _ => x86::kernel_avx2::<2>(kc, a, b, offsets, j0, acc),
            }
        },
        _ => match mr {
            5 | 6 => kernel_portable::<MR>(kc, a, b, offsets, j0, acc),
            3 | 4 => kernel_portable::<4>(kc, a, b, offsets, j0, acc),
            _ => kernel_portable::<2>(kc, a, b, offsets, j0, acc),
        },
    }
}

/// [`NR_WIDE`]-column counterpart of [`tile`] for the short-`k` conv path.
/// Falls back to two standard tiles on non-AVX-512 tiers (callers only use
/// it when the wide tile is active, but the fallback keeps it total).
#[allow(clippy::too_many_arguments)]
#[inline]
fn wide_tile(
    kernel: Kernel,
    kc: usize,
    a: &[f32],
    b: &[f32],
    offsets: &[usize],
    j0: usize,
    mr: usize,
    acc: &mut [[f32; NR_WIDE]; MR],
) {
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx512 {
        // SAFETY: `Avx512` is only produced after runtime detection.
        unsafe {
            match mr {
                5 | 6 => x86::kernel_avx512_wide::<MR>(kc, a, b, offsets, j0, acc),
                3 | 4 => x86::kernel_avx512_wide::<4>(kc, a, b, offsets, j0, acc),
                _ => x86::kernel_avx512_wide::<2>(kc, a, b, offsets, j0, acc),
            }
        }
        return;
    }
    for half in 0..2 {
        let mut half_acc = [[0.0f32; NR]; MR];
        for (dst, src) in half_acc.iter_mut().zip(acc.iter()) {
            dst.copy_from_slice(&src[half * NR..(half + 1) * NR]);
        }
        tile(kernel, kc, a, b, offsets, j0 + half * NR, mr, &mut half_acc);
        for (src, dst) in half_acc.iter().zip(acc.iter_mut()) {
            dst[half * NR..(half + 1) * NR].copy_from_slice(src);
        }
    }
}

/// The portable register-tile kernel: `acc[..ROWS] += A_panel · B_rows`
/// over `kc` steps. Plain loops over fixed-size arrays with `f32::mul_add`,
/// a shape LLVM turns into FMA register tiles when the build enables a
/// wide FMA target (and into correct-but-slow `fmaf` calls otherwise — the
/// explicit SIMD tiers exist so the default build never pays that).
#[inline(always)]
fn kernel_portable<const ROWS: usize>(
    kc: usize,
    a: &[f32],
    b: &[f32],
    offsets: &[usize],
    j0: usize,
    acc: &mut [[f32; NR]; MR],
) {
    let mut local = [[0.0f32; NR]; ROWS];
    for (dst, src) in local.iter_mut().zip(acc.iter()) {
        *dst = *src;
    }
    for p in 0..kc {
        let a_step: &[f32; MR] = a[p * MR..p * MR + MR].try_into().expect("packed panel");
        let base = offsets[p] + j0;
        let b_step: &[f32; NR] = b[base..base + NR].try_into().expect("B strip");
        for j in 0..NR {
            let bv = b_step[j];
            for (i, row) in local.iter_mut().enumerate() {
                row[j] = a_step[i].mul_add(bv, row[j]);
            }
        }
    }
    for (src, dst) in local.iter().zip(acc.iter_mut()) {
        *dst = *src;
    }
}

/// Explicit `std::arch` kernels. Each function is gated on a
/// `#[target_feature]` set that callers must have runtime-detected (that is
/// the entire unsafety of calling them); inside, the only `unsafe`
/// operations are the raw-pointer vector loads and stores, each bounded by
/// a slice index just above it.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR, NR_WIDE};
    use core::arch::x86_64::*;

    /// Validation of the kernel operand contract: `a` holds `kc` packed
    /// `MR`-groups and every B row fits `width` columns from its offset.
    /// Debug builds check via `debug_assert!`; `checked-kernels` audit
    /// builds check in every profile; plain release builds rely on the
    /// (checked) callers.
    #[inline(always)]
    fn debug_check_operands(
        kc: usize,
        a: &[f32],
        b: &[f32],
        offsets: &[usize],
        j0: usize,
        width: usize,
    ) {
        debug_assert!(a.len() >= kc * MR, "A panel too short");
        debug_assert!(offsets.len() >= kc, "offset table too short");
        debug_assert!(
            offsets[..kc].iter().all(|&o| o + j0 + width <= b.len()),
            "B row out of bounds"
        );
        if tahoma_mathx::checked::active() {
            tahoma_mathx::checked::span(a.len(), 0, kc * MR, "gemm kernel A panel");
            tahoma_mathx::checked::span(offsets.len(), 0, kc, "gemm kernel offset table");
            tahoma_mathx::checked::aligned(b.as_ptr(), "gemm kernel B base");
            for &o in &offsets[..kc] {
                tahoma_mathx::checked::span(b.len(), o + j0, width, "gemm kernel B row");
            }
        }
    }

    /// AVX2+FMA tile: `ROWS x NR` in two 16-column halves, each half
    /// holding `ROWS x 2` ymm accumulators (12 of the 16 vector registers
    /// at `ROWS = 6`, leaving room for the two B loads and the A
    /// broadcast). Per output element the k-loop is the same fused
    /// multiply-add chain as the portable kernel, so results are bitwise
    /// identical. Operand addressing is raw-pointer (bounds validated on
    /// entry) — per-step slice checks cost ~25% at small `kc`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) fn kernel_avx2<const ROWS: usize>(
        kc: usize,
        a: &[f32],
        b: &[f32],
        offsets: &[usize],
        j0: usize,
        acc: &mut [[f32; NR]; MR],
    ) {
        debug_check_operands(kc, a, b, offsets, j0, NR);
        let (a_ptr, b_ptr, off_ptr) = (a.as_ptr(), b.as_ptr(), offsets.as_ptr());
        for half in 0..2 {
            let h0 = half * 16;
            let mut accv = [[_mm256_setzero_ps(); 2]; ROWS];
            for (v, row) in accv.iter_mut().zip(acc.iter()) {
                // SAFETY: each row holds NR = 32 floats, h0 + 16 <= 32.
                v[0] = unsafe { _mm256_loadu_ps(row[h0..].as_ptr()) };
                v[1] = unsafe { _mm256_loadu_ps(row[h0 + 8..].as_ptr()) };
            }
            for p in 0..kc {
                // SAFETY: p < kc <= offsets.len(); offsets[p] + j0 + NR
                // <= b.len() and kc * MR <= a.len(), both validated on
                // entry (debug) and guaranteed by the packing callers.
                unsafe {
                    let base = *off_ptr.add(p) + j0 + h0;
                    let b0 = _mm256_loadu_ps(b_ptr.add(base));
                    let b1 = _mm256_loadu_ps(b_ptr.add(base + 8));
                    let ap = a_ptr.add(p * MR);
                    for (i, v) in accv.iter_mut().enumerate() {
                        let av = _mm256_set1_ps(*ap.add(i));
                        v[0] = _mm256_fmadd_ps(av, b0, v[0]);
                        v[1] = _mm256_fmadd_ps(av, b1, v[1]);
                    }
                }
            }
            for (v, row) in accv.iter().zip(acc.iter_mut()) {
                // SAFETY: as the load above.
                unsafe { _mm256_storeu_ps(row[h0..].as_mut_ptr(), v[0]) };
                unsafe { _mm256_storeu_ps(row[h0 + 8..].as_mut_ptr(), v[1]) };
            }
        }
    }

    /// AVX-512 tile: `ROWS x NR` as `ROWS x 2` zmm accumulators (12 of the
    /// 32 vector registers at `ROWS = 6`). Same fused chain per element as
    /// the portable kernel — bitwise identical results.
    #[target_feature(enable = "avx512f")]
    pub(super) fn kernel_avx512<const ROWS: usize>(
        kc: usize,
        a: &[f32],
        b: &[f32],
        offsets: &[usize],
        j0: usize,
        acc: &mut [[f32; NR]; MR],
    ) {
        debug_check_operands(kc, a, b, offsets, j0, NR);
        let (a_ptr, b_ptr, off_ptr) = (a.as_ptr(), b.as_ptr(), offsets.as_ptr());
        let mut accv = [[_mm512_setzero_ps(); 2]; ROWS];
        for (v, row) in accv.iter_mut().zip(acc.iter()) {
            // SAFETY: each row holds NR = 32 consecutive floats.
            v[0] = unsafe { _mm512_loadu_ps(row.as_ptr()) };
            v[1] = unsafe { _mm512_loadu_ps(row[16..].as_ptr()) };
        }
        for p in 0..kc {
            // SAFETY: p < kc <= offsets.len(); offsets[p] + j0 + NR <=
            // b.len() and kc * MR <= a.len(), validated on entry (debug)
            // and guaranteed by the packing callers.
            unsafe {
                let base = *off_ptr.add(p) + j0;
                let b0 = _mm512_loadu_ps(b_ptr.add(base));
                let b1 = _mm512_loadu_ps(b_ptr.add(base + 16));
                let ap = a_ptr.add(p * MR);
                for (i, v) in accv.iter_mut().enumerate() {
                    let av = _mm512_set1_ps(*ap.add(i));
                    v[0] = _mm512_fmadd_ps(av, b0, v[0]);
                    v[1] = _mm512_fmadd_ps(av, b1, v[1]);
                }
            }
        }
        for (v, row) in accv.iter().zip(acc.iter_mut()) {
            // SAFETY: each row holds NR = 32 consecutive floats.
            unsafe { _mm512_storeu_ps(row.as_mut_ptr(), v[0]) };
            unsafe { _mm512_storeu_ps(row[16..].as_mut_ptr(), v[1]) };
        }
    }

    /// AVX-512 wide tile for short accumulation depths: `ROWS x NR_WIDE`
    /// as `ROWS x 4` zmm accumulators (24 of 32 registers at `ROWS = 6`).
    /// Twice the work per loop trip and per epilogue amortizes the fixed
    /// costs that dominate when `kc` is small. Same per-element chain —
    /// bitwise identical to running two standard tiles.
    #[target_feature(enable = "avx512f")]
    pub(super) fn kernel_avx512_wide<const ROWS: usize>(
        kc: usize,
        a: &[f32],
        b: &[f32],
        offsets: &[usize],
        j0: usize,
        acc: &mut [[f32; NR_WIDE]; MR],
    ) {
        debug_check_operands(kc, a, b, offsets, j0, NR_WIDE);
        let (a_ptr, b_ptr, off_ptr) = (a.as_ptr(), b.as_ptr(), offsets.as_ptr());
        let mut accv = [[_mm512_setzero_ps(); 4]; ROWS];
        for (v, row) in accv.iter_mut().zip(acc.iter()) {
            for (q, lane) in v.iter_mut().enumerate() {
                // SAFETY: each row holds NR_WIDE = 64 consecutive floats.
                *lane = unsafe { _mm512_loadu_ps(row[q * 16..].as_ptr()) };
            }
        }
        for p in 0..kc {
            // SAFETY: p < kc <= offsets.len(); offsets[p] + j0 + NR_WIDE
            // <= b.len() and kc * MR <= a.len(), validated on entry
            // (debug) and guaranteed by the conv caller.
            unsafe {
                let base = *off_ptr.add(p) + j0;
                let bv = [
                    _mm512_loadu_ps(b_ptr.add(base)),
                    _mm512_loadu_ps(b_ptr.add(base + 16)),
                    _mm512_loadu_ps(b_ptr.add(base + 32)),
                    _mm512_loadu_ps(b_ptr.add(base + 48)),
                ];
                let ap = a_ptr.add(p * MR);
                for (i, v) in accv.iter_mut().enumerate() {
                    let av = _mm512_set1_ps(*ap.add(i));
                    for (lane, &bq) in v.iter_mut().zip(bv.iter()) {
                        *lane = _mm512_fmadd_ps(av, bq, *lane);
                    }
                }
            }
        }
        for (v, row) in accv.iter().zip(acc.iter_mut()) {
            for (q, lane) in v.iter().enumerate() {
                // SAFETY: each row holds NR_WIDE = 64 consecutive floats.
                unsafe { _mm512_storeu_ps(row[q * 16..].as_mut_ptr(), *lane) };
            }
        }
    }
}

/// Pack `mc x kc` of A (rows `ic..`, k-range `pc..`) into `MR`-row panels,
/// zero-padding the ragged final panel.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    dst: &mut [f32],
    a: &[f32],
    ta: Trans,
    m: usize,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let panels = mc.div_ceil(MR);
    for ip in 0..panels {
        let rows = MR.min(mc - ip * MR);
        let base = ip * MR * kc;
        for p in 0..kc {
            let out = &mut dst[base + p * MR..base + p * MR + MR];
            for (r, slot) in out.iter_mut().enumerate() {
                *slot = if r < rows {
                    let row = ic + ip * MR + r;
                    match ta {
                        Trans::N => a[row * k + pc + p],
                        Trans::T => a[(pc + p) * m + row],
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// Pack `kc x nc` of B (k-range `pc..`, cols `jc..`) into `NR`-column
/// panels, zero-padding the ragged final panel.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    dst: &mut [f32],
    b: &[f32],
    tb: Trans,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    for jp in 0..panels {
        let cols = NR.min(nc - jp * NR);
        let base = jp * NR * kc;
        for p in 0..kc {
            let out = &mut dst[base + p * NR..base + p * NR + NR];
            match tb {
                Trans::N => {
                    let src_base = (pc + p) * n + jc + jp * NR;
                    out[..cols].copy_from_slice(&b[src_base..src_base + cols]);
                    out[cols..].fill(0.0);
                }
                Trans::T => {
                    for (col, slot) in out.iter_mut().enumerate() {
                        *slot = if col < cols {
                            b[(jc + jp * NR + col) * k + pc + p]
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }
}

/// Lower one channel-planar image to the im2col patch matrix for a `kk x kk`
/// "same"-padded, stride-1 convolution.
///
/// `col` is resized to `(c_in * kk * kk) x (h * w)` row-major: row
/// `(i * kk + ky) * kk + kx` holds, for every output pixel `(y, x)` in
/// row-major order, the input value at channel `i`, position
/// `(y + ky - pad, x + kx - pad)`, or zero where that falls outside the
/// image. The weight matrix `[out_c][c_in * kk * kk]` multiplies it directly.
pub fn im2col(input: &[f32], c_in: usize, h: usize, w: usize, kk: usize, col: &mut Vec<f32>) {
    debug_assert_eq!(input.len(), c_in * h * w);
    let pad = kk / 2;
    let hw = h * w;
    col.clear();
    col.resize(c_in * kk * kk * hw, 0.0);
    for i in 0..c_in {
        let plane = &input[i * hw..(i + 1) * hw];
        for ky in 0..kk {
            for kx in 0..kk {
                let row_idx = (i * kk + ky) * kk + kx;
                let row = &mut col[row_idx * hw..(row_idx + 1) * hw];
                let y_lo = pad.saturating_sub(ky);
                let y_hi = (h + pad).saturating_sub(ky).min(h);
                // Left/right zero-column widths for this kx.
                let lz = pad.saturating_sub(kx);
                let rz = (kx + w).saturating_sub(w + pad).min(w);
                row[..y_lo * w].fill(0.0);
                row[y_hi * w..].fill(0.0);
                if y_hi <= y_lo || lz + rz >= w {
                    row[y_lo * w..y_hi * w].fill(0.0);
                    continue;
                }
                // One bulk copy covers every interior column of every valid
                // output row at once (the patch is the image shifted by
                // (ky-pad, kx-pad)); the wrapped-around values this smears
                // into the lz/rz edge columns are zeroed right after.
                let d0 = y_lo * w + lz;
                let d1 = y_hi * w - rz;
                let shift = (ky * w + kx) as isize - (pad * w + pad) as isize;
                let s0 = (d0 as isize + shift) as usize;
                row[d0..d1].copy_from_slice(&plane[s0..s0 + (d1 - d0)]);
                if lz + rz > 0 {
                    for y in y_lo..y_hi {
                        row[y * w..y * w + lz].fill(0.0);
                        row[(y + 1) * w - rz..(y + 1) * w].fill(0.0);
                    }
                }
            }
        }
    }
}

/// Inverse of [`im2col`] for gradients: scatter-add a patch-matrix gradient
/// back onto the (channel-planar) input gradient.
pub fn col2im_add(col: &[f32], c_in: usize, h: usize, w: usize, kk: usize, grad_in: &mut [f32]) {
    debug_assert_eq!(grad_in.len(), c_in * h * w);
    let pad = kk / 2;
    let hw = h * w;
    debug_assert_eq!(col.len(), c_in * kk * kk * hw);
    for i in 0..c_in {
        let plane = &mut grad_in[i * hw..(i + 1) * hw];
        for ky in 0..kk {
            for kx in 0..kk {
                let row_idx = (i * kk + ky) * kk + kx;
                let row = &col[row_idx * hw..(row_idx + 1) * hw];
                let y_lo = pad.saturating_sub(ky);
                let y_hi = (h + pad).saturating_sub(ky).min(h);
                let x_lo = pad.saturating_sub(kx);
                let x_hi = (w + pad).saturating_sub(kx).min(w);
                if x_hi <= x_lo {
                    continue;
                }
                for y in y_lo..y_hi {
                    let sy = y + ky - pad;
                    let src = &row[y * w + x_lo..y * w + x_hi];
                    let dst = &mut plane[sy * w + x_lo + kx - pad..sy * w + x_hi + kx - pad];
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoma_mathx::DetRng;

    fn reference_gemm(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        ta: Trans,
        b: &[f32],
        tb: Trans,
    ) -> Vec<f32> {
        let at = |i: usize, p: usize| match ta {
            Trans::N => a[i * k + p],
            Trans::T => a[p * m + i],
        };
        let bt = |p: usize, j: usize| match tb {
            Trans::N => b[p * n + j],
            Trans::T => b[j * k + p],
        };
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += at(i, p) as f64 * bt(p, j) as f64;
                }
                c[i * n + j] = acc as f32;
            }
        }
        c
    }

    fn random_vec(rng: &mut DetRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.uniform_in(-1.0, 1.0) as f32).collect()
    }

    fn check_all_variants(m: usize, n: usize, k: usize, seed: u64) {
        let mut rng = DetRng::new(seed);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, k * n);
        let mut scratch = GemmScratch::default();
        for (ta, tb) in [
            (Trans::N, Trans::N),
            (Trans::N, Trans::T),
            (Trans::T, Trans::N),
            (Trans::T, Trans::T),
        ] {
            let expect = reference_gemm(m, n, k, &a, ta, &b, tb);
            let mut c = vec![0.0f32; m * n];
            gemm(&mut scratch, m, n, k, &a, ta, &b, tb, &mut c);
            for (i, (&got, &want)) in c.iter().zip(&expect).enumerate() {
                let tol = 1e-5 * (1.0 + want.abs()) * (k as f32).sqrt();
                assert!(
                    (got - want).abs() <= tol,
                    "({m}x{n}x{k}) {ta:?}{tb:?} idx {i}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_on_small_shapes() {
        for (m, n, k) in [
            (1, 1, 1),
            (1, 7, 5),
            (3, 2, 9),
            (8, 32, 16),
            (9, 33, 17),
            (5, 100, 3),
        ] {
            check_all_variants(m, n, k, (m * 1000 + n * 10 + k) as u64);
        }
    }

    #[test]
    fn matches_reference_across_block_boundaries() {
        // Exercise the MC/KC/NC edges and ragged final panels.
        for (m, n, k) in [
            (MR + 1, NR + 1, 2),
            (MC + 3, NC / 8 + 5, KC + 9),
            (2 * MC, 40, 2 * KC + 1),
            (17, NC + NR + 3, 31),
        ] {
            check_all_variants(m, n, k, (m + n + k) as u64);
        }
    }

    #[test]
    fn kernel_tiers_are_bitwise_identical() {
        // Every runtime-dispatchable tier executes the same per-element
        // fused chain, so outputs must match to the bit — not just to a
        // tolerance. Shapes cover full tiles, ragged rows, and ragged
        // columns of both the direct and packed paths.
        let mut rng = DetRng::new(0x51D);
        for (m, n, k, ta, tb) in [
            (MR, NR, 8, Trans::N, Trans::N),
            (16, 97, 27, Trans::N, Trans::N),
            (7, NR + 5, 300, Trans::N, Trans::N),
            (13, 41, 19, Trans::T, Trans::N),
            (9, 70, 23, Trans::N, Trans::T),
        ] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let mut want: Option<Vec<f32>> = None;
            for kernel in Kernel::available() {
                let mut scratch = GemmScratch::with_kernel(kernel);
                let mut c = vec![0.0f32; m * n];
                gemm(&mut scratch, m, n, k, &a, ta, &b, tb, &mut c);
                match &want {
                    None => want = Some(c),
                    Some(w) => assert_eq!(
                        w,
                        &c,
                        "({m}x{n}x{k}) {ta:?}{tb:?}: kernel {} diverges",
                        kernel.name()
                    ),
                }
            }
        }
    }

    #[test]
    fn threaded_split_is_bitwise_identical() {
        // Column-splitting changes which thread computes a column, never
        // the accumulation order inside one — forced thread counts must
        // reproduce the serial result exactly, on every tier.
        let mut rng = DetRng::new(0x7B);
        for (m, n, k, ta) in [
            (16, 4 * NR + 7, 64, Trans::N),
            (5, 3 * NR, 9, Trans::N),
            (11, 2 * NR + 1, 40, Trans::T),
        ] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            for kernel in Kernel::available() {
                let mut serial = GemmScratch::with_kernel(kernel);
                serial.threads = Some(1);
                let mut c1 = vec![0.0f32; m * n];
                gemm(&mut serial, m, n, k, &a, ta, &b, Trans::N, &mut c1);
                for t in [2usize, 3, 7] {
                    let mut par = GemmScratch::with_kernel(kernel);
                    par.threads = Some(t);
                    let mut ct = vec![0.0f32; m * n];
                    gemm(&mut par, m, n, k, &a, ta, &b, Trans::N, &mut ct);
                    assert_eq!(
                        c1,
                        ct,
                        "({m}x{n}x{k}) {ta:?}N kernel {} threads {t} diverges",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn forced_unsupported_kernel_degrades_to_detection() {
        // Forcing a tier this CPU lacks must not crash — `resolve` demotes
        // it. (On a machine that has every tier this still exercises the
        // pass-through arm.)
        let mut scratch = GemmScratch::with_kernel(Kernel::Avx512);
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [5.0f32, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        gemm(&mut scratch, 2, 2, 2, &a, Trans::N, &b, Trans::N, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn bias_fused_matches_fill_then_accumulate() {
        let mut rng = DetRng::new(31);
        for (m, n, k) in [(1, 9, 4), (7, 65, 27), (16, 900, 144), (13, 37, 5)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let bias = random_vec(&mut rng, m);
            let mut scratch = GemmScratch::default();
            let mut want = vec![0.0f32; m * n];
            for (row, &b0) in want.chunks_exact_mut(n).zip(&bias) {
                row.fill(b0);
            }
            gemm_nn(&mut scratch, m, n, k, &a, &b, &mut want);
            let mut got = vec![f32::NAN; m * n];
            gemm_nn_bias(&mut scratch, m, n, k, &a, &b, &bias, &mut got);
            for (i, (&g, &w0)) in got.iter().zip(&want).enumerate() {
                assert!((g - w0).abs() < 1e-5, "({m}x{n}x{k}) idx {i}: {g} vs {w0}");
            }
        }
    }

    #[test]
    fn accumulates_into_c() {
        let mut scratch = GemmScratch::default();
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut c = [10.0f32];
        gemm_nn(&mut scratch, 1, 1, 2, &a, &b, &mut c);
        assert_eq!(c[0], 10.0 + 3.0 + 8.0);
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut scratch = GemmScratch::default();
        let mut c = [5.0f32];
        gemm_nn(&mut scratch, 1, 1, 0, &[], &[], &mut c);
        assert_eq!(c[0], 5.0);
        gemm_nn(&mut scratch, 0, 0, 4, &[], &[], &mut []);
    }

    #[test]
    fn column_chunks_cover_and_align() {
        for (n, t) in [(1, 4), (NR, 2), (5 * NR + 3, 3), (100 * NR, 7)] {
            let chunks = column_chunks(n, t);
            assert!(chunks.len() <= t);
            assert_eq!(chunks.first().unwrap().0, 0);
            assert_eq!(chunks.last().unwrap().1, n);
            for w in chunks.windows(2) {
                assert_eq!(w[0].1, w[1].0, "gap between chunks");
                assert_eq!(w[0].1 % NR, 0, "boundary not NR-aligned");
            }
        }
    }

    #[test]
    fn im2col_matches_definition() {
        // 1 channel, 3x3 image, 3x3 kernel: center row of the patch matrix
        // reproduces the image; corner rows show the zero padding.
        let img: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let mut col = Vec::new();
        im2col(&img, 1, 3, 3, 3, &mut col);
        let hw = 9;
        // row (ky=1, kx=1) == identity.
        assert_eq!(&col[4 * hw..5 * hw], &img[..]);
        // row (ky=0, kx=0): pixel up-left; first row and column are padding.
        assert_eq!(&col[0..hw], &[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 4.0, 5.0]);
        // row (ky=2, kx=2): pixel down-right; last row/column are padding.
        assert_eq!(
            &col[8 * hw..9 * hw],
            &[5.0, 6.0, 0.0, 8.0, 9.0, 0.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn conv2d_forward_matches_materialized_im2col() {
        for (c_in, h, w, kk, out_c, seed) in [
            (1, 5, 5, 3, 4, 1u64),
            (3, 8, 6, 3, 16, 2),
            (2, 7, 33, 5, 7, 3),
            (4, 40, 40, 3, 13, 4),
            (1, 3, 2, 5, 3, 5), // kernel larger than the image
            (2, 6, 6, 1, 5, 6), // 1x1 kernel, no padding at all
            (16, 30, 30, 3, 16, 7),
            (1, 30, 30, 3, 16, 8), // small k: wide-tile path on AVX-512
            (3, 20, 40, 3, 11, 9), // small k, ragged rows
        ] {
            let mut rng = DetRng::new(seed);
            let input = random_vec(&mut rng, c_in * h * w);
            let k_total = c_in * kk * kk;
            let weights = random_vec(&mut rng, out_c * k_total);
            let bias = random_vec(&mut rng, out_c);
            let hw = h * w;
            let mut scratch = GemmScratch::default();

            let mut col = Vec::new();
            im2col(&input, c_in, h, w, kk, &mut col);
            let mut want = vec![0.0f32; out_c * hw];
            gemm_nn_bias(
                &mut scratch,
                out_c,
                hw,
                k_total,
                &weights,
                &col,
                &bias,
                &mut want,
            );

            for kernel in Kernel::available() {
                let mut scratch = GemmScratch::with_kernel(kernel);
                let mut got = vec![f32::NAN; out_c * hw];
                conv2d_forward(
                    &mut scratch,
                    &input,
                    c_in,
                    h,
                    w,
                    kk,
                    &weights,
                    &bias,
                    out_c,
                    &mut got,
                );
                for (i, (&g, &w0)) in got.iter().zip(&want).enumerate() {
                    let tol = 1e-5 * (1.0 + w0.abs()) * (k_total as f32).sqrt();
                    assert!(
                        (g - w0).abs() <= tol,
                        "kernel {} shape c{c_in} {h}x{w} k{kk} out{out_c} idx {i}: {g} vs {w0}",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn conv2d_forward_threaded_is_bitwise_identical() {
        let (c_in, h, w, kk, out_c) = (3, 40, 40, 3, 16);
        let mut rng = DetRng::new(77);
        let input = random_vec(&mut rng, c_in * h * w);
        let weights = random_vec(&mut rng, out_c * c_in * kk * kk);
        let bias = random_vec(&mut rng, out_c);
        for kernel in Kernel::available() {
            let mut serial = GemmScratch::with_kernel(kernel);
            serial.threads = Some(1);
            let mut base = vec![0.0f32; out_c * h * w];
            conv2d_forward(
                &mut serial,
                &input,
                c_in,
                h,
                w,
                kk,
                &weights,
                &bias,
                out_c,
                &mut base,
            );
            for t in [2usize, 5] {
                let mut par = GemmScratch::with_kernel(kernel);
                par.threads = Some(t);
                let mut got = vec![0.0f32; out_c * h * w];
                conv2d_forward(
                    &mut par, &input, c_in, h, w, kk, &weights, &bias, out_c, &mut got,
                );
                assert_eq!(base, got, "kernel {} threads {t} diverges", kernel.name());
            }
        }
    }

    #[test]
    fn col2im_add_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im_add(y)> — the defining property of
        // the adjoint scatter used by the conv backward pass.
        let (c_in, h, w, kk) = (2, 4, 5, 3);
        let mut rng = DetRng::new(9);
        let x = random_vec(&mut rng, c_in * h * w);
        let y = random_vec(&mut rng, c_in * kk * kk * h * w);
        let mut col = Vec::new();
        im2col(&x, c_in, h, w, kk, &mut col);
        let forward: f64 = col.iter().zip(&y).map(|(&a, &b)| a as f64 * b as f64).sum();
        let mut back = vec![0.0f32; c_in * h * w];
        col2im_add(&y, c_in, h, w, kk, &mut back);
        let adjoint: f64 = x
            .iter()
            .zip(&back)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!(
            (forward - adjoint).abs() < 1e-3 * forward.abs().max(1.0),
            "forward {forward} adjoint {adjoint}"
        );
    }
}

//! Shape bookkeeping for planar `(channels, height, width)` buffers.
//!
//! Feature maps are plain `Vec<f32>` in channel-planar order — the same
//! layout `tahoma_imagery::Image` uses, so an image's buffer feeds a network
//! without any shuffling. `Shape` carries the interpretation.

use std::fmt;

/// Dimensions of a feature map: channels x height x width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Channel count.
    pub c: usize,
    /// Height in rows.
    pub h: usize,
    /// Width in columns.
    pub w: usize,
}

impl Shape {
    /// Construct a shape.
    pub const fn new(c: usize, h: usize, w: usize) -> Shape {
        Shape { c, h, w }
    }

    /// A flat vector of `n` values (c = n, h = w = 1).
    pub const fn flat(n: usize) -> Shape {
        Shape { c: n, h: 1, w: 1 }
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// True when any dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(c, y, x)`.
    #[inline]
    pub fn idx(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        (c * self.h + y) * self.w + x
    }

    /// Shape after a 2x2/stride-2 max pool (floor semantics, as in Keras'
    /// default `MaxPooling2D`).
    pub fn pooled2(&self) -> Shape {
        Shape::new(self.c, self.h / 2, self.w / 2)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_idx() {
        let s = Shape::new(3, 4, 5);
        assert_eq!(s.len(), 60);
        assert_eq!(s.idx(0, 0, 0), 0);
        assert_eq!(s.idx(2, 3, 4), 59);
        assert_eq!(s.idx(1, 0, 0), 20);
    }

    #[test]
    fn flat_shape() {
        let s = Shape::flat(7);
        assert_eq!(s.len(), 7);
        assert_eq!(s.idx(6, 0, 0), 6);
    }

    #[test]
    fn pooled_floors() {
        assert_eq!(Shape::new(8, 7, 7).pooled2(), Shape::new(8, 3, 3));
        assert_eq!(Shape::new(8, 30, 30).pooled2(), Shape::new(8, 15, 15));
        assert_eq!(Shape::new(8, 1, 1).pooled2(), Shape::new(8, 0, 0));
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(3, 224, 224).to_string(), "3x224x224");
    }
}

//! From-scratch convolutional neural network substrate.
//!
//! The paper trains its specialized classifiers with Keras/TensorFlow on a
//! GPU; this crate replaces that dependency with a self-contained CPU
//! implementation of exactly the architecture family in the paper's Fig. 3:
//! stacks of `conv(3x3, same) -> ReLU -> maxpool(2x2)`, a fully connected
//! ReLU layer, and a single sigmoid output for binary classification.
//!
//! # Inference engine: batched im2col + GEMM
//!
//! Raw inference throughput is the system's foundational currency — the
//! paper's cascades only pay off because cheap models classify frames orders
//! of magnitude faster than the reference CNN — so the hot path is built
//! around dense matrix multiplication rather than nested convolution loops:
//!
//! * [`gemm`] implements a blocked, cache-tiled f32 GEMM whose register-tile
//!   micro-kernel is selected at runtime (`is_x86_feature_detected!`) from
//!   explicit AVX-512 / AVX2+FMA `std::arch` kernels plus a portable
//!   `mul_add` fallback — all bitwise-identical — so a plain portable build
//!   runs at hardware peak with no `-C target-cpu` flags; large products and
//!   image batches additionally thread across `std::thread::scope` workers;
//! * [`gemm::im2col`] lowers each image to a patch matrix, turning a
//!   convolution into one GEMM against the filter matrix, and
//!   [`gemm::col2im_add`] scatters gradients back for the batched backward
//!   pass;
//! * every [`layer::Layer`] implements `forward_batch`/`backward_batch`, and
//!   [`model::Sequential::forward_batch`] / `predict_proba_batch` carry whole
//!   minibatches through the stack in reused ping-pong buffers — no
//!   per-image allocation anywhere on the path. The per-image API
//!   (`forward`, `predict_proba`) is a thin batch-of-1 wrapper, and the
//!   original scalar convolution survives as `Conv2d::forward_scalar`: the
//!   semantic reference the GEMM path is property-tested against and the
//!   baseline the `nn_inference` bench measures speedups over.
//!
//! ## Layout contract
//!
//! All activations are **channel-planar, batch-major** `Vec<f32>`s: a batch
//! buffer holds `batch` images back to back, each image its channels back to
//! back as `h x w` row-major planes (`[image][channel][y][x]`). This is the
//! same layout `tahoma_imagery::Image` uses, so image buffers feed networks
//! without any shuffling; [`tensor::Shape`] carries the interpretation.
//! Weight layouts: `Conv2d` stores `[out_c][in_c][k][k]` (so the filter
//! matrix is `out_c x (in_c*k*k)`, multiplying im2col output directly) and
//! `Dense` stores `[n_out][n_in]`.
//!
//! # Modules
//!
//! * [`tensor::Shape`] — `(channels, height, width)` bookkeeping;
//! * [`gemm`] — blocked GEMM, im2col/col2im lowering;
//! * [`kernels`] — explicit SIMD sweeps for the non-GEMM layers (batch-1
//!   dense matvec, ReLU, max-pool), dispatched per op class through the
//!   measured kernel policy;
//! * [`layer`] — forward/backward implementations of every layer, each with
//!   exact FLOP accounting (the cost model prices inference from these);
//! * [`model::Sequential`] and [`model::CnnSpec`] — composition and the
//!   paper's architecture constructor;
//! * [`train::Trainer`] — minibatch SGD/Adam training (forward and backward
//!   both run the batched GEMM path) with binary cross-entropy on logits;
//! * [`serialize`] — a compact self-contained weight format.
//!
//! The zoo crate uses this for the *real* training path (scaled-down
//! experiments, examples, and tests); the paper-scale experiments use the
//! calibrated surrogate family instead (see DESIGN.md §2.4).

// The explicit `std::arch` kernels in `gemm` and `kernels` are the only
// unsafe code in this crate; keep every unsafe operation inside them
// individually justified.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod gemm;
pub mod init;
pub mod kernels;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;
pub mod serialize;
pub mod tensor;
pub mod train;

pub use gemm::GemmScratch;
pub use layer::{Conv2d, Dense, InferScratch, Layer, MaxPool2, Relu};
pub use loss::{bce_with_logits, bce_with_logits_grad};
pub use model::{CnnSpec, Sequential};
pub use optim::{Adam, Optimizer, Sgd};
pub use tensor::Shape;
pub use train::{TrainReport, Trainer};

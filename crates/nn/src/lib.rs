//! From-scratch convolutional neural network substrate.
//!
//! The paper trains its specialized classifiers with Keras/TensorFlow on a
//! GPU; this crate replaces that dependency with a self-contained CPU
//! implementation of exactly the architecture family in the paper's Fig. 3:
//! stacks of `conv(3x3, same) -> ReLU -> maxpool(2x2)`, a fully connected
//! ReLU layer, and a single sigmoid output for binary classification.
//!
//! It provides:
//! * [`tensor::Shape`] — `(channels, height, width)` bookkeeping;
//! * [`layer`] — forward/backward implementations of every layer, each with
//!   exact FLOP accounting (the cost model prices inference from these);
//! * [`model::Sequential`] and [`model::CnnSpec`] — composition and the
//!   paper's architecture constructor;
//! * [`train::Trainer`] — minibatch SGD/Adam training with binary
//!   cross-entropy on logits;
//! * [`serialize`] — a compact self-contained weight format.
//!
//! The zoo crate uses this for the *real* training path (scaled-down
//! experiments, examples, and tests); the paper-scale experiments use the
//! calibrated surrogate family instead (see DESIGN.md §2.4).

pub mod init;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;
pub mod serialize;
pub mod tensor;
pub mod train;

pub use layer::{Conv2d, Dense, Layer, MaxPool2, Relu};
pub use loss::{bce_with_logits, bce_with_logits_grad};
pub use model::{CnnSpec, Sequential};
pub use optim::{Adam, Optimizer, Sgd};
pub use tensor::Shape;
pub use train::{TrainReport, Trainer};

//! Binary cross-entropy on logits — the training objective for the paper's
//! sigmoid-output binary classifiers, in the numerically stable "with
//! logits" formulation.

use tahoma_mathx::logistic;

/// BCE loss for a single logit `z` against target `y` in {0, 1}:
/// `max(z, 0) - z*y + ln(1 + exp(-|z|))`.
pub fn bce_with_logits(z: f32, y: bool) -> f32 {
    let z = z as f64;
    let t = if y { 1.0 } else { 0.0 };
    (z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln()) as f32
}

/// Gradient of [`bce_with_logits`] with respect to the logit:
/// `sigmoid(z) - y`.
pub fn bce_with_logits_grad(z: f32, y: bool) -> f32 {
    (logistic(z as f64) - if y { 1.0 } else { 0.0 }) as f32
}

/// Mean squared error between predictions and targets.
pub fn mse(pred: &[f32], target: &[f32]) -> f32 {
    assert_eq!(pred.len(), target.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f32>()
        / pred.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_low_for_confident_correct() {
        assert!(bce_with_logits(8.0, true) < 0.01);
        assert!(bce_with_logits(-8.0, false) < 0.01);
    }

    #[test]
    fn loss_is_high_for_confident_wrong() {
        assert!(bce_with_logits(8.0, false) > 5.0);
        assert!(bce_with_logits(-8.0, true) > 5.0);
    }

    #[test]
    fn loss_at_zero_logit_is_ln2() {
        let ln2 = std::f32::consts::LN_2;
        assert!((bce_with_logits(0.0, true) - ln2).abs() < 1e-6);
        assert!((bce_with_logits(0.0, false) - ln2).abs() < 1e-6);
    }

    #[test]
    fn grad_matches_finite_difference() {
        for &z in &[-3.0f32, -0.5, 0.0, 0.5, 3.0] {
            for &y in &[true, false] {
                let eps = 1e-3;
                let numeric =
                    (bce_with_logits(z + eps, y) - bce_with_logits(z - eps, y)) / (2.0 * eps);
                let analytic = bce_with_logits_grad(z, y);
                assert!(
                    (numeric - analytic).abs() < 1e-3,
                    "z={z} y={y}: numeric {numeric}, analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn stable_for_extreme_logits() {
        assert!(bce_with_logits(500.0, false).is_finite());
        assert!(bce_with_logits(-500.0, true).is_finite());
        assert!(bce_with_logits_grad(500.0, true).abs() < 1e-6);
    }

    #[test]
    fn mse_basic() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse(&[], &[]), 0.0);
    }
}

//! Neural network layers with forward, backward and FLOP accounting.
//!
//! Layers are constructed against a fixed input [`Shape`] (the reproduction
//! only ever trains fixed-size inputs, matching the paper's per-model input
//! representations), cache what they need during `forward`, and accumulate
//! parameter gradients during `backward`. FLOP counts follow the paper's
//! convention of counting a multiply-accumulate as two operations (it quotes
//! YOLOv2 at "8.52 billion operations").
//!
//! Every layer carries two execution paths:
//!
//! * the **batched GEMM path** (`forward_batch`/`backward_batch`): inputs are
//!   batch-major, channel-planar (`[image][channel][y][x]`), carried through
//!   the whole stack in reused buffers with no per-image allocation. `Conv2d`
//!   forward runs [`crate::gemm::conv2d_forward`] (virtual im2col — the patch
//!   matrix is addressed, not materialized) per image and its backward uses
//!   the materialized [`crate::gemm::im2col`]; `Dense` multiplies the whole
//!   minibatch at once. The per-image `forward` is a batch-of-1 wrapper over
//!   this path.
//! * the **scalar reference path** (`Conv2d::forward_scalar`, plus the
//!   per-image `backward` implementations), kept verbatim from the original
//!   implementation. It defines the semantics the GEMM path must reproduce
//!   (property-tested in `tests/proptests.rs`) and serves as the baseline in
//!   the `nn_inference` bench.

use crate::gemm::{self, GemmScratch};
use crate::init::{he_normal, xavier_uniform};
use crate::kernels;
use crate::tensor::Shape;
use tahoma_mathx::DetRng;

/// Per-caller mutable state for the shared (`&self`) inference path.
///
/// A trained model's parameters are immutable at serving time, but every
/// layer's `forward_batch` also touches scratch (GEMM packing buffers,
/// im2col staging) owned by the layer — which is what forces `&mut self`
/// and, transitively, one model instance per thread. [`InferScratch`]
/// pulls all of that mutable state out: one lives per *query* (checked out
/// from a pool by the serving layer), so any number of threads can score
/// through a single `Sequential` concurrently via
/// [`crate::model::Sequential::predict_proba_shared`].
///
/// `force_gemm` pins `Dense` to the batched GEMM path even at batch 1.
/// The GEMM accumulates every output row in the same order regardless of
/// how many rows ride along (column-split threading and `MR`-row tiling
/// never reorder a row's k-loop), while the batch-1 matvec kernel uses a
/// different fold tree — so with `force_gemm` set, a row's score is
/// bitwise identical whether it is scored alone or merged into a larger
/// batch. Cross-query batch coalescing relies on exactly this invariance.
#[derive(Debug, Default)]
pub struct InferScratch {
    /// GEMM packing buffers + kernel/threading knobs for every layer.
    pub gemm: GemmScratch,
    /// Pin `Dense` to the batch-shape-invariant GEMM path (see above).
    pub force_gemm: bool,
    /// Ping-pong activation buffers for [`crate::model::Sequential`].
    pub(crate) buf_a: Vec<f32>,
    pub(crate) buf_b: Vec<f32>,
}

impl InferScratch {
    /// Scratch with the batch-shape-invariant dense path pinned on — what
    /// serving paths that merge packs across queries must use.
    pub fn coalescing() -> InferScratch {
        InferScratch {
            force_gemm: true,
            ..InferScratch::default()
        }
    }
}

/// A differentiable layer.
///
/// `Send + Sync` so whole models move across threads *and* serve from
/// behind a shared reference — the zoo trainer builds networks on worker
/// threads, and the query service scores through one `Sequential` from
/// many request threads at once (see [`Layer::infer_shared`]). Layers are
/// plain parameter/scratch buffers, so the bounds cost implementors
/// nothing.
pub trait Layer: Send + Sync {
    /// Human-readable layer kind.
    fn name(&self) -> &'static str;
    /// Downcasting hook used by the serializer.
    fn as_any(&self) -> &dyn std::any::Any;
    /// Output shape for this layer's fixed input shape.
    fn output_shape(&self) -> Shape;
    /// Run the layer forward, caching activations needed by `backward`.
    fn forward(&mut self, input: &[f32]) -> Vec<f32>;
    /// Propagate `grad_out` (dL/d output) to dL/d input, accumulating
    /// parameter gradients. Must be called after `forward`.
    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32>;
    /// Run a whole minibatch forward into `out` (resized by the callee).
    /// `input` holds `batch` images back to back in channel-planar order.
    /// With `cache` set, activations needed by [`Layer::backward_batch`] are
    /// recorded; inference paths pass `false` and skip that bookkeeping
    /// (backward after a cache-less forward is a contract violation).
    fn forward_batch(&mut self, input: &[f32], batch: usize, out: &mut Vec<f32>, cache: bool);
    /// Batched counterpart of [`Layer::backward`]: propagate a whole
    /// minibatch of output gradients into `grad_in`, accumulating parameter
    /// gradients over the batch. Must be called after `forward_batch` with
    /// the same `batch`.
    fn backward_batch(&mut self, grad_out: &[f32], batch: usize, grad_in: &mut Vec<f32>);
    /// Shared-reference inference forward: identical results to
    /// `forward_batch(input, batch, out, /*cache=*/false)`, but all
    /// mutable state lives in the caller's [`InferScratch`], so one layer
    /// instance serves any number of threads concurrently. Layer-owned
    /// scratch/threading knobs are ignored; the scratch's
    /// [`GemmScratch::kernel`]/`threads` apply instead.
    fn infer_shared(
        &self,
        input: &[f32],
        batch: usize,
        out: &mut Vec<f32>,
        scratch: &mut InferScratch,
    );
    /// Visit (parameters, gradients) slices for the optimizer.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));
    /// Cap the worker threads this layer's forward path may spawn: `None`
    /// sizes automatically from the work (the default), `Some(1)` pins the
    /// layer single-threaded (callers that parallelize an outer loop, e.g.
    /// one model per core, set this to avoid oversubscription). Layers
    /// without a threaded path ignore it.
    fn set_threads(&mut self, _threads: Option<usize>) {}
    /// Reset accumulated gradients to zero.
    fn zero_grads(&mut self);
    /// Number of trainable parameters.
    fn param_count(&self) -> usize;
    /// FLOPs for one forward pass.
    fn flops(&self) -> u64;
}

/// 2-D convolution, stride 1, "same" zero padding, odd square kernels.
#[derive(Debug, Clone)]
pub struct Conv2d {
    input: Shape,
    out_c: usize,
    k: usize,
    weights: Vec<f32>, // [out_c][in_c][k][k]
    bias: Vec<f32>,    // [out_c]
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    cache_input: Vec<f32>,
    scratch: GemmScratch,
    col: Vec<f32>,
    dcol: Vec<f32>,
}

impl Conv2d {
    /// Create a convolution layer with He-normal weights.
    ///
    /// Panics if `k` is even (same-padding needs odd kernels) or zero.
    pub fn new(input: Shape, out_c: usize, k: usize, rng: &mut DetRng) -> Conv2d {
        assert!(k % 2 == 1 && k > 0, "Conv2d requires odd kernel, got {k}");
        assert!(out_c > 0, "Conv2d requires out_c > 0");
        let fan_in = input.c * k * k;
        let n_w = out_c * input.c * k * k;
        Conv2d {
            input,
            out_c,
            k,
            weights: he_normal(rng, fan_in, n_w),
            bias: vec![0.0; out_c],
            grad_w: vec![0.0; n_w],
            grad_b: vec![0.0; out_c],
            cache_input: Vec::new(),
            scratch: GemmScratch::default(),
            col: Vec::new(),
            dcol: Vec::new(),
        }
    }

    /// Construct from explicit weights (used by deserialization).
    pub fn from_parts(
        input: Shape,
        out_c: usize,
        k: usize,
        weights: Vec<f32>,
        bias: Vec<f32>,
    ) -> Conv2d {
        assert_eq!(weights.len(), out_c * input.c * k * k);
        assert_eq!(bias.len(), out_c);
        let n_w = weights.len();
        Conv2d {
            input,
            out_c,
            k,
            weights,
            bias,
            grad_w: vec![0.0; n_w],
            grad_b: vec![0.0; out_c],
            cache_input: Vec::new(),
            scratch: GemmScratch::default(),
            col: Vec::new(),
            dcol: Vec::new(),
        }
    }

    /// Layer geometry accessors for serialization.
    pub fn geometry(&self) -> (Shape, usize, usize) {
        (self.input, self.out_c, self.k)
    }

    /// Borrow weights and bias for serialization.
    pub fn weights_bias(&self) -> (&[f32], &[f32]) {
        (&self.weights, &self.bias)
    }

    #[inline]
    fn w_idx(&self, o: usize, i: usize, ky: usize, kx: usize) -> usize {
        ((o * self.input.c + i) * self.k + ky) * self.k + kx
    }

    /// The original six-nested-loop convolution, kept as the semantic
    /// reference for the GEMM path and as the baseline in benches. Caches
    /// the input exactly like `forward`, so `backward` composes with it.
    pub fn forward_scalar(&mut self, input: &[f32]) -> Vec<f32> {
        let (c_in, h, w) = (self.input.c, self.input.h, self.input.w);
        debug_assert_eq!(input.len(), self.input.len());
        self.cache_input.clear();
        self.cache_input.extend_from_slice(input);
        let pad = self.k / 2;
        let mut out = vec![0.0f32; self.out_c * h * w];
        for o in 0..self.out_c {
            let out_plane = &mut out[o * h * w..(o + 1) * h * w];
            out_plane.fill(self.bias[o]);
            for i in 0..c_in {
                let in_plane = &input[i * h * w..(i + 1) * h * w];
                for ky in 0..self.k {
                    for kx in 0..self.k {
                        let wgt = self.weights[self.w_idx(o, i, ky, kx)];
                        if wgt == 0.0 {
                            continue;
                        }
                        // y + ky - pad must land in [0, h); saturate both
                        // ends so kernels larger than the image read only
                        // padding instead of underflowing the index math.
                        let y_lo = pad.saturating_sub(ky);
                        let y_hi = (h + pad).saturating_sub(ky).min(h);
                        let x_lo = pad.saturating_sub(kx);
                        let x_hi = (w + pad).saturating_sub(kx).min(w);
                        if x_hi <= x_lo {
                            continue;
                        }
                        for y in y_lo..y_hi {
                            let sy = y + ky - pad;
                            let src = &in_plane[sy * w + x_lo + kx - pad..sy * w + x_hi + kx - pad];
                            let dst = &mut out_plane[y * w + x_lo..y * w + x_hi];
                            for (d, s) in dst.iter_mut().zip(src) {
                                *d += wgt * s;
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

impl Layer for Conv2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn output_shape(&self) -> Shape {
        Shape::new(self.out_c, self.input.h, self.input.w)
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.forward_batch(input, 1, &mut out, true);
        out
    }

    fn forward_batch(&mut self, input: &[f32], batch: usize, out: &mut Vec<f32>, cache: bool) {
        let (c_in, h, w) = (self.input.c, self.input.h, self.input.w);
        let in_len = self.input.len();
        let out_len = self.out_c * h * w;
        debug_assert_eq!(input.len(), batch * in_len);
        if cache {
            self.cache_input.clear();
            self.cache_input.extend_from_slice(input);
        }
        out.resize(batch * out_len, 0.0);
        // Thread the batch loop across images when there is enough work:
        // each worker runs whole images through its own scratch (so packing
        // buffers never contend), and the per-image GEMM stays pinned
        // single-threaded inside workers. Results are bitwise identical to
        // the serial loop — images are independent.
        let threads = gemm::batch_threads(self.scratch.threads, self.flops(), batch);
        if threads <= 1 {
            for b in 0..batch {
                gemm::conv2d_forward(
                    &mut self.scratch,
                    &input[b * in_len..(b + 1) * in_len],
                    c_in,
                    h,
                    w,
                    self.k,
                    &self.weights,
                    &self.bias,
                    self.out_c,
                    &mut out[b * out_len..(b + 1) * out_len],
                );
            }
            return;
        }
        let Conv2d {
            scratch,
            weights,
            bias,
            k,
            out_c,
            ..
        } = self;
        let (kk, out_c) = (*k, *out_c);
        let per = batch.div_ceil(threads);
        let pool = scratch.worker_pool(batch.div_ceil(per));
        tahoma_mathx::pool::scope(|scope| {
            for ((in_chunk, out_chunk), worker) in input
                .chunks(per * in_len)
                .zip(out.chunks_mut(per * out_len))
                .zip(pool.iter_mut())
            {
                let (weights, bias) = (&*weights, &*bias);
                scope.spawn(move || {
                    for (img, o) in in_chunk.chunks(in_len).zip(out_chunk.chunks_mut(out_len)) {
                        gemm::conv2d_forward(worker, img, c_in, h, w, kk, weights, bias, out_c, o);
                    }
                });
            }
        });
    }

    fn infer_shared(
        &self,
        input: &[f32],
        batch: usize,
        out: &mut Vec<f32>,
        scratch: &mut InferScratch,
    ) {
        let (c_in, h, w) = (self.input.c, self.input.h, self.input.w);
        let in_len = self.input.len();
        let out_len = self.out_c * h * w;
        debug_assert_eq!(input.len(), batch * in_len);
        out.resize(batch * out_len, 0.0);
        // Images run serially through the caller's scratch: each image's
        // result depends only on its own pixels, so the output is bitwise
        // identical whatever batch it rides in.
        for b in 0..batch {
            gemm::conv2d_forward(
                &mut scratch.gemm,
                &input[b * in_len..(b + 1) * in_len],
                c_in,
                h,
                w,
                self.k,
                &self.weights,
                &self.bias,
                self.out_c,
                &mut out[b * out_len..(b + 1) * out_len],
            );
        }
    }

    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        let (c_in, h, w) = (self.input.c, self.input.h, self.input.w);
        debug_assert_eq!(grad_out.len(), self.out_c * h * w);
        debug_assert_eq!(self.cache_input.len(), self.input.len());
        let pad = self.k / 2;
        let mut grad_in = vec![0.0f32; self.input.len()];
        for o in 0..self.out_c {
            let g_plane = &grad_out[o * h * w..(o + 1) * h * w];
            self.grad_b[o] += g_plane.iter().sum::<f32>();
            for i in 0..c_in {
                let in_plane = &self.cache_input[i * h * w..(i + 1) * h * w];
                let gi_plane_base = i * h * w;
                for ky in 0..self.k {
                    for kx in 0..self.k {
                        let widx = self.w_idx(o, i, ky, kx);
                        let wgt = self.weights[widx];
                        let mut gw = 0.0f32;
                        let y_lo = pad.saturating_sub(ky);
                        let y_hi = (h + pad).saturating_sub(ky).min(h);
                        let x_lo = pad.saturating_sub(kx);
                        let x_hi = (w + pad).saturating_sub(kx).min(w);
                        if x_hi <= x_lo {
                            continue;
                        }
                        for y in y_lo..y_hi {
                            let sy = y + ky - pad;
                            let g_row = &g_plane[y * w + x_lo..y * w + x_hi];
                            let in_row =
                                &in_plane[sy * w + x_lo + kx - pad..sy * w + x_hi + kx - pad];
                            for (g, s) in g_row.iter().zip(in_row) {
                                gw += g * s;
                            }
                            let gi_row = &mut grad_in[gi_plane_base + sy * w + x_lo + kx - pad
                                ..gi_plane_base + sy * w + x_hi + kx - pad];
                            for (gi, g) in gi_row.iter_mut().zip(g_row) {
                                *gi += wgt * g;
                            }
                        }
                        self.grad_w[widx] += gw;
                    }
                }
            }
        }
        grad_in
    }

    fn backward_batch(&mut self, grad_out: &[f32], batch: usize, grad_in: &mut Vec<f32>) {
        let (c_in, h, w) = (self.input.c, self.input.h, self.input.w);
        let (in_len, hw) = (self.input.len(), h * w);
        let out_len = self.out_c * hw;
        let kk_total = c_in * self.k * self.k;
        debug_assert_eq!(grad_out.len(), batch * out_len);
        debug_assert_eq!(self.cache_input.len(), batch * in_len);
        grad_in.clear();
        grad_in.resize(batch * in_len, 0.0);
        for b in 0..batch {
            let g_img = &grad_out[b * out_len..(b + 1) * out_len];
            for (o, g_plane) in g_img.chunks_exact(hw).enumerate() {
                self.grad_b[o] += g_plane.iter().sum::<f32>();
            }
            // grad_W += G · colᵀ  (out_c x hw times hw x kk_total).
            gemm::im2col(
                &self.cache_input[b * in_len..(b + 1) * in_len],
                c_in,
                h,
                w,
                self.k,
                &mut self.col,
            );
            gemm::gemm_nt(
                &mut self.scratch,
                self.out_c,
                kk_total,
                hw,
                g_img,
                &self.col,
                &mut self.grad_w,
            );
            // grad_col = Wᵀ · G, then scatter back to image layout.
            self.dcol.clear();
            self.dcol.resize(kk_total * hw, 0.0);
            gemm::gemm_tn(
                &mut self.scratch,
                kk_total,
                hw,
                self.out_c,
                &self.weights,
                g_img,
                &mut self.dcol,
            );
            gemm::col2im_add(
                &self.dcol,
                c_in,
                h,
                w,
                self.k,
                &mut grad_in[b * in_len..(b + 1) * in_len],
            );
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.weights, &mut self.grad_w);
        f(&mut self.bias, &mut self.grad_b);
    }

    fn set_threads(&mut self, threads: Option<usize>) {
        self.scratch.threads = threads;
    }

    fn zero_grads(&mut self) {
        self.grad_w.fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn flops(&self) -> u64 {
        // MACs * 2; same padding keeps spatial dims.
        (self.out_c * self.input.c * self.k * self.k * self.input.h * self.input.w) as u64 * 2
    }
}

/// 2x2 max pooling with stride 2 (floor semantics).
#[derive(Debug, Clone)]
pub struct MaxPool2 {
    input: Shape,
    argmax: Vec<usize>,
}

impl MaxPool2 {
    /// Create a pool layer. Panics if the input is smaller than 2x2.
    pub fn new(input: Shape) -> MaxPool2 {
        assert!(
            input.h >= 2 && input.w >= 2,
            "MaxPool2 needs input >= 2x2, got {input}"
        );
        MaxPool2 {
            input,
            argmax: Vec::new(),
        }
    }

    /// Input shape accessor for serialization.
    pub fn input_shape(&self) -> Shape {
        self.input
    }

    /// Pool one image at `img_base` within a batch buffer, recording argmax
    /// positions as absolute indices into that buffer.
    fn pool_one(&mut self, input: &[f32], img_base: usize, out: &mut [f32], out_base: usize) {
        let (c, h, w) = (self.input.c, self.input.h, self.input.w);
        let (oh, ow) = (h / 2, w / 2);
        for ch in 0..c {
            let plane = &input[img_base + ch * h * w..img_base + (ch + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx = (oy * 2 + dy) * w + ox * 2 + dx;
                            let v = plane[idx];
                            if v > best {
                                best = v;
                                best_i = img_base + ch * h * w + idx;
                            }
                        }
                    }
                    let oidx = out_base + (ch * oh + oy) * ow + ox;
                    out[oidx] = best;
                    self.argmax[oidx] = best_i;
                }
            }
        }
    }
}

impl Layer for MaxPool2 {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "maxpool2"
    }

    fn output_shape(&self) -> Shape {
        self.input.pooled2()
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.forward_batch(input, 1, &mut out, true);
        out
    }

    fn forward_batch(&mut self, input: &[f32], batch: usize, out: &mut Vec<f32>, cache: bool) {
        let in_len = self.input.len();
        let out_len = self.output_shape().len();
        debug_assert_eq!(input.len(), batch * in_len);
        out.resize(batch * out_len, 0.0);
        if !cache {
            // Inference: no argmax bookkeeping — the runtime-dispatched
            // SIMD max sweep (`pool` policy class), bitwise identical to
            // `pool_one`'s strict-`>` running max.
            let (c, h, w) = (self.input.c, self.input.h, self.input.w);
            let (oh, ow) = (h / 2, w / 2);
            for b in 0..batch {
                for ch in 0..c {
                    let plane = &input[b * in_len + ch * h * w..b * in_len + (ch + 1) * h * w];
                    let dst =
                        &mut out[b * out_len + ch * oh * ow..b * out_len + (ch + 1) * oh * ow];
                    kernels::maxpool2_plane(gemm::Kernel::Auto, plane, h, w, dst);
                }
            }
            return;
        }
        self.argmax.resize(batch * out_len, 0);
        for b in 0..batch {
            self.pool_one(input, b * in_len, out, b * out_len);
        }
    }

    fn infer_shared(
        &self,
        input: &[f32],
        batch: usize,
        out: &mut Vec<f32>,
        scratch: &mut InferScratch,
    ) {
        let in_len = self.input.len();
        let out_len = self.output_shape().len();
        debug_assert_eq!(input.len(), batch * in_len);
        out.resize(batch * out_len, 0.0);
        let (c, h, w) = (self.input.c, self.input.h, self.input.w);
        let (oh, ow) = (h / 2, w / 2);
        for b in 0..batch {
            for ch in 0..c {
                let plane = &input[b * in_len + ch * h * w..b * in_len + (ch + 1) * h * w];
                let dst = &mut out[b * out_len + ch * oh * ow..b * out_len + (ch + 1) * oh * ow];
                kernels::maxpool2_plane(scratch.gemm.kernel, plane, h, w, dst);
            }
        }
    }

    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        let mut grad_in = vec![0.0f32; self.input.len()];
        for (oidx, &src) in self.argmax.iter().enumerate() {
            grad_in[src] += grad_out[oidx];
        }
        grad_in
    }

    fn backward_batch(&mut self, grad_out: &[f32], batch: usize, grad_in: &mut Vec<f32>) {
        debug_assert_eq!(grad_out.len(), self.argmax.len());
        grad_in.clear();
        grad_in.resize(batch * self.input.len(), 0.0);
        for (oidx, &src) in self.argmax.iter().enumerate() {
            grad_in[src] += grad_out[oidx];
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn zero_grads(&mut self) {}

    fn param_count(&self) -> usize {
        0
    }

    fn flops(&self) -> u64 {
        // 3 comparisons per output element.
        (self.output_shape().len() * 3) as u64
    }
}

/// Rectified linear activation.
#[derive(Debug, Clone)]
pub struct Relu {
    shape: Shape,
    mask: Vec<bool>,
}

impl Relu {
    /// Create a ReLU over the given shape.
    pub fn new(shape: Shape) -> Relu {
        Relu {
            shape,
            mask: Vec::new(),
        }
    }
}

impl Layer for Relu {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn output_shape(&self) -> Shape {
        self.shape
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.forward_batch(input, 1, &mut out, true);
        out
    }

    fn forward_batch(&mut self, input: &[f32], _batch: usize, out: &mut Vec<f32>, cache: bool) {
        if !cache {
            // Inference: a pure select sweep, no mask bookkeeping — the
            // runtime-dispatched SIMD kernel (`relu` policy class), with
            // the exact `v > 0.0` semantics of the masked path below.
            out.resize(input.len(), 0.0);
            kernels::relu(gemm::Kernel::Auto, input, out);
            return;
        }
        out.clear();
        self.mask.clear();
        self.mask.reserve(input.len());
        out.reserve(input.len());
        for &v in input {
            let keep = v > 0.0;
            self.mask.push(keep);
            out.push(if keep { v } else { 0.0 });
        }
    }

    fn infer_shared(
        &self,
        input: &[f32],
        _batch: usize,
        out: &mut Vec<f32>,
        scratch: &mut InferScratch,
    ) {
        out.resize(input.len(), 0.0);
        kernels::relu(scratch.gemm.kernel, input, out);
    }

    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        grad_out
            .iter()
            .zip(&self.mask)
            .map(|(&g, &keep)| if keep { g } else { 0.0 })
            .collect()
    }

    fn backward_batch(&mut self, grad_out: &[f32], _batch: usize, grad_in: &mut Vec<f32>) {
        debug_assert_eq!(grad_out.len(), self.mask.len());
        grad_in.clear();
        grad_in.extend(
            grad_out
                .iter()
                .zip(&self.mask)
                .map(|(&g, &keep)| if keep { g } else { 0.0 }),
        );
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn zero_grads(&mut self) {}

    fn param_count(&self) -> usize {
        0
    }

    fn flops(&self) -> u64 {
        self.shape.len() as u64
    }
}

/// Fully connected layer. Treats its input as flat.
#[derive(Debug, Clone)]
pub struct Dense {
    n_in: usize,
    n_out: usize,
    weights: Vec<f32>, // [n_out][n_in]
    bias: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    cache_input: Vec<f32>,
    scratch: GemmScratch,
}

impl Dense {
    /// Create a dense layer with Xavier-uniform weights.
    pub fn new(n_in: usize, n_out: usize, rng: &mut DetRng) -> Dense {
        assert!(n_in > 0 && n_out > 0, "Dense dims must be positive");
        Dense {
            n_in,
            n_out,
            weights: xavier_uniform(rng, n_in, n_out, n_in * n_out),
            bias: vec![0.0; n_out],
            grad_w: vec![0.0; n_in * n_out],
            grad_b: vec![0.0; n_out],
            cache_input: Vec::new(),
            scratch: GemmScratch::default(),
        }
    }

    /// Construct from explicit weights (used by deserialization).
    pub fn from_parts(n_in: usize, n_out: usize, weights: Vec<f32>, bias: Vec<f32>) -> Dense {
        assert_eq!(weights.len(), n_in * n_out);
        assert_eq!(bias.len(), n_out);
        let n_w = weights.len();
        Dense {
            n_in,
            n_out,
            weights,
            bias,
            grad_w: vec![0.0; n_w],
            grad_b: vec![0.0; n_out],
            cache_input: Vec::new(),
            scratch: GemmScratch::default(),
        }
    }

    /// (n_in, n_out) accessor for serialization.
    pub fn geometry(&self) -> (usize, usize) {
        (self.n_in, self.n_out)
    }

    /// Borrow weights and bias for serialization.
    pub fn weights_bias(&self) -> (&[f32], &[f32]) {
        (&self.weights, &self.bias)
    }
}

impl Layer for Dense {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn output_shape(&self) -> Shape {
        Shape::flat(self.n_out)
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.forward_batch(input, 1, &mut out, true);
        out
    }

    fn forward_batch(&mut self, input: &[f32], batch: usize, out: &mut Vec<f32>, cache: bool) {
        debug_assert_eq!(input.len(), batch * self.n_in);
        if cache {
            self.cache_input.clear();
            self.cache_input.extend_from_slice(input);
        }
        out.clear();
        if batch == 1 {
            // A single image is a matrix-vector product; the dedicated
            // matvec kernel (runtime-dispatched SIMD, `matvec` policy
            // class) beats the GEMM path's packing overhead.
            out.resize(self.n_out, 0.0);
            kernels::matvec(self.scratch.kernel, &self.weights, &self.bias, input, out);
            return;
        }
        out.resize(batch * self.n_out, 0.0);
        for row in out.chunks_exact_mut(self.n_out) {
            row.copy_from_slice(&self.bias);
        }
        // out[batch x n_out] += X[batch x n_in] · Wᵀ (W stored n_out x n_in).
        gemm::gemm_nt(
            &mut self.scratch,
            batch,
            self.n_out,
            self.n_in,
            input,
            &self.weights,
            out,
        );
    }

    fn infer_shared(
        &self,
        input: &[f32],
        batch: usize,
        out: &mut Vec<f32>,
        scratch: &mut InferScratch,
    ) {
        debug_assert_eq!(input.len(), batch * self.n_in);
        out.clear();
        if batch == 1 && !scratch.force_gemm {
            out.resize(self.n_out, 0.0);
            kernels::matvec(scratch.gemm.kernel, &self.weights, &self.bias, input, out);
            return;
        }
        out.resize(batch * self.n_out, 0.0);
        for row in out.chunks_exact_mut(self.n_out) {
            row.copy_from_slice(&self.bias);
        }
        gemm::gemm_nt(
            &mut scratch.gemm,
            batch,
            self.n_out,
            self.n_in,
            input,
            &self.weights,
            out,
        );
    }

    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        debug_assert_eq!(grad_out.len(), self.n_out);
        let mut grad_in = vec![0.0f32; self.n_in];
        for (o, &g) in grad_out.iter().enumerate() {
            self.grad_b[o] += g;
            let row = &self.weights[o * self.n_in..(o + 1) * self.n_in];
            let grow = &mut self.grad_w[o * self.n_in..(o + 1) * self.n_in];
            for i in 0..self.n_in {
                grow[i] += g * self.cache_input[i];
                grad_in[i] += g * row[i];
            }
        }
        grad_in
    }

    fn backward_batch(&mut self, grad_out: &[f32], batch: usize, grad_in: &mut Vec<f32>) {
        debug_assert_eq!(grad_out.len(), batch * self.n_out);
        debug_assert_eq!(self.cache_input.len(), batch * self.n_in);
        for g_row in grad_out.chunks_exact(self.n_out) {
            for (gb, &g) in self.grad_b.iter_mut().zip(g_row) {
                *gb += g;
            }
        }
        // grad_W[n_out x n_in] += Gᵀ[n_out x batch] · X[batch x n_in].
        gemm::gemm_tn(
            &mut self.scratch,
            self.n_out,
            self.n_in,
            batch,
            grad_out,
            &self.cache_input,
            &mut self.grad_w,
        );
        // grad_X[batch x n_in] = G[batch x n_out] · W[n_out x n_in].
        grad_in.clear();
        grad_in.resize(batch * self.n_in, 0.0);
        gemm::gemm_nn(
            &mut self.scratch,
            batch,
            self.n_in,
            self.n_out,
            grad_out,
            &self.weights,
            grad_in,
        );
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.weights, &mut self.grad_w);
        f(&mut self.bias, &mut self.grad_b);
    }

    fn set_threads(&mut self, threads: Option<usize>) {
        self.scratch.threads = threads;
    }

    fn zero_grads(&mut self) {
        self.grad_w.fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn flops(&self) -> u64 {
        (self.n_in * self.n_out) as u64 * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check<L: Layer>(layer: &mut L, input: &[f32], eps: f32) {
        // Loss = sum of outputs; analytic grad_in must match finite diff.
        let out = layer.forward(input);
        let grad_out = vec![1.0f32; out.len()];
        let grad_in = layer.backward(&grad_out);
        for i in 0..input.len() {
            let mut plus = input.to_vec();
            plus[i] += eps;
            let mut minus = input.to_vec();
            minus[i] -= eps;
            let f_plus: f32 = layer.forward(&plus).iter().sum();
            let f_minus: f32 = layer.forward(&minus).iter().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - grad_in[i]).abs() < 2e-2,
                "{} input grad mismatch at {i}: numeric {numeric} analytic {}",
                layer.name(),
                grad_in[i]
            );
        }
    }

    /// Batched finite-diff: batched analytic input grads must match numeric
    /// grads computed per perturbed batch buffer.
    fn finite_diff_check_batch<L: Layer>(layer: &mut L, input: &[f32], batch: usize, eps: f32) {
        let mut out = Vec::new();
        layer.forward_batch(input, batch, &mut out, true);
        let grad_out = vec![1.0f32; out.len()];
        let mut grad_in = Vec::new();
        layer.backward_batch(&grad_out, batch, &mut grad_in);
        assert_eq!(grad_in.len(), input.len());
        for i in 0..input.len() {
            let mut plus = input.to_vec();
            plus[i] += eps;
            let mut minus = input.to_vec();
            minus[i] -= eps;
            let mut o = Vec::new();
            layer.forward_batch(&plus, batch, &mut o, true);
            let f_plus: f32 = o.iter().sum();
            layer.forward_batch(&minus, batch, &mut o, true);
            let f_minus: f32 = o.iter().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - grad_in[i]).abs() < 2e-2,
                "{} batched input grad mismatch at {i}: numeric {numeric} analytic {}",
                layer.name(),
                grad_in[i]
            );
        }
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let shape = Shape::new(1, 4, 4);
        let mut conv = Conv2d::from_parts(
            shape,
            1,
            3,
            // 3x3 kernel with 1 in the center.
            vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0],
        );
        let input: Vec<f32> = (0..16).map(|i| i as f32 / 16.0).collect();
        let out = conv.forward(&input);
        assert_eq!(out, input);
    }

    #[test]
    fn conv_shift_kernel_applies_padding() {
        // Kernel that reads the pixel to the left: out(x) = in(x-1); the
        // leftmost column must read zero padding.
        let shape = Shape::new(1, 1, 4);
        let mut conv = Conv2d::from_parts(
            shape,
            1,
            3,
            vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0],
        );
        let out = conv.forward(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn conv_bias_added() {
        let shape = Shape::new(1, 2, 2);
        let mut conv = Conv2d::from_parts(shape, 1, 1, vec![0.0], vec![0.5]);
        let out = conv.forward(&[1.0; 4]);
        assert_eq!(out, vec![0.5; 4]);
    }

    #[test]
    fn conv_multichannel_sums_inputs() {
        let shape = Shape::new(2, 2, 2);
        // 1x1 kernels: out = 1*ch0 + 2*ch1.
        let mut conv = Conv2d::from_parts(shape, 1, 1, vec![1.0, 2.0], vec![0.0]);
        let input = vec![1.0, 1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0];
        let out = conv.forward(&input);
        assert_eq!(out, vec![7.0; 4]);
    }

    #[test]
    fn conv_gemm_matches_scalar_reference() {
        let shape = Shape::new(3, 7, 5);
        let mut rng = DetRng::new(17);
        let mut conv = Conv2d::new(shape, 4, 3, &mut rng);
        let input: Vec<f32> = (0..shape.len())
            .map(|i| ((i * 13) % 11) as f32 / 11.0 - 0.5)
            .collect();
        let scalar = conv.forward_scalar(&input);
        let gemm_out = conv.forward(&input);
        assert_eq!(scalar.len(), gemm_out.len());
        for (i, (&a, &b)) in scalar.iter().zip(&gemm_out).enumerate() {
            assert!((a - b).abs() < 1e-5, "idx {i}: scalar {a} gemm {b}");
        }
    }

    #[test]
    fn conv_batch_matches_per_image() {
        let shape = Shape::new(2, 6, 6);
        let mut rng = DetRng::new(23);
        let mut conv = Conv2d::new(shape, 3, 3, &mut rng);
        let batch = 4;
        let input: Vec<f32> = (0..batch * shape.len())
            .map(|i| ((i * 7) % 13) as f32 / 13.0 - 0.4)
            .collect();
        let mut batched = Vec::new();
        conv.forward_batch(&input, batch, &mut batched, true);
        let out_len = conv.output_shape().len();
        for b in 0..batch {
            let single = conv.forward(&input[b * shape.len()..(b + 1) * shape.len()]);
            for (i, (&x, &y)) in single
                .iter()
                .zip(&batched[b * out_len..(b + 1) * out_len])
                .enumerate()
            {
                assert!((x - y).abs() < 1e-6, "image {b} idx {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn conv_gradient_matches_finite_difference() {
        let shape = Shape::new(2, 3, 3);
        let mut rng = DetRng::new(42);
        let mut conv = Conv2d::new(shape, 2, 3, &mut rng);
        let input: Vec<f32> = (0..shape.len())
            .map(|i| ((i * 7) % 5) as f32 / 5.0 - 0.4)
            .collect();
        finite_diff_check(&mut conv, &input, 1e-2);
    }

    #[test]
    fn conv_batched_gradient_matches_finite_difference() {
        let shape = Shape::new(2, 3, 4);
        let mut rng = DetRng::new(43);
        let mut conv = Conv2d::new(shape, 2, 3, &mut rng);
        let batch = 3;
        let input: Vec<f32> = (0..batch * shape.len())
            .map(|i| ((i * 7) % 5) as f32 / 5.0 - 0.4)
            .collect();
        conv.zero_grads();
        finite_diff_check_batch(&mut conv, &input, batch, 1e-2);
    }

    #[test]
    fn conv_batched_param_grads_match_per_image_sum() {
        let shape = Shape::new(2, 4, 4);
        let mut rng = DetRng::new(51);
        let mut conv = Conv2d::new(shape, 3, 3, &mut rng);
        let batch = 3;
        let input: Vec<f32> = (0..batch * shape.len())
            .map(|i| ((i * 11) % 7) as f32 / 7.0 - 0.5)
            .collect();
        let out_len = conv.output_shape().len();

        // Per-image accumulation through the scalar backward.
        conv.zero_grads();
        for b in 0..batch {
            let img = &input[b * shape.len()..(b + 1) * shape.len()];
            let out = conv.forward(img);
            conv.backward(&vec![1.0; out.len()]);
        }
        let scalar_gw = conv.grad_w.clone();
        let scalar_gb = conv.grad_b.clone();

        // One batched pass.
        conv.zero_grads();
        let mut out = Vec::new();
        conv.forward_batch(&input, batch, &mut out, true);
        let mut grad_in = Vec::new();
        conv.backward_batch(&vec![1.0; batch * out_len], batch, &mut grad_in);

        for (i, (&a, &b)) in scalar_gw.iter().zip(&conv.grad_w).enumerate() {
            assert!(
                (a - b).abs() < 1e-3 * (1.0 + a.abs()),
                "grad_w {i}: per-image {a} batched {b}"
            );
        }
        for (i, (&a, &b)) in scalar_gb.iter().zip(&conv.grad_b).enumerate() {
            assert!(
                (a - b).abs() < 1e-3 * (1.0 + a.abs()),
                "grad_b {i}: per-image {a} batched {b}"
            );
        }
    }

    #[test]
    fn conv_weight_gradient_matches_finite_difference() {
        let shape = Shape::new(1, 3, 3);
        let mut rng = DetRng::new(3);
        let mut conv = Conv2d::new(shape, 1, 3, &mut rng);
        let input: Vec<f32> = (0..9).map(|i| (i as f32 - 4.0) / 9.0).collect();
        let out = conv.forward(&input);
        conv.zero_grads();
        conv.backward(&vec![1.0; out.len()]);
        // Check one weight by perturbation.
        let (w, _) = conv.weights_bias();
        let orig = w[4];
        let analytic = conv.grad_w[4];
        let eps = 1e-2;
        conv.weights[4] = orig + eps;
        let f_plus: f32 = conv.forward(&input).iter().sum();
        conv.weights[4] = orig - eps;
        let f_minus: f32 = conv.forward(&input).iter().sum();
        conv.weights[4] = orig;
        let numeric = (f_plus - f_minus) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 1e-2,
            "numeric {numeric} analytic {analytic}"
        );
    }

    #[test]
    fn pool_selects_maxima() {
        let shape = Shape::new(1, 2, 4);
        let mut pool = MaxPool2::new(shape);
        let out = pool.forward(&[1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 1.0, 7.0]);
        assert_eq!(out, vec![5.0, 7.0]);
    }

    #[test]
    fn pool_backward_routes_to_argmax() {
        let shape = Shape::new(1, 2, 2);
        let mut pool = MaxPool2::new(shape);
        pool.forward(&[0.1, 0.9, 0.2, 0.3]);
        let gin = pool.backward(&[2.0]);
        assert_eq!(gin, vec![0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn pool_batch_matches_per_image() {
        let shape = Shape::new(2, 4, 4);
        let mut pool = MaxPool2::new(shape);
        let batch = 3;
        let input: Vec<f32> = (0..batch * shape.len())
            .map(|i| ((i * 31) % 17) as f32)
            .collect();
        let mut batched = Vec::new();
        pool.forward_batch(&input, batch, &mut batched, true);
        let out_len = pool.output_shape().len();
        // Batched backward routes each image's gradient inside its own slot.
        let mut grad_in = Vec::new();
        pool.backward_batch(&vec![1.0; batch * out_len], batch, &mut grad_in);
        for b in 0..batch {
            let img = &input[b * shape.len()..(b + 1) * shape.len()];
            let single = pool.forward(img);
            assert_eq!(&batched[b * out_len..(b + 1) * out_len], &single[..]);
            let gin = pool.backward(&vec![1.0; out_len]);
            assert_eq!(
                &grad_in[b * shape.len()..(b + 1) * shape.len()],
                &gin[..],
                "image {b} gradient"
            );
        }
    }

    #[test]
    fn pool_floors_odd_dims() {
        let shape = Shape::new(1, 5, 5);
        let mut pool = MaxPool2::new(shape);
        let out = pool.forward(&[1.0; 25]);
        assert_eq!(out.len(), 4);
        assert_eq!(pool.output_shape(), Shape::new(1, 2, 2));
    }

    #[test]
    fn relu_clamps_and_masks() {
        let mut relu = Relu::new(Shape::flat(4));
        let out = relu.forward(&[-1.0, 2.0, 0.0, 3.0]);
        assert_eq!(out, vec![0.0, 2.0, 0.0, 3.0]);
        let gin = relu.backward(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(gin, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_batched_matches_scalar() {
        let mut relu = Relu::new(Shape::flat(3));
        let input = [-1.0f32, 2.0, 0.5, 3.0, -0.25, 0.0];
        let mut out = Vec::new();
        relu.forward_batch(&input, 2, &mut out, true);
        assert_eq!(out, vec![0.0, 2.0, 0.5, 3.0, 0.0, 0.0]);
        let mut gin = Vec::new();
        relu.backward_batch(&[1.0; 6], 2, &mut gin);
        assert_eq!(gin, vec![0.0, 1.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn dense_computes_affine_map() {
        let mut dense = Dense::from_parts(2, 2, vec![1.0, 2.0, 3.0, 4.0], vec![0.5, -0.5]);
        let out = dense.forward(&[1.0, 1.0]);
        assert_eq!(out, vec![3.5, 6.5]);
    }

    #[test]
    fn dense_batch_matches_per_image() {
        let mut rng = DetRng::new(29);
        let mut dense = Dense::new(10, 4, &mut rng);
        let batch = 5;
        let input: Vec<f32> = (0..batch * 10).map(|i| (i as f32 / 25.0) - 1.0).collect();
        let mut batched = Vec::new();
        dense.forward_batch(&input, batch, &mut batched, true);
        for b in 0..batch {
            let single = dense.forward(&input[b * 10..(b + 1) * 10]);
            for (i, (&x, &y)) in single.iter().zip(&batched[b * 4..(b + 1) * 4]).enumerate() {
                assert!((x - y).abs() < 1e-5, "image {b} idx {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn dense_gradient_matches_finite_difference() {
        let mut rng = DetRng::new(7);
        let mut dense = Dense::new(6, 3, &mut rng);
        let input: Vec<f32> = (0..6).map(|i| (i as f32) / 6.0 - 0.5).collect();
        finite_diff_check(&mut dense, &input, 1e-2);
    }

    #[test]
    fn dense_batched_gradient_matches_finite_difference() {
        let mut rng = DetRng::new(8);
        let mut dense = Dense::new(5, 3, &mut rng);
        let input: Vec<f32> = (0..20).map(|i| (i as f32) / 20.0 - 0.5).collect();
        finite_diff_check_batch(&mut dense, &input, 4, 1e-2);
    }

    #[test]
    fn dense_batched_param_grads_match_per_image_sum() {
        let mut rng = DetRng::new(77);
        let mut dense = Dense::new(6, 2, &mut rng);
        let batch = 3;
        let input: Vec<f32> = (0..batch * 6)
            .map(|i| ((i * 5) % 9) as f32 / 9.0 - 0.4)
            .collect();

        dense.zero_grads();
        for b in 0..batch {
            dense.forward(&input[b * 6..(b + 1) * 6]);
            dense.backward(&[1.0, -0.5]);
        }
        let per_image_gw = dense.grad_w.clone();
        let per_image_gb = dense.grad_b.clone();

        dense.zero_grads();
        let mut out = Vec::new();
        dense.forward_batch(&input, batch, &mut out, true);
        let g: Vec<f32> = (0..batch).flat_map(|_| [1.0, -0.5]).collect();
        let mut gin = Vec::new();
        dense.backward_batch(&g, batch, &mut gin);

        for (i, (&a, &b)) in per_image_gw.iter().zip(&dense.grad_w).enumerate() {
            assert!((a - b).abs() < 1e-4, "grad_w {i}: {a} vs {b}");
        }
        for (i, (&a, &b)) in per_image_gb.iter().zip(&dense.grad_b).enumerate() {
            assert!((a - b).abs() < 1e-5, "grad_b {i}: {a} vs {b}");
        }
    }

    #[test]
    fn dense_accumulates_gradients_across_calls() {
        let mut dense = Dense::from_parts(1, 1, vec![2.0], vec![0.0]);
        dense.forward(&[3.0]);
        dense.backward(&[1.0]);
        dense.forward(&[3.0]);
        dense.backward(&[1.0]);
        assert_eq!(dense.grad_w[0], 6.0); // 2 calls x input 3
        dense.zero_grads();
        assert_eq!(dense.grad_w[0], 0.0);
    }

    #[test]
    fn flop_counts() {
        let mut rng = DetRng::new(1);
        let conv = Conv2d::new(Shape::new(3, 10, 10), 16, 3, &mut rng);
        assert_eq!(conv.flops(), (16 * 3 * 9 * 100) as u64 * 2);
        let dense = Dense::new(100, 10, &mut rng);
        assert_eq!(dense.flops(), 2000);
        let pool = MaxPool2::new(Shape::new(4, 8, 8));
        assert_eq!(pool.flops(), (4 * 4 * 4 * 3) as u64);
        let relu = Relu::new(Shape::flat(50));
        assert_eq!(relu.flops(), 50);
    }

    #[test]
    fn param_counts() {
        let mut rng = DetRng::new(1);
        let conv = Conv2d::new(Shape::new(3, 8, 8), 16, 3, &mut rng);
        assert_eq!(conv.param_count(), 16 * 3 * 9 + 16);
        let dense = Dense::new(64, 32, &mut rng);
        assert_eq!(dense.param_count(), 64 * 32 + 32);
    }
}

//! Minibatch training loop for binary classifiers.
//!
//! §III (issue 3) of the paper: specialized binary classifiers train in
//! minutes because they are tiny. This trainer reproduces the standard
//! recipe: shuffled minibatches, BCE-with-logits, gradient averaging within
//! each batch, optional early stopping when training accuracy saturates.

use crate::loss::{bce_with_logits, bce_with_logits_grad};
use crate::model::Sequential;
use crate::optim::Optimizer;
use tahoma_mathx::DetRng;

/// One training example: flat input plus binary label.
#[derive(Debug, Clone)]
pub struct Example {
    /// Planar input matching the model's input shape.
    pub input: Vec<f32>,
    /// Ground-truth label.
    pub label: bool,
}

/// Per-epoch and final training metrics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss after each epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy after the final epoch.
    pub final_accuracy: f64,
    /// Epochs actually run (may stop early).
    pub epochs_run: usize,
}

/// Training configuration.
#[derive(Debug, Clone)]
pub struct Trainer {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Stop early when mean epoch loss drops below this.
    pub early_stop_loss: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for Trainer {
    fn default() -> Self {
        Trainer {
            epochs: 10,
            batch_size: 16,
            early_stop_loss: 0.02,
            seed: 0,
        }
    }
}

impl Trainer {
    /// Train `model` on `examples` with the given optimizer.
    ///
    /// Panics if `examples` is empty or an input length mismatches the
    /// model's input shape.
    pub fn train(
        &self,
        model: &mut Sequential,
        examples: &[Example],
        opt: &mut dyn Optimizer,
    ) -> TrainReport {
        assert!(!examples.is_empty(), "cannot train on empty dataset");
        let expected = model.input_shape().len();
        for (i, ex) in examples.iter().enumerate() {
            assert_eq!(
                ex.input.len(),
                expected,
                "example {i} has input length {} != {expected}",
                ex.input.len()
            );
        }
        let mut rng = DetRng::new(self.seed);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut report = TrainReport {
            epoch_losses: Vec::with_capacity(self.epochs),
            final_accuracy: 0.0,
            epochs_run: 0,
        };
        // Reused minibatch buffers: the whole batch flows through the
        // GEMM-backed `forward_batch`/`backward_batch` in one pass.
        let mut xb: Vec<f32> = Vec::with_capacity(self.batch_size.max(1) * expected);
        let mut gb: Vec<f32> = Vec::with_capacity(self.batch_size.max(1));
        for _epoch in 0..self.epochs {
            rng.shuffle(&mut order);
            let mut loss_sum = 0.0f64;
            for batch in order.chunks(self.batch_size.max(1)) {
                model.zero_grads();
                xb.clear();
                for &i in batch {
                    xb.extend_from_slice(&examples[i].input);
                }
                let logits = model.forward_logits_batch(&xb, batch.len());
                gb.clear();
                for (&i, &z) in batch.iter().zip(&logits) {
                    let label = examples[i].label;
                    loss_sum += bce_with_logits(z, label) as f64;
                    gb.push(bce_with_logits_grad(z, label));
                }
                model.backward_batch(&gb, batch.len());
                let scale = 1.0 / batch.len() as f32;
                opt.begin_step();
                model.visit_params(|slot, p, g| opt.update(slot, p, g, scale));
            }
            let mean_loss = (loss_sum / examples.len() as f64) as f32;
            report.epoch_losses.push(mean_loss);
            report.epochs_run += 1;
            if mean_loss < self.early_stop_loss {
                break;
            }
        }
        report.final_accuracy = accuracy(model, examples);
        report
    }
}

/// Scoring batch size: large enough to amortize the GEMM setup, small
/// enough to keep activation buffers cache-resident.
pub const SCORE_BATCH: usize = 32;

/// Fraction of examples classified correctly at probability threshold 0.5.
/// Runs the batched inference path in [`SCORE_BATCH`]-sized chunks.
pub fn accuracy(model: &mut Sequential, examples: &[Example]) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    let in_len = model.input_shape().len();
    let mut xb: Vec<f32> = Vec::with_capacity(SCORE_BATCH * in_len);
    let mut correct = 0usize;
    for chunk in examples.chunks(SCORE_BATCH) {
        xb.clear();
        for ex in chunk {
            xb.extend_from_slice(&ex.input);
        }
        let logits = model.predict_logits_batch(&xb, chunk.len());
        correct += chunk
            .iter()
            .zip(&logits)
            .filter(|(ex, &z)| (z >= 0.0) == ex.label)
            .count();
    }
    correct as f64 / examples.len() as f64
}

/// Scores (sigmoid probabilities) for a set of inputs, batched through the
/// GEMM inference path.
pub fn predict_scores(model: &mut Sequential, inputs: &[Vec<f32>]) -> Vec<f32> {
    let in_len = model.input_shape().len();
    let mut xb: Vec<f32> = Vec::with_capacity(SCORE_BATCH * in_len);
    let mut out = Vec::with_capacity(inputs.len());
    for chunk in inputs.chunks(SCORE_BATCH) {
        xb.clear();
        for x in chunk {
            xb.extend_from_slice(x);
        }
        out.extend(model.predict_proba_batch(&xb, chunk.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CnnSpec;
    use crate::optim::Adam;
    use crate::tensor::Shape;

    /// Bright 2x2 square planted in one half vs. the other.
    fn planted_square_dataset(n: usize, seed: u64) -> Vec<Example> {
        let mut rng = DetRng::new(seed);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2 == 0;
            let mut input = vec![0.0f32; 64];
            // noise floor
            for v in input.iter_mut() {
                *v = rng.uniform_in(0.0, 0.25) as f32;
            }
            // square in the top half for positives, bottom half otherwise
            let y0 = if label {
                rng.index(2)
            } else {
                4 + rng.index(2)
            };
            let x0 = rng.index(6);
            for dy in 0..2 {
                for dx in 0..2 {
                    input[(y0 + dy) * 8 + x0 + dx] = 1.0;
                }
            }
            out.push(Example { input, label });
        }
        out
    }

    fn tiny_model(seed: u64) -> Sequential {
        CnnSpec {
            input: Shape::new(1, 8, 8),
            conv_channels: vec![4],
            kernel: 3,
            dense_units: 8,
        }
        .build(seed)
        .unwrap()
    }

    #[test]
    fn training_learns_planted_square_task() {
        let data = planted_square_dataset(80, 11);
        let mut model = tiny_model(1);
        let trainer = Trainer {
            epochs: 30,
            batch_size: 8,
            early_stop_loss: 0.05,
            seed: 2,
        };
        let report = trainer.train(&mut model, &data, &mut Adam::new(0.01));
        assert!(
            report.final_accuracy >= 0.9,
            "accuracy {}",
            report.final_accuracy
        );
        // loss should broadly decrease
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn trained_model_generalizes_to_held_out_data() {
        let train = planted_square_dataset(120, 21);
        let held_out = planted_square_dataset(40, 99);
        let mut model = tiny_model(3);
        let trainer = Trainer {
            epochs: 40,
            batch_size: 8,
            early_stop_loss: 0.05,
            seed: 4,
        };
        trainer.train(&mut model, &train, &mut Adam::new(0.01));
        let acc = accuracy(&mut model, &held_out);
        assert!(acc >= 0.8, "held-out accuracy {acc}");
    }

    #[test]
    fn early_stopping_cuts_epochs() {
        let data = planted_square_dataset(60, 31);
        let mut model = tiny_model(5);
        let trainer = Trainer {
            epochs: 200,
            batch_size: 8,
            early_stop_loss: 0.15,
            seed: 6,
        };
        let report = trainer.train(&mut model, &data, &mut Adam::new(0.02));
        assert!(
            report.epochs_run < 200,
            "expected early stop, ran {} epochs",
            report.epochs_run
        );
    }

    #[test]
    fn training_is_deterministic() {
        let data = planted_square_dataset(40, 41);
        let run = || {
            let mut model = tiny_model(7);
            let trainer = Trainer {
                epochs: 5,
                batch_size: 8,
                early_stop_loss: 0.0,
                seed: 8,
            };
            let r = trainer.train(&mut model, &data, &mut Adam::new(0.01));
            (r.epoch_losses, r.final_accuracy)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic]
    fn empty_dataset_panics() {
        let mut model = tiny_model(0);
        Trainer::default().train(&mut model, &[], &mut Adam::new(0.01));
    }

    #[test]
    #[should_panic]
    fn wrong_input_length_panics() {
        let mut model = tiny_model(0);
        let bad = vec![Example {
            input: vec![0.0; 10],
            label: true,
        }];
        Trainer::default().train(&mut model, &bad, &mut Adam::new(0.01));
    }

    #[test]
    fn predict_scores_are_probabilities() {
        let data = planted_square_dataset(10, 51);
        let mut model = tiny_model(9);
        let inputs: Vec<Vec<f32>> = data.iter().map(|e| e.input.clone()).collect();
        for s in predict_scores(&mut model, &inputs) {
            assert!((0.0..=1.0).contains(&s));
        }
    }
}

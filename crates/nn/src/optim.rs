//! Gradient-descent optimizers operating on (param, grad) slice pairs.
//!
//! State (momentum / Adam moments) is keyed by visit order, which is stable
//! because `Sequential::visit_params` walks layers in construction order.

/// An optimizer consuming accumulated gradients.
pub trait Optimizer {
    /// Begin an update pass (called once per step before visiting params).
    fn begin_step(&mut self);
    /// Apply an update to one (params, grads) pair. `slot` identifies the
    /// parameter group across steps.
    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32], scale: f32);
}

/// SGD with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient in [0, 1).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Create an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Sgd {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum in [0,1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self) {}

    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32], scale: f32) {
        while self.velocity.len() <= slot {
            self.velocity.push(Vec::new());
        }
        let vel = &mut self.velocity[slot];
        if vel.len() != params.len() {
            vel.clear();
            vel.resize(params.len(), 0.0);
        }
        for i in 0..params.len() {
            let g = grads[i] * scale;
            vel[i] = self.momentum * vel[i] - self.lr * g;
            params[i] += vel[i];
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Create an Adam optimizer with the canonical betas.
    pub fn new(lr: f32) -> Adam {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32], scale: f32) {
        while self.m.len() <= slot {
            self.m.push(Vec::new());
            self.v.push(Vec::new());
        }
        let (m, v) = (&mut self.m[slot], &mut self.v[slot]);
        if m.len() != params.len() {
            m.clear();
            m.resize(params.len(), 0.0);
            v.clear();
            v.resize(params.len(), 0.0);
        }
        let t = self.t.max(1) as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for i in 0..params.len() {
            let g = grads[i] * scale;
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 using an optimizer; grad = 2(x - 3).
    fn minimize<O: Optimizer>(mut opt: O, steps: usize) -> f32 {
        let mut x = [0.0f32];
        for _ in 0..steps {
            opt.begin_step();
            let g = [2.0 * (x[0] - 3.0)];
            opt.update(0, &mut x, &g, 1.0);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimize(Sgd::new(0.1, 0.0), 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = minimize(Sgd::new(0.05, 0.9), 200);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimize(Adam::new(0.1), 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn gradient_scale_is_applied() {
        // With scale = 0 nothing moves.
        let mut opt = Sgd::new(0.5, 0.0);
        let mut x = [1.0f32];
        opt.begin_step();
        opt.update(0, &mut x, &[10.0], 0.0);
        assert_eq!(x[0], 1.0);
    }

    #[test]
    fn slots_are_independent() {
        let mut opt = Sgd::new(0.1, 0.9);
        let mut a = [0.0f32];
        let mut b = [0.0f32];
        for _ in 0..10 {
            opt.begin_step();
            opt.update(0, &mut a, &[1.0], 1.0);
            opt.update(1, &mut b, &[-1.0], 1.0);
        }
        assert!(a[0] < 0.0);
        assert!(b[0] > 0.0);
    }

    #[test]
    #[should_panic]
    fn sgd_rejects_zero_lr() {
        Sgd::new(0.0, 0.5);
    }
}

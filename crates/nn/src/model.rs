//! Model composition and the paper's CNN architecture constructor.
//!
//! [`CnnSpec`] encodes exactly the Fig. 3 family: `L` repetitions of
//! `conv(3x3, same, n_conv) -> ReLU -> maxpool(2x2)`, then a dense ReLU
//! layer of `n_dense` units, then a single-logit dense output. The paper
//! varies `L` in {1, 2, 4}, `n_conv` in {16, 32}, and `n_dense` in
//! {16, 32, 64} (§VII-A).

use crate::layer::{Conv2d, Dense, InferScratch, Layer, MaxPool2, Relu};
use crate::tensor::Shape;
use std::fmt;
use tahoma_mathx::{logistic, DetRng};

/// A feed-forward stack of layers.
///
/// Owns a pair of ping-pong activation buffers so whole minibatches flow
/// through [`Sequential::forward_batch`]/[`Sequential::backward_batch`]
/// without any per-image (or even per-call, after warm-up) allocation.
pub struct Sequential {
    input: Shape,
    layers: Vec<Box<dyn Layer>>,
    buf_a: Vec<f32>,
    buf_b: Vec<f32>,
}

impl Sequential {
    /// Create an empty model over the given input shape.
    pub fn new(input: Shape) -> Sequential {
        Sequential {
            input,
            layers: Vec::new(),
            buf_a: Vec::new(),
            buf_b: Vec::new(),
        }
    }

    /// Append a layer. Panics if the layer's declared output doesn't chain
    /// from the current output shape (dense layers accept any flat input of
    /// the right length).
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Input shape.
    pub fn input_shape(&self) -> Shape {
        self.input
    }

    /// Output shape of the final layer (the input shape for an empty model).
    pub fn output_shape(&self) -> Shape {
        self.layers.last().map_or(self.input, |l| l.output_shape())
    }

    /// Borrow the layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Cap worker threads across every layer (see [`Layer::set_threads`]):
    /// `None` sizes automatically per layer from the work, `Some(1)` pins
    /// the whole model single-threaded. Callers that already parallelize
    /// across models (the zoo trainers) pin their models to one thread;
    /// serving paths leave the default so big batches fan out across
    /// cores.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        for layer in &mut self.layers {
            layer.set_threads(threads);
        }
    }

    /// Run the network forward, returning the raw output vector. A thin
    /// batch-of-1 wrapper over [`Sequential::forward_batch`], so it runs on
    /// the same im2col+GEMM path.
    pub fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        self.forward_batch(input, 1)
    }

    /// Carry a whole minibatch through every layer, caching activations so
    /// [`Sequential::backward_batch`] can follow (the training entry point).
    /// `input` holds `batch` images back to back (batch-major,
    /// channel-planar); the result holds `batch` output vectors back to
    /// back. Activations move through two reused ping-pong buffers — no
    /// per-image allocation.
    pub fn forward_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        self.run_batch(input, batch, true)
    }

    /// Inference-only batched forward: skips every backward-pass cache
    /// (input snapshots, ReLU masks), which saves one full copy of each
    /// activation buffer per layer. `backward`/`backward_batch` must not be
    /// called after it.
    pub fn infer_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        self.run_batch(input, batch, false)
    }

    fn run_batch(&mut self, input: &[f32], batch: usize, cache: bool) -> Vec<f32> {
        assert!(batch > 0, "forward_batch requires batch >= 1");
        assert_eq!(
            input.len(),
            batch * self.input.len(),
            "input length {} != batch {batch} x {}",
            input.len(),
            self.input.len()
        );
        let Sequential {
            layers,
            buf_a,
            buf_b,
            ..
        } = self;
        buf_a.clear();
        buf_a.extend_from_slice(input);
        for layer in layers.iter_mut() {
            layer.forward_batch(buf_a, batch, buf_b, cache);
            std::mem::swap(buf_a, buf_b);
        }
        buf_a.clone()
    }

    /// Shared-reference batched inference: identical numerics to
    /// [`Sequential::infer_batch`] for the same batch shape, but `&self` —
    /// every piece of mutable state (GEMM packing buffers, ping-pong
    /// activations) lives in the caller's [`InferScratch`], so one trained
    /// model serves any number of threads concurrently, each with its own
    /// scratch checked out from a pool. With
    /// [`InferScratch::coalescing`]-configured scratch, each image's output
    /// is additionally bitwise independent of the batch it rides in, which
    /// is what lets a scoring broker merge packs from concurrent queries
    /// into one call.
    pub fn infer_batch_shared(
        &self,
        input: &[f32],
        batch: usize,
        scratch: &mut InferScratch,
    ) -> Vec<f32> {
        assert!(batch > 0, "infer_batch_shared requires batch >= 1");
        assert_eq!(
            input.len(),
            batch * self.input.len(),
            "input length {} != batch {batch} x {}",
            input.len(),
            self.input.len()
        );
        let mut buf_a = std::mem::take(&mut scratch.buf_a);
        let mut buf_b = std::mem::take(&mut scratch.buf_b);
        buf_a.clear();
        buf_a.extend_from_slice(input);
        for layer in &self.layers {
            layer.infer_shared(&buf_a, batch, &mut buf_b, scratch);
            std::mem::swap(&mut buf_a, &mut buf_b);
        }
        let out = buf_a.clone();
        scratch.buf_a = buf_a;
        scratch.buf_b = buf_b;
        out
    }

    /// Shared-reference [`Sequential::predict_proba_batch`]: one
    /// probability per image through [`Sequential::infer_batch_shared`].
    /// Panics unless the model has a single output.
    pub fn predict_proba_shared(
        &self,
        input: &[f32],
        batch: usize,
        scratch: &mut InferScratch,
    ) -> Vec<f32> {
        let mut out = self.infer_batch_shared(input, batch, scratch);
        assert_eq!(
            out.len(),
            batch,
            "predict_proba_shared requires single-output model"
        );
        for v in &mut out {
            *v = logistic(*v as f64) as f32;
        }
        out
    }

    /// Forward pass returning the single output logit. Panics unless the
    /// final layer produces exactly one value.
    pub fn forward_logit(&mut self, input: &[f32]) -> f32 {
        let out = self.forward(input);
        assert_eq!(out.len(), 1, "forward_logit requires single-output model");
        out[0]
    }

    /// Batched [`Sequential::forward_logit`]: one logit per image. Panics
    /// unless the model has a single output.
    pub fn forward_logits_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        let out = self.forward_batch(input, batch);
        assert_eq!(
            out.len(),
            batch,
            "forward_logits_batch requires single-output model"
        );
        out
    }

    /// Probability that the input is a positive example (sigmoid of logit).
    pub fn predict_proba(&mut self, input: &[f32]) -> f32 {
        logistic(self.forward_logit(input) as f64) as f32
    }

    /// Batched inference logits (cache-less): one logit per image. Panics
    /// unless the model has a single output.
    pub fn predict_logits_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        let out = self.infer_batch(input, batch);
        assert_eq!(
            out.len(),
            batch,
            "predict_logits_batch requires single-output model"
        );
        out
    }

    /// Batched [`Sequential::predict_proba`]: one probability per image,
    /// through the cache-less inference path.
    pub fn predict_proba_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        let mut out = self.predict_logits_batch(input, batch);
        for v in &mut out {
            *v = logistic(*v as f64) as f32;
        }
        out
    }

    /// Backpropagate an output gradient through all layers, accumulating
    /// parameter gradients. Call after `forward`.
    pub fn backward(&mut self, grad_out: &[f32]) {
        let mut g = grad_out.to_vec();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
    }

    /// Batched backward pass: `grad_out` holds one output gradient per image
    /// (batch-major). Parameter gradients accumulate the whole batch in one
    /// sweep through each layer's GEMM-backed `backward_batch`. Must follow
    /// a [`Sequential::forward_batch`] with the same `batch`.
    pub fn backward_batch(&mut self, grad_out: &[f32], batch: usize) {
        let Sequential {
            layers,
            buf_a,
            buf_b,
            ..
        } = self;
        buf_a.clear();
        buf_a.extend_from_slice(grad_out);
        for layer in layers.iter_mut().rev() {
            layer.backward_batch(buf_a, batch, buf_b);
            std::mem::swap(buf_a, buf_b);
        }
    }

    /// Zero all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Visit all (params, grads) pairs in stable order, passing a slot id.
    pub fn visit_params(&mut self, mut f: impl FnMut(usize, &mut [f32], &mut [f32])) {
        let mut slot = 0usize;
        for layer in &mut self.layers {
            layer.visit_params(&mut |p, g| {
                f(slot, p, g);
                slot += 1;
            });
        }
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Total FLOPs for one forward pass.
    pub fn flops(&self) -> u64 {
        self.layers.iter().map(|l| l.flops()).sum()
    }

    /// One-line architecture summary, e.g.
    /// `"3x30x30 -> conv2d -> relu -> maxpool2 -> dense -> relu -> dense"`.
    pub fn summary(&self) -> String {
        let mut s = self.input.to_string();
        for layer in &self.layers {
            s.push_str(" -> ");
            s.push_str(layer.name());
        }
        s
    }
}

impl fmt::Debug for Sequential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sequential({})", self.summary())
    }
}

/// Declarative spec for the paper's CNN family (Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnnSpec {
    /// Input shape (channels x height x width).
    pub input: Shape,
    /// Output channels of each conv block; length = number of conv layers.
    pub conv_channels: Vec<usize>,
    /// Convolution kernel side (odd).
    pub kernel: usize,
    /// Units in the fully connected ReLU layer.
    pub dense_units: usize,
}

impl CnnSpec {
    /// Build the network with deterministic initialization.
    ///
    /// Returns an error message if pooling would shrink the spatial extent
    /// to zero (too many conv blocks for the input size).
    pub fn build(&self, seed: u64) -> Result<Sequential, String> {
        assert!(self.kernel % 2 == 1, "kernel must be odd");
        let mut rng = DetRng::new(seed);
        let mut model = Sequential::new(self.input);
        let mut shape = self.input;
        for (li, &out_c) in self.conv_channels.iter().enumerate() {
            if shape.h < 2 || shape.w < 2 {
                return Err(format!(
                    "conv block {li}: spatial extent {shape} too small to pool"
                ));
            }
            let conv = Conv2d::new(shape, out_c, self.kernel, &mut rng);
            shape = conv.output_shape();
            model.push(Box::new(conv));
            model.push(Box::new(Relu::new(shape)));
            let pool = MaxPool2::new(shape);
            shape = pool.output_shape();
            model.push(Box::new(pool));
            if shape.is_empty() {
                return Err(format!("conv block {li}: pooled to empty shape"));
            }
        }
        let flat = shape.len();
        model.push(Box::new(Dense::new(flat, self.dense_units, &mut rng)));
        model.push(Box::new(Relu::new(Shape::flat(self.dense_units))));
        model.push(Box::new(Dense::new(self.dense_units, 1, &mut rng)));
        Ok(model)
    }

    /// FLOPs of the built model without building it (used by the analytic
    /// cost model; must agree with `build(..).flops()`).
    pub fn flops(&self) -> u64 {
        let mut total = 0u64;
        let mut shape = self.input;
        for &out_c in &self.conv_channels {
            total += (out_c * shape.c * self.kernel * self.kernel * shape.h * shape.w) as u64 * 2;
            shape = Shape::new(out_c, shape.h, shape.w);
            total += shape.len() as u64; // relu
            let pooled = shape.pooled2();
            total += (pooled.len() * 3) as u64; // pool
            shape = pooled;
        }
        total += (shape.len() * self.dense_units) as u64 * 2;
        total += self.dense_units as u64; // relu
        total += self.dense_units as u64 * 2; // final dense
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CnnSpec {
        CnnSpec {
            input: Shape::new(1, 8, 8),
            conv_channels: vec![4, 8],
            kernel: 3,
            dense_units: 8,
        }
    }

    #[test]
    fn build_produces_expected_stack() {
        let model = tiny_spec().build(1).unwrap();
        assert_eq!(
            model.summary(),
            "1x8x8 -> conv2d -> relu -> maxpool2 -> conv2d -> relu -> maxpool2 -> dense -> relu -> dense"
        );
        assert_eq!(model.output_shape(), Shape::flat(1));
    }

    #[test]
    fn forward_logit_runs() {
        let mut model = tiny_spec().build(2).unwrap();
        let input = vec![0.5; 64];
        let z = model.forward_logit(&input);
        assert!(z.is_finite());
        let p = model.predict_proba(&input);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn build_is_deterministic() {
        let mut a = tiny_spec().build(3).unwrap();
        let mut b = tiny_spec().build(3).unwrap();
        let input: Vec<f32> = (0..64).map(|i| i as f32 / 64.0).collect();
        assert_eq!(a.forward_logit(&input), b.forward_logit(&input));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = tiny_spec().build(3).unwrap();
        let mut b = tiny_spec().build(4).unwrap();
        let input: Vec<f32> = (0..64).map(|i| i as f32 / 64.0).collect();
        assert_ne!(a.forward_logit(&input), b.forward_logit(&input));
    }

    #[test]
    fn spec_flops_matches_built_model() {
        for spec in [
            tiny_spec(),
            CnnSpec {
                input: Shape::new(3, 30, 30),
                conv_channels: vec![16],
                kernel: 3,
                dense_units: 16,
            },
            CnnSpec {
                input: Shape::new(3, 30, 30),
                conv_channels: vec![16, 16, 16, 16],
                kernel: 3,
                dense_units: 64,
            },
        ] {
            let model = spec.build(9).unwrap();
            assert_eq!(spec.flops(), model.flops(), "spec {spec:?}");
        }
    }

    #[test]
    fn too_many_pools_is_an_error() {
        let spec = CnnSpec {
            input: Shape::new(1, 4, 4),
            conv_channels: vec![2, 2, 2, 2],
            kernel: 3,
            dense_units: 4,
        };
        assert!(spec.build(0).is_err());
    }

    #[test]
    fn paper_sizes_support_four_conv_layers() {
        // 30 -> 15 -> 7 -> 3 -> 1: still nonempty after four pools.
        for size in [30usize, 60, 120, 224] {
            let spec = CnnSpec {
                input: Shape::new(3, size, size),
                conv_channels: vec![16, 16, 16, 16],
                kernel: 3,
                dense_units: 16,
            };
            assert!(spec.build(0).is_ok(), "size {size}");
        }
    }

    #[test]
    fn gradient_descent_reduces_loss_end_to_end() {
        use crate::loss::{bce_with_logits, bce_with_logits_grad};
        use crate::optim::{Optimizer, Sgd};
        let mut model = CnnSpec {
            input: Shape::new(1, 6, 6),
            conv_channels: vec![3],
            kernel: 3,
            dense_units: 6,
        }
        .build(5)
        .unwrap();
        // Two simple patterns: bright center vs bright corner.
        let mut pos = vec![0.0f32; 36];
        pos[14] = 1.0;
        pos[15] = 1.0;
        pos[20] = 1.0;
        pos[21] = 1.0;
        let mut neg = vec![0.0f32; 36];
        neg[0] = 1.0;
        neg[1] = 1.0;
        neg[6] = 1.0;
        neg[7] = 1.0;
        let mut opt = Sgd::new(0.1, 0.9);
        let loss_at = |model: &mut Sequential, pos: &[f32], neg: &[f32]| {
            bce_with_logits(model.forward_logit(pos), true)
                + bce_with_logits(model.forward_logit(neg), false)
        };
        let before = loss_at(&mut model, &pos, &neg);
        for _ in 0..60 {
            model.zero_grads();
            let zp = model.forward_logit(&pos);
            model.backward(&[bce_with_logits_grad(zp, true)]);
            let zn = model.forward_logit(&neg);
            model.backward(&[bce_with_logits_grad(zn, false)]);
            opt.begin_step();
            model.visit_params(|slot, p, g| opt.update(slot, p, g, 0.5));
        }
        let after = loss_at(&mut model, &pos, &neg);
        assert!(
            after < before * 0.2,
            "loss did not drop: before {before}, after {after}"
        );
    }

    #[test]
    fn forward_batch_of_one_matches_forward() {
        let mut model = tiny_spec().build(6).unwrap();
        let input: Vec<f32> = (0..64).map(|i| (i as f32 / 32.0) - 1.0).collect();
        let single = model.forward_logit(&input);
        let batched = model.forward_logits_batch(&input, 1);
        assert_eq!(batched.len(), 1);
        assert_eq!(single, batched[0]);
    }

    #[test]
    fn forward_batch_matches_per_image_forward() {
        let mut model = tiny_spec().build(7).unwrap();
        let batch = 5;
        let input: Vec<f32> = (0..batch * 64)
            .map(|i| ((i * 37) % 100) as f32 / 50.0 - 1.0)
            .collect();
        let batched = model.forward_logits_batch(&input, batch);
        for b in 0..batch {
            let single = model.forward_logit(&input[b * 64..(b + 1) * 64]);
            assert!(
                (single - batched[b]).abs() < 1e-4,
                "image {b}: single {single} batched {}",
                batched[b]
            );
        }
    }

    #[test]
    fn forced_thread_counts_reproduce_serial_logits_bitwise() {
        // Image-level threading must not change a single bit: images are
        // independent and each worker runs the same kernels in the same
        // order.
        let spec = CnnSpec {
            input: Shape::new(3, 16, 16),
            conv_channels: vec![8],
            kernel: 3,
            dense_units: 8,
        };
        let batch = 9;
        let input: Vec<f32> = (0..batch * spec.input.len())
            .map(|i| ((i * 31) % 23) as f32 / 23.0 - 0.5)
            .collect();
        let mut serial = spec.build(13).unwrap();
        serial.set_threads(Some(1));
        let want = serial.predict_logits_batch(&input, batch);
        for t in [2usize, 4] {
            let mut model = spec.build(13).unwrap();
            model.set_threads(Some(t));
            let got = model.predict_logits_batch(&input, batch);
            assert_eq!(want, got, "threads {t} diverges");
        }
    }

    #[test]
    fn predict_proba_batch_is_sigmoid_of_logits() {
        let mut model = tiny_spec().build(8).unwrap();
        let batch = 3;
        let input: Vec<f32> = (0..batch * 64).map(|i| (i % 13) as f32 / 13.0).collect();
        let probs = model.predict_proba_batch(&input, batch);
        assert_eq!(probs.len(), batch);
        for (b, &p) in probs.iter().enumerate() {
            assert!((0.0..=1.0).contains(&p));
            let single = model.predict_proba(&input[b * 64..(b + 1) * 64]);
            assert!((p - single).abs() < 1e-5, "image {b}: {p} vs {single}");
        }
    }

    #[test]
    fn batched_backward_matches_per_image_accumulation() {
        let spec = CnnSpec {
            input: Shape::new(1, 6, 6),
            conv_channels: vec![3],
            kernel: 3,
            dense_units: 6,
        };
        let batch = 4;
        let input: Vec<f32> = (0..batch * 36)
            .map(|i| ((i * 7) % 19) as f32 / 19.0 - 0.5)
            .collect();
        let grads: Vec<f32> = (0..batch)
            .map(|b| if b % 2 == 0 { 1.0 } else { -0.5 })
            .collect();

        // Per-image reference.
        let mut ref_model = spec.build(11).unwrap();
        ref_model.zero_grads();
        for b in 0..batch {
            ref_model.forward(&input[b * 36..(b + 1) * 36]);
            ref_model.backward(&[grads[b]]);
        }
        let mut ref_grads: Vec<Vec<f32>> = Vec::new();
        ref_model.visit_params(|_, _, g| ref_grads.push(g.to_vec()));

        // Batched pass on an identically initialized model.
        let mut model = spec.build(11).unwrap();
        model.zero_grads();
        model.forward_batch(&input, batch);
        model.backward_batch(&grads, batch);
        let mut got_grads: Vec<Vec<f32>> = Vec::new();
        model.visit_params(|_, _, g| got_grads.push(g.to_vec()));

        assert_eq!(ref_grads.len(), got_grads.len());
        for (slot, (r, g)) in ref_grads.iter().zip(&got_grads).enumerate() {
            for (i, (&a, &b)) in r.iter().zip(g).enumerate() {
                assert!(
                    (a - b).abs() < 1e-3 * (1.0 + a.abs()),
                    "slot {slot} grad {i}: per-image {a} batched {b}"
                );
            }
        }
    }

    #[test]
    fn shared_inference_matches_owned_path_bitwise() {
        let mut model = tiny_spec().build(21).unwrap();
        let mut scratch = InferScratch::default();
        for batch in [1usize, 3, 7] {
            let input: Vec<f32> = (0..batch * 64)
                .map(|i| ((i * 29) % 31) as f32 / 31.0 - 0.5)
                .collect();
            let owned = model.predict_proba_batch(&input, batch);
            let shared = {
                let m: &Sequential = &model;
                let mut out = m.infer_batch_shared(&input, batch, &mut scratch);
                for v in &mut out {
                    *v = logistic(*v as f64) as f32;
                }
                out
            };
            assert_eq!(owned, shared, "batch {batch} diverges");
        }
    }

    #[test]
    fn coalescing_scratch_scores_are_batch_shape_invariant() {
        // The broker's contract: a row's score must not depend on how many
        // other rows were merged into the same inference call.
        let model = tiny_spec().build(22).unwrap();
        let n = 9usize;
        let input: Vec<f32> = (0..n * 64)
            .map(|i| ((i * 17) % 23) as f32 / 23.0 - 0.3)
            .collect();
        let mut scratch = InferScratch::coalescing();
        let merged = model.predict_proba_shared(&input, n, &mut scratch);
        // Score the same rows alone and in ragged sub-batches.
        let mut alone = Vec::new();
        for b in 0..n {
            alone.extend(model.predict_proba_shared(&input[b * 64..(b + 1) * 64], 1, &mut scratch));
        }
        assert_eq!(
            merged, alone,
            "batch-1 vs batch-{n} diverges under force_gemm"
        );
        let mut ragged = Vec::new();
        for chunk in input.chunks(4 * 64) {
            let b = chunk.len() / 64;
            ragged.extend(model.predict_proba_shared(chunk, b, &mut scratch));
        }
        assert_eq!(
            merged, ragged,
            "ragged sub-batches diverge under force_gemm"
        );
    }

    #[test]
    fn concurrent_threads_share_one_model() {
        let model = tiny_spec().build(23).unwrap();
        let input: Vec<f32> = (0..64).map(|i| (i as f32 / 32.0) - 1.0).collect();
        let want = model.predict_proba_shared(&input, 1, &mut InferScratch::coalescing());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (model, input, want) = (&model, &input, &want);
                s.spawn(move || {
                    let mut scratch = InferScratch::coalescing();
                    for _ in 0..20 {
                        let got = model.predict_proba_shared(input, 1, &mut scratch);
                        assert_eq!(&got, want);
                    }
                });
            }
        });
    }

    #[test]
    fn param_count_positive_and_stable() {
        let model = tiny_spec().build(0).unwrap();
        // conv1: 4*1*9+4 = 40; conv2: 8*4*9+8 = 296; dense: (8*2*2)*8+8 = 264;
        // out: 8*1+1 = 9. Total 609.
        assert_eq!(model.param_count(), 609);
    }
}

//! The `checked-kernels` audit feature must be bitwise-transparent: the
//! invariant assertions only observe, never compute, so every kernel
//! produces identical bits with the feature on and off.
//!
//! The proof is by reference equality in both configurations: these tests
//! compare each instrumented kernel against an independent scalar
//! reference, and CI runs the full suite twice — once plain, once with
//! `--features checked-kernels`. A checked build that perturbed any result
//! would diverge from the reference and fail here.

use tahoma_mathx::DetRng;
use tahoma_nn::gemm::{conv2d_forward, gemm, GemmScratch, Kernel, Trans};
use tahoma_nn::kernels::{matvec, maxpool2_plane, relu};

fn fill(rng: &mut DetRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.normal(0.0, 1.0) as f32).collect()
}

/// Naive triple loop, same `mul_add` chain per output element as the
/// kernels' per-element reduction order.
fn gemm_reference(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for p in 0..k {
                acc = a[i * k + p].mul_add(b[p * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
}

#[test]
fn gemm_matches_reference_under_audit_config() {
    let mut rng = DetRng::new(7);
    // Shapes spanning the direct path (small k), the blocked path (large
    // k), ragged tails, and the threaded column partition.
    for &(m, n, k) in &[(3, 5, 4), (6, 33, 12), (13, 130, 40), (7, 64, 200)] {
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let mut c = vec![0.0f32; m * n];
        let mut want = c.clone();
        gemm_reference(m, n, k, &a, &b, &mut want);
        let mut scratch = GemmScratch::default();
        gemm(&mut scratch, m, n, k, &a, Trans::N, &b, Trans::N, &mut c);
        assert_eq!(c, want, "gemm {m}x{n}x{k} diverged from reference");
    }
}

#[test]
fn conv_matches_direct_gemm_under_audit_config() {
    let mut rng = DetRng::new(11);
    let (c_in, h, w, kk, out_c) = (2, 9, 9, 3, 4);
    let hw = h * w;
    let k_total = c_in * kk * kk;
    let input = fill(&mut rng, c_in * hw);
    let weights = fill(&mut rng, out_c * k_total);
    let bias = fill(&mut rng, out_c);
    let mut out = vec![0.0f32; out_c * hw];
    let mut scratch = GemmScratch::default();
    conv2d_forward(
        &mut scratch,
        &input,
        c_in,
        h,
        w,
        kk,
        &weights,
        &bias,
        out_c,
        &mut out,
    );
    // Reference: materialize the zero-padded patch matrix and multiply.
    let pad = kk / 2;
    let mut col = vec![0.0f32; k_total * hw];
    for ci in 0..c_in {
        for ky in 0..kk {
            for kx in 0..kk {
                let row = (ci * kk + ky) * kk + kx;
                for y in 0..h {
                    for x in 0..w {
                        let (sy, sx) = (y + ky, x + kx);
                        col[row * hw + y * w + x] =
                            if sy >= pad && sy < h + pad && sx >= pad && sx < w + pad {
                                input[ci * hw + (sy - pad) * w + sx - pad]
                            } else {
                                0.0
                            };
                    }
                }
            }
        }
    }
    // The bias is fused as a write-only epilogue (`bias + sum`, with the
    // fma chain seeded from zero), so the reference must add it last.
    let mut want = vec![0.0f32; out_c * hw];
    gemm_reference(out_c, hw, k_total, &weights, &col, &mut want);
    for (o, row) in want.chunks_exact_mut(hw).enumerate() {
        for v in row {
            *v += bias[o];
        }
    }
    assert_eq!(
        out, want,
        "conv diverged from materialized-im2col reference"
    );
}

#[test]
fn layer_sweeps_match_reference_under_audit_config() {
    let mut rng = DetRng::new(23);
    // matvec
    let (n_out, n_in) = (7, 37);
    let weights = fill(&mut rng, n_out * n_in);
    let bias = fill(&mut rng, n_out);
    let x = fill(&mut rng, n_in);
    let mut out = vec![0.0f32; n_out];
    matvec(Kernel::Auto, &weights, &bias, &x, &mut out);
    for o in 0..n_out {
        // Reference replays the lane accumulation + fixed fold the
        // dispatcher documents; equality must be exact.
        let row = &weights[o * n_in..(o + 1) * n_in];
        let mut lanes = [0.0f32; 16];
        for (i, (&wv, &xv)) in row.iter().zip(&x).enumerate() {
            lanes[i % 16] = wv.mul_add(xv, lanes[i % 16]);
        }
        let a = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
        let b = ((lanes[8] + lanes[9]) + (lanes[10] + lanes[11]))
            + ((lanes[12] + lanes[13]) + (lanes[14] + lanes[15]));
        assert_eq!(out[o], bias[o] + (a + b), "matvec row {o}");
    }
    // relu
    let src = fill(&mut rng, 100);
    let mut dst = vec![0.0f32; 100];
    relu(Kernel::Auto, &src, &mut dst);
    for (d, &s) in dst.iter().zip(&src) {
        assert_eq!(*d, if s > 0.0 { s } else { 0.0 });
    }
    // maxpool
    let (h, w) = (10, 14);
    let plane = fill(&mut rng, h * w);
    let mut pooled = vec![0.0f32; (h / 2) * (w / 2)];
    maxpool2_plane(Kernel::Auto, &plane, h, w, &mut pooled);
    for oy in 0..h / 2 {
        for ox in 0..w / 2 {
            let mut best = f32::NEG_INFINITY;
            for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                let v = plane[(2 * oy + dy) * w + 2 * ox + dx];
                if v > best {
                    best = v;
                }
            }
            assert_eq!(pooled[oy * (w / 2) + ox], best);
        }
    }
}

/// Guards the CI wiring itself: the audit job's `--features
/// checked-kernels` must actually reach this crate's dependency on
/// `tahoma-mathx`, and the plain job must not.
#[test]
fn audit_configuration_is_what_the_build_requested() {
    assert_eq!(
        tahoma_mathx::checked::active(),
        cfg!(feature = "checked-kernels")
    );
}

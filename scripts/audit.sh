#!/usr/bin/env bash
# Workspace invariant audit: run the tahoma-audit linter (SAFETY.md lints
# A1-A6 plus A0 stale-allowlist detection) over every .rs file in the
# workspace, exactly as the CI audit job does. Exit status is the audit
# verdict: 0 clean, 1 violations (the report lists each one with file,
# line, and excerpt).
#
#   scripts/audit.sh              # human-readable table
#   scripts/audit.sh --json       # machine-readable report (CI artifact)
#   scripts/audit.sh --checked    # also run the test suite with every
#                                 # kernel invariant asserted at runtime
#                                 # (--features checked-kernels)
set -euo pipefail
cd "$(dirname "$0")/.."

checked=0
args=()
for a in "$@"; do
  if [ "$a" = "--checked" ]; then
    checked=1
  else
    args+=("$a")
  fi
done

cargo run -q -p tahoma-audit -- "${args[@]+"${args[@]}"}"

if [ "$checked" = 1 ]; then
  echo "== test suite under --features checked-kernels =="
  cargo test -q --features checked-kernels
fi

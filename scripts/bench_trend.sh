#!/usr/bin/env bash
# Bench-trend pipeline: run the perf-critical benches in --quick smoke mode
# with machine-readable JSON output, then gate against the committed
# baseline (fail on any >2x regression; quick-mode noise sits well inside
# that). CI calls exactly this script; run it locally to reproduce a CI
# verdict bit-for-bit.
#
# The baseline is absolute wall-clock from the machine that last ran
# --update-baseline, so the gate implicitly assumes comparable hardware;
# if CI moves to a substantially slower/faster runner class, regenerate
# the baseline there (or widen the gate via bench_trend's --max-ratio)
# rather than chasing phantom regressions.
#
#   scripts/bench_trend.sh [out_dir]             # run + compare
#   scripts/bench_trend.sh --update-baseline     # regenerate BENCH_baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

update=0
if [ "${1:-}" = "--update-baseline" ]; then
    update=1
    shift
fi
# Absolute output path: cargo runs bench binaries with the package
# directory (crates/bench) as cwd, so a relative --json would land there.
out="$(pwd)/${1:-target/bench-trend}"
mkdir -p "$out"

cargo bench -p tahoma-bench --bench nn_inference   -- --quick --json "$out/nn_inference.json"
cargo bench -p tahoma-bench --bench repr_transform -- --quick --json "$out/repr_transform.json"
# query_exec prints the interleaved reference-vs-vectorized speedup table
# and the real-NN per-stage breakdown alongside its criterion lines.
cargo bench -p tahoma-bench --bench query_exec     -- --quick --json "$out/query_exec.json" \
    2>&1 | tee "$out/query_exec.txt"
cargo bench -p tahoma-bench --bench kernel_policy  -- --quick --json "$out/kernel_policy.json" \
    | tee "$out/kernel_policy.txt"
# query_serve prints the plan-cache and coalescing interleaved ratios and
# the clients={1,4,16} QPS/latency table alongside its criterion lines.
cargo bench -p tahoma-bench --bench query_serve    -- --quick --json "$out/query_serve.json" \
    2>&1 | tee "$out/query_serve.txt"
# store_scale prints ingest/cold-open/budget-policy tables and asserts the
# persistent-vs-RAM warm-latency bar and the §V policy-beats-extremes
# comparison alongside its criterion lines.
cargo bench -p tahoma-bench --bench store_scale    -- --quick --json "$out/store_scale.json" \
    2>&1 | tee "$out/store_scale.txt"
# stream_query prints the per-tick frames/s table (two window sizes) and
# asserts the incremental-vs-rescan speedup (>= 2x at RANGE=8xSTEP) and
# incremental == rescan equivalence alongside its criterion lines.
cargo bench -p tahoma-bench --bench stream_query   -- --quick --json "$out/stream_query.json" \
    2>&1 | tee "$out/stream_query.txt"

if [ "$update" = 1 ]; then
    # Full regeneration: start from scratch so retired/renamed benchmark
    # ids are pruned (merge otherwise seeds from the existing baseline so
    # partial runs don't drop other benches' entries).
    rm -f BENCH_baseline.json
    cargo run --release -p tahoma-bench --bin bench_trend -- merge BENCH_baseline.json \
        "$out/nn_inference.json" "$out/repr_transform.json" "$out/query_exec.json" \
        "$out/kernel_policy.json" "$out/query_serve.json" "$out/store_scale.json" \
        "$out/stream_query.json"
else
    cargo run --release -p tahoma-bench --bin bench_trend -- compare BENCH_baseline.json \
        "$out/nn_inference.json" "$out/repr_transform.json" "$out/query_exec.json" \
        "$out/kernel_policy.json" "$out/query_serve.json" "$out/store_scale.json" \
        "$out/stream_query.json" | tee "$out/trend.txt"
fi

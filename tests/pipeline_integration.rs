//! End-to-end integration: surrogate repository -> thresholds -> cascades ->
//! frontiers -> selection, spanning zoo, costmodel and core.

use tahoma::prelude::*;

fn small_system(kind: ObjectKind, seed: u64) -> tahoma::core::pipeline::TahomaSystem {
    let pred = PredicateSpec::for_kind(kind);
    let cfg = SurrogateBuildConfig {
        n_config: 250,
        n_eval: 400,
        seed,
        variants: Some(paper_variants().into_iter().step_by(7).collect()),
        ..Default::default()
    };
    let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
    tahoma::core::pipeline::TahomaSystem::initialize_paper_main(repo)
}

#[test]
fn frontier_accuracy_is_scenario_invariant() {
    // Accuracy depends only on model outputs; scenario pricing may reorder
    // cascades but never change any cascade's accuracy.
    let system = small_system(ObjectKind::Fence, 1);
    let profilers: Vec<AnalyticProfiler> = Scenario::ALL
        .iter()
        .map(|&s| AnalyticProfiler::paper_testbed(s))
        .collect();
    let base: Vec<f32> = system
        .outcomes
        .outcomes
        .iter()
        .map(|o| o.accuracy)
        .collect();
    for p in &profilers {
        for point in &system.frontier(p).points {
            assert!((point.accuracy - base[point.idx] as f64).abs() < 1e-9);
        }
    }
}

#[test]
fn every_scenario_yields_a_nonincreasing_throughput_vs_infer_only() {
    // Data handling can only add cost: for the same cascade, INFER-ONLY
    // throughput is an upper bound for every scenario.
    let system = small_system(ObjectKind::Scorpion, 2);
    let infer = AnalyticProfiler::paper_testbed(Scenario::InferOnly);
    let infer_points = system.priced_points(&infer);
    for scenario in [Scenario::Archive, Scenario::Ongoing, Scenario::Camera] {
        let pts = system.priced_points(&AnalyticProfiler::paper_testbed(scenario));
        for (i, ((_, t_scen), (_, t_infer))) in pts.iter().zip(&infer_points).enumerate() {
            assert!(
                *t_scen <= t_infer + 1e-9,
                "cascade {i} faster under {scenario} than INFER-ONLY: {t_scen} > {t_infer}"
            );
        }
    }
}

#[test]
fn selection_is_consistent_with_frontier_membership() {
    let system = small_system(ObjectKind::Komondor, 3);
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
    let frontier = system.frontier(&profiler);
    for loss in [0.0, 0.03, 0.08, 0.15] {
        let chosen = system
            .select(
                &profiler,
                Constraints {
                    max_accuracy_loss: Some(loss),
                    max_throughput_loss: None,
                },
            )
            .expect("feasible");
        // The chosen operating point must be one of the frontier's points.
        assert!(
            frontier
                .points
                .iter()
                .any(|p| (p.accuracy - chosen.accuracy).abs() < 1e-12
                    && (p.throughput - chosen.throughput).abs() < 1e-9),
            "selected point not on frontier"
        );
    }
}

#[test]
fn deeper_budget_never_reduces_throughput() {
    let system = small_system(ObjectKind::Wallet, 4);
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Camera);
    let mut last = 0.0f64;
    for loss in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let chosen = system
            .select(
                &profiler,
                Constraints {
                    max_accuracy_loss: Some(loss),
                    max_throughput_loss: None,
                },
            )
            .expect("feasible");
        assert!(
            chosen.throughput >= last - 1e-9,
            "loss {loss}: throughput decreased {last} -> {}",
            chosen.throughput
        );
        last = chosen.throughput;
    }
}

#[test]
fn initialization_is_deterministic_end_to_end() {
    let a = small_system(ObjectKind::Coho, 9);
    let b = small_system(ObjectKind::Coho, 9);
    assert_eq!(a.n_cascades(), b.n_cascades());
    for (oa, ob) in a.outcomes.outcomes.iter().zip(&b.outcomes.outcomes) {
        assert_eq!(oa.accuracy, ob.accuracy);
        assert_eq!(oa.stop_counts, ob.stop_counts);
    }
    let pa = AnalyticProfiler::paper_testbed(Scenario::Camera);
    let fa = a.frontier(&pa);
    let fb = b.frontier(&pa);
    assert_eq!(fa.points.len(), fb.points.len());
}

#[test]
fn paper_headline_shape_holds_at_reduced_scale() {
    // The reproduction's contract: under INFER-ONLY, TAHOMA at >= ResNet50
    // accuracy is at least an order of magnitude faster; under ARCHIVE it
    // still wins but by a compressed factor.
    let system = small_system(ObjectKind::Pinwheel, 5);
    let resnet = system.repo.resnet.expect("resnet");
    let resnet_fps = 1.0 / system.repo.entry(resnet).infer_s;

    let infer = AnalyticProfiler::paper_testbed(Scenario::InferOnly);
    let fast = system.select_matching_model(&infer, resnet).unwrap();
    let speedup_infer = fast.throughput / resnet_fps;
    assert!(
        speedup_infer > 10.0,
        "INFER-ONLY speedup {speedup_infer:.1}"
    );

    let archive = AnalyticProfiler::paper_testbed(Scenario::Archive);
    let arch_pick = system.select_matching_model(&archive, resnet).unwrap();
    let resnet_archive_fps = {
        let entry = system.repo.entry(resnet);
        let c = archive.model_cost(entry.variant.input, entry.flops);
        1.0 / (c.load_s + c.transform_s + entry.infer_s)
    };
    let speedup_archive = arch_pick.throughput / resnet_archive_fps;
    assert!(
        speedup_archive > 1.0 && speedup_archive < speedup_infer,
        "ARCHIVE speedup {speedup_archive:.1} vs INFER-ONLY {speedup_infer:.1}"
    );
}

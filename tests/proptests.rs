//! Property-based tests on the core invariants (proptest).

use proptest::prelude::*;
use tahoma::core::alc;
use tahoma::core::order::nan_last;
use tahoma::core::pareto::{is_pareto_optimal, pareto_frontier};
use tahoma::core::planner::{order_predicates, PlannedPredicate};
use tahoma::core::thresholds::{calibrate, negative_precision, positive_precision};
use tahoma::core::Cascade;
use tahoma::imagery::engine::{Kernel as TKernel, TranscodeCosts, TranscodeEngine, TranscodePlan};
use tahoma::imagery::repr::apply_reference;
use tahoma::imagery::{
    transform, BlockCodec, Codec, ColorMode, Image, ObjectKind, RawCodec, Representation,
};
use tahoma::mathx::simd_policy::{KernelPolicy, OpClass, SimdTier};
use tahoma::nn::gemm::{self, GemmScratch, Kernel, Trans};
use tahoma::nn::{kernels, Conv2d, Dense, Layer, MaxPool2, Shape};

/// Fresh scratch directory for store property tests (unique per case so
/// shrinking never observes a previous case's files).
fn proptest_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "tahoma-prop-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Decode a selector pair into a float that may be perfectly ordinary or
/// one of the degenerate values the planner must survive: ±∞, NaN, zero.
fn degenerate_f64(selector: u32, raw: f64) -> f64 {
    match selector % 6 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        _ => raw,
    }
}

/// The observable ordering key of a planned predicate (bit-exact so NaNs
/// compare equal to themselves across permutations).
fn planner_key(p: &PlannedPredicate) -> (u64, u64, ObjectKind) {
    (p.expected_cost_s.to_bits(), p.selectivity.to_bits(), p.kind)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every kernel tier and thread count of the GEMM-path convolution
    /// forward agrees with the legacy scalar loop across random shapes,
    /// kernel sizes and weights (the GEMM paths sum in a different order
    /// than the scalar loop, so that comparison holds to a k-scaled float
    /// tolerance; the tiers are additionally bitwise identical to *each
    /// other*). Shapes up to `c_in = 3` with `kk = 3` keep the AVX-512
    /// wide small-k tile in play.
    #[test]
    fn conv_gemm_forward_matches_scalar_loop(
        c_in in 1usize..5, out_c in 1usize..9,
        h in 1usize..14, w in 1usize..14,
        half_k in 0usize..3, seed in 0u64..10_000, threads in 1usize..4
    ) {
        let shape = Shape::new(c_in, h, w);
        let kk = 2 * half_k + 1;
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let mut conv = Conv2d::new(shape, out_c, kk, &mut rng);
        let input: Vec<f32> = (0..shape.len())
            .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
            .collect();
        let scalar = conv.forward_scalar(&input);
        let (weights, bias) = conv.weights_bias();
        let (weights, bias) = (weights.to_vec(), bias.to_vec());
        let k_total = (c_in * kk * kk) as f32;
        let mut baseline: Option<Vec<f32>> = None;
        for kernel in Kernel::available() {
            let mut scratch = GemmScratch::with_kernel(kernel);
            scratch.threads = Some(threads);
            let mut got = vec![f32::NAN; out_c * h * w];
            gemm::conv2d_forward(
                &mut scratch, &input, c_in, h, w, kk, &weights, &bias, out_c, &mut got,
            );
            prop_assert_eq!(scalar.len(), got.len());
            for (i, (&a, &b)) in scalar.iter().zip(&got).enumerate() {
                let tol = 1e-5 * (1.0 + a.abs()) * k_total.sqrt().max(1.0);
                prop_assert!(
                    (a - b).abs() <= tol,
                    "shape {}x{}x{} k{} out{} kernel {} threads {} idx {}: scalar {} gemm {}",
                    c_in, h, w, kk, out_c, kernel.name(), threads, i, a, b
                );
            }
            match &baseline {
                None => baseline = Some(got),
                Some(base) => prop_assert_eq!(
                    base, &got, "conv kernel {} diverges bitwise", kernel.name()
                ),
            }
        }
    }

    /// `forward_batch` agrees with per-image `forward` for every image slot
    /// and batch size, including batch=1 (the wrapper the per-image API is
    /// built on).
    #[test]
    fn conv_forward_batch_matches_per_image(
        c_in in 1usize..4, out_c in 1usize..8,
        h in 2usize..11, w in 2usize..11,
        batch in 1usize..6, seed in 0u64..10_000
    ) {
        let shape = Shape::new(c_in, h, w);
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let mut conv = Conv2d::new(shape, out_c, 3, &mut rng);
        let input: Vec<f32> = (0..batch * shape.len())
            .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
            .collect();
        let mut batched = Vec::new();
        conv.forward_batch(&input, batch, &mut batched, true);
        let out_len = conv.output_shape().len();
        prop_assert_eq!(batched.len(), batch * out_len);
        for b in 0..batch {
            let single = conv.forward(&input[b * shape.len()..(b + 1) * shape.len()]);
            for (i, (&x, &y)) in single
                .iter()
                .zip(&batched[b * out_len..(b + 1) * out_len])
                .enumerate()
            {
                prop_assert!(
                    (x - y).abs() <= 1e-5 * (1.0 + x.abs()),
                    "image {} idx {}: single {} batched {}", b, i, x, y
                );
            }
        }
    }

    /// `order_predicates` never panics on degenerate statistics (NaN, ±∞,
    /// zero), yields an order that is total (ranks non-decreasing under the
    /// NaN-last ordering, with documented tie-breaks), and is invariant to
    /// the input permutation.
    #[test]
    fn order_predicates_is_total_and_permutation_invariant(
        specs in prop::collection::vec(
            ((0u32..6, 0.0f64..0.1), (0u32..6, 0.0f64..1.0)), 0..24),
        rotate in 0usize..24
    ) {
        let preds: Vec<PlannedPredicate> = specs
            .iter()
            .enumerate()
            .map(|(i, &((cs, craw), (ss, sraw)))| PlannedPredicate {
                kind: ObjectKind::ALL[i % ObjectKind::ALL.len()],
                cascade: Cascade::single(0),
                expected_cost_s: degenerate_f64(cs, craw),
                selectivity: degenerate_f64(ss, sraw),
            })
            .collect();
        let ordered = order_predicates(preds.clone());
        prop_assert_eq!(ordered.len(), preds.len());

        // Ranks come out non-decreasing under the NaN-last total order,
        // and rank ties are cost-ordered (NaN cost last).
        for w in ordered.windows(2) {
            let rank_cmp = nan_last(w[0].rank(), w[1].rank());
            prop_assert!(rank_cmp != std::cmp::Ordering::Greater,
                "ranks out of order: {} then {}", w[0].rank(), w[1].rank());
            if rank_cmp == std::cmp::Ordering::Equal {
                prop_assert!(
                    nan_last(w[0].expected_cost_s, w[1].expected_cost_s)
                        != std::cmp::Ordering::Greater,
                    "rank tie but costs out of order: {} then {}",
                    w[0].expected_cost_s, w[1].expected_cost_s
                );
            }
        }

        // Multiset preserved: same keys in, same keys out.
        let mut in_keys: Vec<_> = preds.iter().map(planner_key).collect();
        let mut out_keys: Vec<_> = ordered.iter().map(planner_key).collect();
        in_keys.sort();
        out_keys.sort();
        prop_assert_eq!(in_keys, out_keys);

        // Permutation invariance: a rotated input produces the same order.
        let mut rotated = preds.clone();
        let len = rotated.len();
        if len > 0 {
            rotated.rotate_left(rotate % len);
        }
        let reordered = order_predicates(rotated);
        let a: Vec<_> = ordered.iter().map(planner_key).collect();
        let b: Vec<_> = reordered.iter().map(planner_key).collect();
        prop_assert_eq!(a, b);
    }

    /// Every runtime-dispatchable GEMM tier, at every thread count, is
    /// bitwise identical to the portable single-threaded kernel (all tiers
    /// run the same per-element fused chain; column-splitting never changes
    /// accumulation order) and epsilon-close to an f64 reference.
    #[test]
    fn gemm_kernels_and_threads_agree(
        m in 1usize..20, n in 1usize..80, k in 1usize..40,
        seed in 0u64..10_000, trans_sel in 0u32..4
    ) {
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_in(-1.0, 1.0) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_in(-1.0, 1.0) as f32).collect();
        let (ta, tb) = [
            (Trans::N, Trans::N),
            (Trans::N, Trans::T),
            (Trans::T, Trans::N),
            (Trans::T, Trans::T),
        ][trans_sel as usize];

        // f64 reference.
        let at = |i: usize, p: usize| match ta { Trans::N => a[i * k + p], Trans::T => a[p * m + i] };
        let bt = |p: usize, j: usize| match tb { Trans::N => b[p * n + j], Trans::T => b[j * k + p] };
        let mut reference = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += at(i, p) as f64 * bt(p, j) as f64;
                }
                reference[i * n + j] = acc as f32;
            }
        }

        let mut baseline: Option<Vec<f32>> = None;
        for kernel in Kernel::available() {
            for threads in [1usize, 2, 3] {
                let mut scratch = GemmScratch::with_kernel(kernel);
                scratch.threads = Some(threads);
                let mut c = vec![0.0f32; m * n];
                gemm::gemm(&mut scratch, m, n, k, &a, ta, &b, tb, &mut c);
                for (i, (&got, &want)) in c.iter().zip(&reference).enumerate() {
                    let tol = 1e-5 * (1.0 + want.abs()) * (k as f32).sqrt();
                    prop_assert!(
                        (got - want).abs() <= tol,
                        "({},{},{}) {:?}{:?} kernel {} threads {} idx {}: {} vs {}",
                        m, n, k, ta, tb, kernel.name(), threads, i, got, want
                    );
                }
                match &baseline {
                    None => baseline = Some(c),
                    Some(base) => prop_assert_eq!(
                        base, &c,
                        "kernel {} threads {} not bitwise identical", kernel.name(), threads
                    ),
                }
            }
        }
    }

    /// The frontier is Pareto-optimal and every non-member is dominated.
    #[test]
    fn pareto_frontier_is_sound_and_complete(
        points in prop::collection::vec((0.0f32..1.0, 1.0f64..1e5), 1..300)
    ) {
        let acc: Vec<f32> = points.iter().map(|(a, _)| *a).collect();
        let thr: Vec<f64> = points.iter().map(|(_, t)| *t).collect();
        let frontier = pareto_frontier(&acc, &thr);
        prop_assert!(!frontier.is_empty());
        prop_assert!(is_pareto_optimal(&frontier, &acc, &thr));
        let members: std::collections::HashSet<usize> =
            frontier.iter().map(|p| p.idx).collect();
        for i in 0..acc.len() {
            if !members.contains(&i) {
                let dominated = frontier.iter().any(|p| {
                    p.accuracy >= acc[i] as f64 && p.throughput >= thr[i]
                });
                prop_assert!(dominated, "point {} not dominated", i);
            }
        }
    }

    /// ALC is monotone in the point set: adding points never shrinks it.
    #[test]
    fn alc_monotone_under_point_addition(
        base in prop::collection::vec((0.5f64..1.0, 1.0f64..1e4), 1..50),
        extra in prop::collection::vec((0.5f64..1.0, 1.0f64..1e4), 1..20)
    ) {
        let lo = 0.5;
        let hi = 1.0;
        let a1 = alc::alc(&base, lo, hi);
        let mut all = base.clone();
        all.extend(extra);
        let a2 = alc::alc(&all, lo, hi);
        prop_assert!(a2 >= a1 - 1e-9, "ALC shrank: {a1} -> {a2}");
    }

    /// ALC is additive over adjacent accuracy ranges.
    #[test]
    fn alc_splits_over_ranges(
        points in prop::collection::vec((0.5f64..1.0, 1.0f64..1e4), 1..60),
        mid in 0.6f64..0.9
    ) {
        let total = alc::alc(&points, 0.5, 1.0);
        let left = alc::alc(&points, 0.5, mid);
        let right = alc::alc(&points, mid, 1.0);
        prop_assert!((total - left - right).abs() < 1e-6 * total.max(1.0));
    }

    /// Calibrated thresholds always meet the precision target on the data
    /// they were calibrated on (whenever they decide anything at all).
    #[test]
    fn calibration_meets_target_precision(
        seed in 0u64..1000,
        target in 0.85f64..0.99,
        n in 50usize..300
    ) {
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2 == 0;
            let mu = if label { 0.65 } else { 0.35 };
            scores.push((mu + 0.2 * rng.standard_normal()).clamp(0.0, 1.0) as f32);
            labels.push(label);
        }
        let thr = calibrate(&scores, &labels, target);
        prop_assert!(thr.p_low < thr.p_high);
        if let Some(p) = positive_precision(thr, &scores, &labels) {
            prop_assert!(p >= target - 1e-9, "positive precision {p} < {target}");
        }
        if let Some(p) = negative_precision(thr, &scores, &labels) {
            prop_assert!(p >= target - 1e-9, "negative precision {p} < {target}");
        }
    }

    /// Raw codec roundtrip error is bounded by quantization everywhere.
    #[test]
    fn raw_codec_roundtrip(
        w in 1usize..24, h in 1usize..24, seed in 0u64..500
    ) {
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let img = Image::from_fn(w, h, ColorMode::Rgb, |_, _, _| {
            rng.uniform() as f32
        }).unwrap();
        let out = RawCodec.decode(&RawCodec.encode(&img)).unwrap();
        for (a, b) in img.data().iter().zip(out.data()) {
            prop_assert!((a - b).abs() <= 0.5 / 255.0 + 1e-6);
        }
    }

    /// Block codec roundtrip error is bounded by its quantization step.
    #[test]
    fn block_codec_roundtrip(
        seed in 0u64..200, quality in 20u8..95
    ) {
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let img = Image::from_fn(16, 16, ColorMode::Gray, |_, _, _| {
            rng.uniform() as f32
        }).unwrap();
        let codec = BlockCodec::new(quality);
        let out = codec.decode(&codec.encode(&img)).unwrap();
        // step/255 residual quantization + mean quantization slack.
        let bound = (2.0 + (100.0 - quality as f32) * 62.0 / 99.0) / 255.0 + 2.0 / 255.0;
        for (a, b) in img.data().iter().zip(out.data()) {
            prop_assert!((a - b).abs() <= bound, "err {} > bound {bound}", (a - b).abs());
        }
    }

    /// Horizontal flip is an involution on arbitrary images.
    #[test]
    fn flip_involution(w in 1usize..20, h in 1usize..20, seed in 0u64..100) {
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let img = Image::from_fn(w, h, ColorMode::Rgb, |_, _, _| rng.uniform() as f32).unwrap();
        let back = transform::flip_horizontal(&transform::flip_horizontal(&img));
        prop_assert_eq!(img, back);
    }

    /// Bilinear resize output stays within the input's value range.
    #[test]
    fn resize_respects_range(
        w in 2usize..32, h in 2usize..32, ow in 1usize..32, oh in 1usize..32,
        seed in 0u64..100
    ) {
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let img = Image::from_fn(w, h, ColorMode::Gray, |_, _, _| rng.uniform() as f32).unwrap();
        let lo = img.data().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = img.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let out = transform::resize_bilinear(&img, ow, oh).unwrap();
        for &v in out.data() {
            prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5);
        }
    }

    /// Every transcode-engine kernel tier resizes bitwise-identically to
    /// the scalar reference loop across arbitrary shapes and color modes —
    /// the separable two-pass sweep evaluates the same lerp chain per
    /// output pixel.
    #[test]
    fn transcode_resize_tiers_match_reference_bitwise(
        w in 1usize..40, h in 1usize..40, ow in 1usize..40, oh in 1usize..40,
        mode_sel in 0usize..5, seed in 0u64..1000
    ) {
        let mode = ColorMode::ALL[mode_sel];
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let src = Image::from_fn(w, h, mode, |_, _, _| rng.uniform() as f32).unwrap();
        let want = transform::resize_bilinear_reference(&src, ow, oh).unwrap();
        for kernel in TKernel::available() {
            let mut e = TranscodeEngine::with_kernel(kernel);
            let got = e.resize_bilinear(&src, ow, oh).unwrap();
            prop_assert_eq!(got.data(), want.data(), "tier {}", kernel.name());
        }
    }

    /// Engine `apply`, the lattice-planned `apply_planned`, and `apply_batch`
    /// all produce outputs bitwise identical to the seed reference pipeline,
    /// on every kernel tier, for arbitrary (non-square) sources and target
    /// sets — including with recycled output buffers (steady-state serving).
    #[test]
    fn transcode_lattice_matches_direct_reference_bitwise(
        w in 1usize..48, h in 1usize..48,
        sizes in prop::collection::vec(1usize..48, 1..5),
        mode_sels in prop::collection::vec(0usize..5, 1..5),
        seed in 0u64..1000, batch in 1usize..3
    ) {
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let frames: Vec<Image> = (0..batch)
            .map(|_| Image::from_fn(w, h, ColorMode::Rgb, |_, _, _| rng.uniform() as f32).unwrap())
            .collect();
        let reps: Vec<Representation> = sizes
            .iter()
            .zip(mode_sels.iter().cycle())
            .map(|(&s, &m)| Representation::new(s, ColorMode::ALL[m]))
            .collect();
        let references: Vec<Vec<Image>> = frames
            .iter()
            .map(|f| reps.iter().map(|&r| apply_reference(f, r).unwrap()).collect())
            .collect();
        for kernel in TKernel::available() {
            let mut e = TranscodeEngine::with_kernel(kernel);
            // Per-rep apply.
            for (f, refs) in frames.iter().zip(&references) {
                for (&rep, want) in reps.iter().zip(refs) {
                    let got = e.apply(f, rep).unwrap();
                    prop_assert_eq!(got.data(), want.data(), "apply tier {} rep {}", kernel.name(), rep);
                    prop_assert_eq!(got.mode(), want.mode());
                    e.recycle([got]);
                }
            }
            // Lattice-planned set, buffers recycled between frames.
            let plan = TranscodePlan::new(w, h, &reps, &TranscodeCosts::default());
            for (f, refs) in frames.iter().zip(&references) {
                let got = e.apply_planned(f, &plan).unwrap();
                for ((img, want), &rep) in got.iter().zip(refs).zip(&reps) {
                    prop_assert_eq!(
                        img.data(), want.data(),
                        "planned tier {} rep {}", kernel.name(), rep
                    );
                }
                e.recycle(got);
            }
            // Batch API.
            let batched = e.apply_batch(&frames, &reps).unwrap();
            for (per_frame, refs) in batched.iter().zip(&references) {
                for (img, want) in per_frame.iter().zip(refs) {
                    prop_assert_eq!(img.data(), want.data(), "batch tier {}", kernel.name());
                }
            }
        }
    }

    /// Every standardize tier agrees bitwise (shared eight-lane f64
    /// reduction) and produces zero mean / unit variance on non-constant
    /// images.
    #[test]
    fn transcode_standardize_tiers_agree_bitwise(
        w in 1usize..40, h in 1usize..40, mode_sel in 0usize..5, seed in 0u64..1000
    ) {
        let mode = ColorMode::ALL[mode_sel];
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let src = Image::from_fn(w, h, mode, |_, _, _| rng.uniform() as f32).unwrap();
        let mut base: Option<Image> = None;
        for kernel in TKernel::available() {
            let mut e = TranscodeEngine::with_kernel(kernel);
            let s = e.standardize(&src);
            match &base {
                None => base = Some(s),
                Some(b) => prop_assert_eq!(
                    b.data(), s.data(), "standardize tier {} diverges", kernel.name()
                ),
            }
        }
        let s = base.expect("portable tier always runs");
        let data = s.data();
        let mean: f64 = data.iter().map(|&v| v as f64).sum::<f64>() / data.len() as f64;
        prop_assert!(mean.abs() < 1e-3, "mean {mean}");
        let var: f64 = data.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>()
            / data.len() as f64;
        // Either standardized (var ~ 1) or a constant image mapped to zero.
        prop_assert!((var - 1.0).abs() < 1e-2 || data.iter().all(|&v| v == 0.0), "var {var}");
    }

    /// The lattice plan never prices a set above the naive per-target
    /// direct pipeline by more than the documented mild-downscale slack,
    /// and sharing makes gray-heavy sets strictly cheaper.
    #[test]
    fn transcode_plan_pricing_is_honest(
        src in 8usize..256,
        sizes in prop::collection::vec(1usize..256, 1..8),
        mode_sels in prop::collection::vec(0usize..5, 1..8)
    ) {
        let reps: Vec<Representation> = sizes
            .iter()
            .zip(mode_sels.iter().cycle())
            .map(|(&s, &m)| Representation::new(s, ColorMode::ALL[m]))
            .collect();
        let plan = TranscodePlan::new(src, src, &reps, &TranscodeCosts::default());
        prop_assert!(plan.planned_cost_s().is_finite() && plan.planned_cost_s() >= 0.0);
        // The gather-read model can exceed the naive all-input-samples
        // model only on mild downscales, bounded by 2*out/in per axis.
        prop_assert!(
            plan.planned_cost_s() <= plan.direct_cost_s() * 2.0 + 1e-12,
            "planned {} vs direct {}", plan.planned_cost_s(), plan.direct_cost_s()
        );
        // The execution order is a permutation of the target set.
        let mut order = plan.order().to_vec();
        order.sort_unstable();
        prop_assert_eq!(order, (0..reps.len()).collect::<Vec<_>>());
    }

    /// Every matvec kernel tier is bitwise identical to the portable
    /// 16-lane reference (same per-lane fused chain, same fold tree) and
    /// epsilon-close to an f64 dot product, across arbitrary shapes —
    /// including n_in below one vector and ragged tails.
    #[test]
    fn matvec_tiers_agree_bitwise(
        n_out in 1usize..24, n_in in 1usize..300, seed in 0u64..10_000
    ) {
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let weights: Vec<f32> = (0..n_out * n_in)
            .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
            .collect();
        let bias: Vec<f32> = (0..n_out).map(|_| rng.uniform_in(-1.0, 1.0) as f32).collect();
        let x: Vec<f32> = (0..n_in).map(|_| rng.uniform_in(-1.0, 1.0) as f32).collect();
        let mut reference = vec![0.0f32; n_out];
        for o in 0..n_out {
            let mut acc = bias[o] as f64;
            for i in 0..n_in {
                acc += weights[o * n_in + i] as f64 * x[i] as f64;
            }
            reference[o] = acc as f32;
        }
        let mut baseline: Option<Vec<f32>> = None;
        for kernel in Kernel::available() {
            let mut out = vec![f32::NAN; n_out];
            kernels::matvec(kernel, &weights, &bias, &x, &mut out);
            for (o, (&got, &want)) in out.iter().zip(&reference).enumerate() {
                let tol = 1e-5 * (1.0 + want.abs()) * (n_in as f32).sqrt();
                prop_assert!(
                    (got - want).abs() <= tol,
                    "{}x{} out {} kernel {}: {} vs {}", n_out, n_in, o, kernel.name(), got, want
                );
            }
            match &baseline {
                None => baseline = Some(out),
                Some(base) => prop_assert_eq!(
                    base, &out, "matvec tier {} diverges bitwise", kernel.name()
                ),
            }
        }
        // The layer's batch-1 forward is exactly this kernel.
        let mut dense = Dense::from_parts(n_in, n_out, weights.clone(), bias.clone());
        let single = dense.forward(&x);
        prop_assert_eq!(&single, baseline.as_ref().unwrap());
    }

    /// Every ReLU tier is bitwise identical to the strict `> 0` select
    /// across arbitrary inputs including NaN, ±0 and ±∞ — and matches the
    /// training path's masked semantics.
    #[test]
    fn relu_tiers_agree_bitwise(
        vals in prop::collection::vec((0u32..8, -1.0f32..1.0), 1..200)
    ) {
        let src: Vec<f32> = vals
            .iter()
            .map(|&(sel, raw)| match sel {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                3 => 0.0,
                4 => -0.0,
                _ => raw,
            })
            .collect();
        let want: Vec<u32> = src
            .iter()
            .map(|&v| (if v > 0.0 { v } else { 0.0 }).to_bits())
            .collect();
        for kernel in Kernel::available() {
            let mut dst = vec![f32::NAN; src.len()];
            kernels::relu(kernel, &src, &mut dst);
            let got: Vec<u32> = dst.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&got, &want, "relu tier {} diverges", kernel.name());
        }
    }

    /// Every max-pool tier is bitwise identical to the training path's
    /// scalar argmax pool across arbitrary shapes (odd dims exercise the
    /// floor semantics, small dims the all-tail path).
    #[test]
    fn maxpool_tiers_agree_bitwise(
        c in 1usize..4, h in 2usize..40, w in 2usize..40, seed in 0u64..10_000
    ) {
        let shape = Shape::new(c, h, w);
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let input: Vec<f32> = (0..shape.len())
            .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
            .collect();
        let mut pool = MaxPool2::new(shape);
        // cache=true runs the scalar argmax reference; cache=false the
        // dispatched SIMD sweep — they must agree bitwise.
        let mut want = Vec::new();
        pool.forward_batch(&input, 1, &mut want, true);
        let mut got = Vec::new();
        pool.forward_batch(&input, 1, &mut got, false);
        prop_assert_eq!(&want, &got, "inference pool diverges from argmax pool");
        // And each explicit tier matches too.
        let (oh, ow) = (h / 2, w / 2);
        for kernel in Kernel::available() {
            let mut plane_out = vec![f32::NAN; oh * ow];
            for ch in 0..c {
                kernels::maxpool2_plane(
                    kernel, &input[ch * h * w..(ch + 1) * h * w], h, w, &mut plane_out,
                );
                prop_assert_eq!(
                    &want[ch * oh * ow..(ch + 1) * oh * ow], &plane_out[..],
                    "pool tier {} ch {} diverges", kernel.name(), ch
                );
            }
        }
    }

    /// A kernel policy round-trips through its serialized text form for
    /// arbitrary tier assignments, and the `class=tier` override spec
    /// applies entry-wise on top of any base policy.
    #[test]
    fn kernel_policy_round_trips(
        tiers in prop::collection::vec(0usize..4, OpClass::ALL.len()..OpClass::ALL.len() + 1),
        override_sel in prop::collection::vec(0usize..4, OpClass::ALL.len()..OpClass::ALL.len() + 1),
        n_overrides in 0usize..9
    ) {
        let mut policy = KernelPolicy::heuristic();
        for (class, &t) in OpClass::ALL.into_iter().zip(&tiers) {
            policy.set(class, SimdTier::ALL[t]);
        }
        let text = policy.serialize();
        prop_assert_eq!(KernelPolicy::parse(&text).unwrap(), policy.clone());

        // Env-style override: the first n classes forced per the spec,
        // the rest untouched.
        let spec: Vec<String> = OpClass::ALL
            .into_iter()
            .zip(&override_sel)
            .take(n_overrides)
            .map(|(class, &t)| format!("{}={}", class.name(), SimdTier::ALL[t].name()))
            .collect();
        let mut overridden = policy.clone();
        overridden.apply_override(&spec.join(",")).unwrap();
        for (i, (class, &t)) in OpClass::ALL.into_iter().zip(&override_sel).enumerate() {
            let want = if i < n_overrides {
                SimdTier::ALL[t]
            } else {
                policy.tier(class)
            };
            prop_assert_eq!(overridden.tier(class), want, "class {}", class.name());
        }
    }

    /// Segment framing round-trips arbitrary (id, representation,
    /// payload) sets — payloads of any bytes including empty, duplicate
    /// keys resolving last-write-wins — through append → fetch, and again
    /// through sync → reopen (the recovery scan), in both access modes.
    #[test]
    fn segment_framing_roundtrips_arbitrary_records(
        recs in prop::collection::vec(
            (0u64..1000, 0usize..5, 1usize..90,
             prop::collection::vec(0u8..255, 0..300)),
            1..32),
        shards in 1usize..5,
        mode_sel in 0usize..2,
    ) {
        use std::collections::BTreeMap;
        use tahoma::imagery::{AccessMode, SegmentStore};
        let mode = [AccessMode::Mmap, AccessMode::Pread][mode_sel];
        let dir = proptest_dir("segment-framing");
        let store = SegmentStore::create(&dir, shards, mode).unwrap();
        let mut expect: BTreeMap<(u64, Representation), Vec<u8>> = BTreeMap::new();
        for (id, m, size, payload) in &recs {
            let rep = Representation::new(*size, ColorMode::ALL[*m]);
            store.append(*id, rep, payload).unwrap();
            expect.insert((*id, rep), payload.clone());
        }
        let mut scratch = Vec::new();
        for ((id, rep), want) in &expect {
            let got = store
                .with_payload(*id, *rep, &mut scratch, |b| b.to_vec())
                .unwrap();
            prop_assert_eq!(got.as_ref(), Some(want), "live fetch {} {}", id, rep);
        }
        store.sync().unwrap();
        prop_assert_eq!(store.records(), recs.len() as u64);
        drop(store);

        let (reopened, report) = SegmentStore::open(&dir, shards, mode).unwrap();
        prop_assert_eq!(report.truncated_bytes, 0, "clean reopen truncated bytes");
        prop_assert_eq!(report.records, recs.len() as u64);
        for ((id, rep), want) in &expect {
            let got = reopened
                .with_payload(*id, *rep, &mut scratch, |b| b.to_vec())
                .unwrap();
            prop_assert_eq!(got.as_ref(), Some(want), "reopened fetch {} {}", id, rep);
        }
        prop_assert_eq!(reopened.verify_all().unwrap(), recs.len() as u64);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The persistent tier is invisible at the byte level: the same
    /// frames ingested into a RAM store and a segment-backed store decode
    /// to bitwise-identical pixels for every representation, both live
    /// and after sync → reopen.
    #[test]
    fn persistent_store_tier_matches_ram_bitwise(
        n in 1usize..10, src in 8usize..40, seed in 0u64..1000,
        sizes in prop::collection::vec(1usize..32, 1..4),
        mode_sels in prop::collection::vec(0usize..5, 1..4),
    ) {
        use tahoma::imagery::{RepresentationStore, TranscodeEngine};
        let mut reps: Vec<Representation> = Vec::new();
        for (&s, &m) in sizes.iter().zip(mode_sels.iter().cycle()) {
            let rep = Representation::new(s, ColorMode::ALL[m]);
            if !reps.contains(&rep) {
                reps.push(rep);
            }
        }
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            frames.push(
                Image::from_fn(src, src, ColorMode::Rgb, |_, _, _| rng.uniform() as f32)
                    .unwrap(),
            );
        }
        let dir = proptest_dir("store-tier");
        let ram = RepresentationStore::new(reps.clone());
        let disk = RepresentationStore::persistent(reps.clone(), &dir, 3).unwrap();
        for (i, f) in frames.iter().enumerate() {
            ram.ingest(i as u64, f).unwrap();
            disk.ingest(i as u64, f).unwrap();
        }
        let mut engine = TranscodeEngine::new();
        for id in 0..n as u64 {
            for &rep in &reps {
                let a = ram.fetch(id, rep, &mut engine).unwrap().unwrap();
                let b = disk.fetch(id, rep, &mut engine).unwrap().unwrap();
                prop_assert_eq!(a.data(), b.data(), "live {} {}", id, rep);
                engine.recycle([a, b]);
            }
        }
        disk.sync().unwrap();
        drop(disk);
        let (reopened, _report) = RepresentationStore::open(&dir).unwrap();
        for id in 0..n as u64 {
            for &rep in &reps {
                let a = ram.fetch(id, rep, &mut engine).unwrap().unwrap();
                let b = reopened.fetch(id, rep, &mut engine).unwrap().unwrap();
                prop_assert_eq!(a.data(), b.data(), "reopened {} {}", id, rep);
                engine.recycle([a, b]);
            }
        }
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// DetRng is insensitive to interleaving: two streams derived from
    /// different coordinates never correlate exactly.
    #[test]
    fn rng_streams_are_distinct(seed in 0u64..10_000) {
        let mut a = tahoma::mathx::DetRng::from_coords(seed, 0);
        let mut b = tahoma::mathx::DetRng::from_coords(seed, 1);
        let matches = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        prop_assert!(matches < 4);
    }
}

//! Property-based tests on the core invariants (proptest).

use proptest::prelude::*;
use tahoma::core::alc;
use tahoma::core::pareto::{is_pareto_optimal, pareto_frontier};
use tahoma::core::thresholds::{calibrate, negative_precision, positive_precision};
use tahoma::imagery::{transform, BlockCodec, Codec, ColorMode, Image, RawCodec};
use tahoma::nn::{Conv2d, Layer, Shape};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The GEMM-path convolution forward agrees with the legacy scalar loop
    /// across random shapes, kernel sizes and weights. The two paths sum in
    /// different orders, so equality holds to a k-scaled float tolerance
    /// rather than bitwise.
    #[test]
    fn conv_gemm_forward_matches_scalar_loop(
        c_in in 1usize..5, out_c in 1usize..9,
        h in 1usize..14, w in 1usize..14,
        half_k in 0usize..3, seed in 0u64..10_000
    ) {
        let shape = Shape::new(c_in, h, w);
        let kk = 2 * half_k + 1;
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let mut conv = Conv2d::new(shape, out_c, kk, &mut rng);
        let input: Vec<f32> = (0..shape.len())
            .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
            .collect();
        let scalar = conv.forward_scalar(&input);
        let gemm = conv.forward(&input);
        prop_assert_eq!(scalar.len(), gemm.len());
        let k_total = (c_in * kk * kk) as f32;
        for (i, (&a, &b)) in scalar.iter().zip(&gemm).enumerate() {
            let tol = 1e-5 * (1.0 + a.abs()) * k_total.sqrt().max(1.0);
            prop_assert!(
                (a - b).abs() <= tol,
                "shape {}x{}x{} k{} out{} idx {}: scalar {} gemm {}",
                c_in, h, w, kk, out_c, i, a, b
            );
        }
    }

    /// `forward_batch` agrees with per-image `forward` for every image slot
    /// and batch size, including batch=1 (the wrapper the per-image API is
    /// built on).
    #[test]
    fn conv_forward_batch_matches_per_image(
        c_in in 1usize..4, out_c in 1usize..8,
        h in 2usize..11, w in 2usize..11,
        batch in 1usize..6, seed in 0u64..10_000
    ) {
        let shape = Shape::new(c_in, h, w);
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let mut conv = Conv2d::new(shape, out_c, 3, &mut rng);
        let input: Vec<f32> = (0..batch * shape.len())
            .map(|_| rng.uniform_in(-1.0, 1.0) as f32)
            .collect();
        let mut batched = Vec::new();
        conv.forward_batch(&input, batch, &mut batched, true);
        let out_len = conv.output_shape().len();
        prop_assert_eq!(batched.len(), batch * out_len);
        for b in 0..batch {
            let single = conv.forward(&input[b * shape.len()..(b + 1) * shape.len()]);
            for (i, (&x, &y)) in single
                .iter()
                .zip(&batched[b * out_len..(b + 1) * out_len])
                .enumerate()
            {
                prop_assert!(
                    (x - y).abs() <= 1e-5 * (1.0 + x.abs()),
                    "image {} idx {}: single {} batched {}", b, i, x, y
                );
            }
        }
    }

    /// The frontier is Pareto-optimal and every non-member is dominated.
    #[test]
    fn pareto_frontier_is_sound_and_complete(
        points in prop::collection::vec((0.0f32..1.0, 1.0f64..1e5), 1..300)
    ) {
        let acc: Vec<f32> = points.iter().map(|(a, _)| *a).collect();
        let thr: Vec<f64> = points.iter().map(|(_, t)| *t).collect();
        let frontier = pareto_frontier(&acc, &thr);
        prop_assert!(!frontier.is_empty());
        prop_assert!(is_pareto_optimal(&frontier, &acc, &thr));
        let members: std::collections::HashSet<usize> =
            frontier.iter().map(|p| p.idx).collect();
        for i in 0..acc.len() {
            if !members.contains(&i) {
                let dominated = frontier.iter().any(|p| {
                    p.accuracy >= acc[i] as f64 && p.throughput >= thr[i]
                });
                prop_assert!(dominated, "point {} not dominated", i);
            }
        }
    }

    /// ALC is monotone in the point set: adding points never shrinks it.
    #[test]
    fn alc_monotone_under_point_addition(
        base in prop::collection::vec((0.5f64..1.0, 1.0f64..1e4), 1..50),
        extra in prop::collection::vec((0.5f64..1.0, 1.0f64..1e4), 1..20)
    ) {
        let lo = 0.5;
        let hi = 1.0;
        let a1 = alc::alc(&base, lo, hi);
        let mut all = base.clone();
        all.extend(extra);
        let a2 = alc::alc(&all, lo, hi);
        prop_assert!(a2 >= a1 - 1e-9, "ALC shrank: {a1} -> {a2}");
    }

    /// ALC is additive over adjacent accuracy ranges.
    #[test]
    fn alc_splits_over_ranges(
        points in prop::collection::vec((0.5f64..1.0, 1.0f64..1e4), 1..60),
        mid in 0.6f64..0.9
    ) {
        let total = alc::alc(&points, 0.5, 1.0);
        let left = alc::alc(&points, 0.5, mid);
        let right = alc::alc(&points, mid, 1.0);
        prop_assert!((total - left - right).abs() < 1e-6 * total.max(1.0));
    }

    /// Calibrated thresholds always meet the precision target on the data
    /// they were calibrated on (whenever they decide anything at all).
    #[test]
    fn calibration_meets_target_precision(
        seed in 0u64..1000,
        target in 0.85f64..0.99,
        n in 50usize..300
    ) {
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2 == 0;
            let mu = if label { 0.65 } else { 0.35 };
            scores.push((mu + 0.2 * rng.standard_normal()).clamp(0.0, 1.0) as f32);
            labels.push(label);
        }
        let thr = calibrate(&scores, &labels, target);
        prop_assert!(thr.p_low < thr.p_high);
        if let Some(p) = positive_precision(thr, &scores, &labels) {
            prop_assert!(p >= target - 1e-9, "positive precision {p} < {target}");
        }
        if let Some(p) = negative_precision(thr, &scores, &labels) {
            prop_assert!(p >= target - 1e-9, "negative precision {p} < {target}");
        }
    }

    /// Raw codec roundtrip error is bounded by quantization everywhere.
    #[test]
    fn raw_codec_roundtrip(
        w in 1usize..24, h in 1usize..24, seed in 0u64..500
    ) {
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let img = Image::from_fn(w, h, ColorMode::Rgb, |_, _, _| {
            rng.uniform() as f32
        }).unwrap();
        let out = RawCodec.decode(&RawCodec.encode(&img)).unwrap();
        for (a, b) in img.data().iter().zip(out.data()) {
            prop_assert!((a - b).abs() <= 0.5 / 255.0 + 1e-6);
        }
    }

    /// Block codec roundtrip error is bounded by its quantization step.
    #[test]
    fn block_codec_roundtrip(
        seed in 0u64..200, quality in 20u8..95
    ) {
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let img = Image::from_fn(16, 16, ColorMode::Gray, |_, _, _| {
            rng.uniform() as f32
        }).unwrap();
        let codec = BlockCodec::new(quality);
        let out = codec.decode(&codec.encode(&img)).unwrap();
        // step/255 residual quantization + mean quantization slack.
        let bound = (2.0 + (100.0 - quality as f32) * 62.0 / 99.0) / 255.0 + 2.0 / 255.0;
        for (a, b) in img.data().iter().zip(out.data()) {
            prop_assert!((a - b).abs() <= bound, "err {} > bound {bound}", (a - b).abs());
        }
    }

    /// Horizontal flip is an involution on arbitrary images.
    #[test]
    fn flip_involution(w in 1usize..20, h in 1usize..20, seed in 0u64..100) {
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let img = Image::from_fn(w, h, ColorMode::Rgb, |_, _, _| rng.uniform() as f32).unwrap();
        let back = transform::flip_horizontal(&transform::flip_horizontal(&img));
        prop_assert_eq!(img, back);
    }

    /// Bilinear resize output stays within the input's value range.
    #[test]
    fn resize_respects_range(
        w in 2usize..32, h in 2usize..32, ow in 1usize..32, oh in 1usize..32,
        seed in 0u64..100
    ) {
        let mut rng = tahoma::mathx::DetRng::new(seed);
        let img = Image::from_fn(w, h, ColorMode::Gray, |_, _, _| rng.uniform() as f32).unwrap();
        let lo = img.data().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = img.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let out = transform::resize_bilinear(&img, ow, oh).unwrap();
        for &v in out.data() {
            prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5);
        }
    }

    /// DetRng is insensitive to interleaving: two streams derived from
    /// different coordinates never correlate exactly.
    #[test]
    fn rng_streams_are_distinct(seed in 0u64..10_000) {
        let mut a = tahoma::mathx::DetRng::from_coords(seed, 0);
        let mut b = tahoma::mathx::DetRng::from_coords(seed, 1);
        let matches = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        prop_assert!(matches < 4);
    }
}

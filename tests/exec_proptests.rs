//! Property tests: the vectorized level-major executor is
//! decision-for-decision (and simulated-cost-for-cost) identical to the
//! item-at-a-time reference cascade walk, under arbitrary cascades
//! (depth 1–4, shared and distinct representations), arbitrary threshold
//! tables, NaN scores (which must follow the PR 2 `nan_last` discipline:
//! never decide at a thresholded level, lose the `>= 0.5` comparison at
//! the terminal), and arbitrary metadata-survivor subsets — plus the
//! planner-ordering regression: short-circuit execution never changes
//! `matched_ids`.

use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};
use std::sync::OnceLock;
use tahoma::core::evaluator::CostContext;
use tahoma::core::exec::{ExecOptions, ItemScorerBatchAdapter, SurrogateBatchScorer};
use tahoma::core::query::{
    CorpusItem, ItemScorer, MetaPredicate, QueryResult, SurrogateItemScorer,
};
use tahoma::core::thresholds::{DecisionThresholds, ThresholdTable};
use tahoma::core::{Cascade, VectorizedExecutor};
use tahoma::mathx::DetRng;
use tahoma::prelude::*;
use tahoma::zoo::ModelId;

struct Fixture {
    repo: tahoma::zoo::ModelRepository,
    scorer: SurrogateScorer,
    corpus: Corpus,
    cost: CostContext,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let pred = PredicateSpec::for_kind(ObjectKind::Fence);
        let cfg = SurrogateBuildConfig {
            n_config: 150,
            n_eval: 200,
            seed: 0xE8EC,
            variants: Some(paper_variants().into_iter().step_by(23).collect()),
            ..Default::default()
        };
        let scorer = SurrogateScorer {
            pred,
            params: cfg.params,
            seed: cfg.seed,
        };
        let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
        let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
        let cost = CostContext::build(&repo, &profiler);
        Fixture {
            repo,
            scorer,
            corpus: Corpus::synthetic(400, 0.3, 17),
            cost,
        }
    })
}

/// A deterministic hash scorer that injects NaN at a controllable rate —
/// the reference and batched sides see bit-identical scores, so any
/// divergence is the executor's fault.
struct HashScorer {
    seed: u64,
    nan_pct: u8,
}

impl ItemScorer for HashScorer {
    fn score(&self, model: ModelId, item: &CorpusItem) -> f32 {
        let mut rng = DetRng::from_coords(self.seed ^ ((model.0 as u64) << 32), item.id);
        if rng.index(100) < self.nan_pct as usize {
            f32::NAN
        } else {
            rng.uniform() as f32
        }
    }
}

/// An arbitrary threshold table for the fixture repository: any float cut
/// pair is legal (including never-deciding and everything-deciding ones);
/// the property is that both executors interpret it identically.
fn random_thresholds(seed: u64, n_models: usize, n_settings: usize) -> ThresholdTable {
    let mut rng = DetRng::new(seed ^ 0x7AB1E);
    let per_model = (0..n_models)
        .map(|_| {
            (0..n_settings)
                .map(|_| {
                    if rng.bernoulli(0.15) {
                        DecisionThresholds::never_decide()
                    } else {
                        DecisionThresholds {
                            p_low: rng.uniform_in(-0.2, 1.0) as f32,
                            p_high: rng.uniform_in(-0.2, 1.3) as f32,
                        }
                    }
                })
                .collect()
        })
        .collect();
    ThresholdTable {
        settings: vec![0.9; n_settings],
        per_model,
    }
}

fn random_cascade(rng: &mut DetRng, depth: usize, n_models: usize, n_settings: usize) -> Cascade {
    let levels: Vec<(u16, u8)> = (0..depth)
        .map(|_| (rng.index(n_models) as u16, rng.index(n_settings) as u8))
        .collect();
    Cascade::new(&levels)
}

/// Subset of the corpus playing the metadata survivors.
fn random_subset(corpus: &Corpus, seed: u64, keep_pct: usize) -> Vec<&CorpusItem> {
    let mut rng = DetRng::new(seed ^ 0x5B5E7);
    corpus
        .items
        .iter()
        .filter(|_| rng.index(100) < keep_pct)
        .collect()
}

fn assert_relations_identical(
    a: &tahoma::core::query::PredicateRelation,
    b: &tahoma::core::query::PredicateRelation,
) {
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.id, rb.id);
        assert_eq!(ra.value, rb.value, "item {}", ra.id);
        assert_eq!(ra.decided_at, rb.decided_at, "item {}", ra.id);
        assert_eq!(
            ra.score.to_bits(),
            rb.score.to_bits(),
            "item {} score {} vs {}",
            ra.id,
            ra.score,
            rb.score
        );
    }
    assert_eq!(a.level_histogram, b.level_histogram);
    assert_eq!(a.accuracy, b.accuracy);
    // Same per-item prefix costs summed in the same order: bitwise equal.
    assert_eq!(a.simulated_time_s.to_bits(), b.simulated_time_s.to_bits());
    assert_eq!(a.throughput_fps.to_bits(), b.throughput_fps.to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched vs reference cascade run under a NaN-injecting scorer,
    /// arbitrary cascades and threshold tables, and arbitrary survivor
    /// subsets.
    #[test]
    fn batched_cascade_is_decision_identical_to_reference(
        depth in 1usize..5,
        cascade_seed in 0u64..1_000_000,
        thr_seed in 0u64..1_000_000,
        subset_seed in 0u64..1_000_000,
        keep_pct in 0usize..101,
        nan_pct in 0u8..30,
    ) {
        let fx = fixture();
        let thresholds = random_thresholds(thr_seed, fx.repo.len(), 5);
        let mut rng = DetRng::new(cascade_seed);
        let cascade = random_cascade(&mut rng, depth, fx.repo.len(), 5);
        let items = random_subset(&fx.corpus, subset_seed, keep_pct);
        let scorer = HashScorer { seed: cascade_seed ^ thr_seed, nan_pct };

        let processor = QueryProcessor::new(&fx.repo, &thresholds, &fx.cost);
        let reference = processor
            .run_cascade_reference(ObjectKind::Fence, cascade, &items, &scorer)
            .expect("reference runs");

        let executor = VectorizedExecutor::new(&fx.repo, &thresholds, &fx.cost);
        let mut adapter = ItemScorerBatchAdapter(&scorer);
        let batched = executor
            .run_cascade_batched(ObjectKind::Fence, cascade, &items, &mut adapter)
            .expect("batched runs");

        assert_relations_identical(&reference, &batched);
    }

    /// The hoisted surrogate batch backend is bit-identical to the
    /// per-item surrogate scorer through the executor.
    #[test]
    fn surrogate_batch_backend_matches_item_scorer(
        depth in 1usize..5,
        cascade_seed in 0u64..1_000_000,
        subset_seed in 0u64..1_000_000,
    ) {
        let fx = fixture();
        let thresholds =
            tahoma::core::thresholds::calibrate_all(&fx.repo, &PAPER_PRECISION_SETTINGS);
        let mut rng = DetRng::new(cascade_seed ^ 0xCA5);
        let cascade = random_cascade(&mut rng, depth, fx.repo.len(), 5);
        let items = random_subset(&fx.corpus, subset_seed, 70);

        let processor = QueryProcessor::new(&fx.repo, &thresholds, &fx.cost);
        let item_scorer = SurrogateItemScorer { scorer: &fx.scorer, repo: &fx.repo };
        let reference = processor
            .run_cascade_reference(ObjectKind::Fence, cascade, &items, &item_scorer)
            .expect("reference runs");

        let executor = VectorizedExecutor::new(&fx.repo, &thresholds, &fx.cost);
        let mut batch_scorer = SurrogateBatchScorer::new(&fx.scorer, &fx.repo);
        let batched = executor
            .run_cascade_batched(ObjectKind::Fence, cascade, &items, &mut batch_scorer)
            .expect("batched runs");

        assert_relations_identical(&reference, &batched);
    }

    /// Full-query identity: `QueryProcessor::execute` (now a wrapper over
    /// the vectorized executor in materialize-all mode) reproduces the
    /// legacy algorithm — reference cascade per predicate over all
    /// survivors, hash-set conjunction — exactly.
    #[test]
    fn execute_matches_legacy_algorithm(
        thr_seed in 0u64..1_000_000,
        cascade_seed in 0u64..1_000_000,
        camera_cut in 1u64..9,
        n_preds in 1usize..4,
        nan_pct in 0u8..20,
    ) {
        let fx = fixture();
        let thresholds = random_thresholds(thr_seed, fx.repo.len(), 5);
        let mut rng = DetRng::new(cascade_seed ^ 0xEEC);
        let kinds = [ObjectKind::Fence, ObjectKind::Wallet, ObjectKind::Acorn];
        let query = Query {
            table: "t".into(),
            metadata: vec![MetaPredicate::Camera(
                tahoma::core::query::CmpOp::Lt,
                camera_cut,
            )],
            content: kinds[..n_preds].to_vec(),
        };
        let mut cascades = BTreeMap::new();
        for &kind in &query.content {
            let depth = 1 + rng.index(4);
            cascades.insert(kind, random_cascade(&mut rng, depth, fx.repo.len(), 5));
        }
        let scorer = HashScorer { seed: thr_seed ^ cascade_seed, nan_pct };
        let processor = QueryProcessor::new(&fx.repo, &thresholds, &fx.cost);

        // Legacy oracle, reimplemented verbatim.
        let surviving: Vec<&CorpusItem> = fx
            .corpus
            .items
            .iter()
            .filter(|item| query.metadata.iter().all(|p| p.holds(item)))
            .collect();
        let mut passing: Vec<u64> = surviving.iter().map(|i| i.id).collect();
        let mut legacy_relations = Vec::new();
        for &kind in &query.content {
            let relation = processor
                .run_cascade_reference(kind, cascades[&kind], &surviving, &scorer)
                .expect("reference runs");
            let pass_set: HashSet<u64> =
                relation.rows.iter().filter(|r| r.value).map(|r| r.id).collect();
            passing.retain(|id| pass_set.contains(id));
            legacy_relations.push(relation);
        }

        let got: QueryResult = processor
            .execute(&query, &fx.corpus, &cascades, &scorer)
            .expect("executes");
        assert_eq!(got.matched_ids, passing);
        assert_eq!(got.metadata_survivors, surviving.len());
        assert_eq!(got.relations.len(), legacy_relations.len());
        for (a, b) in legacy_relations.iter().zip(&got.relations) {
            assert_relations_identical(a, b);
        }
    }

    /// Planner-ordered short-circuit execution never changes
    /// `matched_ids`, and never scores more items than the full
    /// materialization.
    #[test]
    fn short_circuit_preserves_matched_ids(
        thr_seed in 0u64..1_000_000,
        cascade_seed in 0u64..1_000_000,
        n_preds in 2usize..4,
        nan_pct in 0u8..20,
    ) {
        let fx = fixture();
        let thresholds = random_thresholds(thr_seed, fx.repo.len(), 5);
        let mut rng = DetRng::new(cascade_seed ^ 0x5C);
        let kinds = [ObjectKind::Fence, ObjectKind::Wallet, ObjectKind::Acorn];
        let query = Query {
            table: "t".into(),
            metadata: Vec::new(),
            content: kinds[..n_preds].to_vec(),
        };
        let mut cascades = BTreeMap::new();
        for &kind in &query.content {
            let depth = 1 + rng.index(4);
            cascades.insert(kind, random_cascade(&mut rng, depth, fx.repo.len(), 5));
        }
        let scorer = HashScorer { seed: thr_seed ^ !cascade_seed, nan_pct };
        let processor = QueryProcessor::new(&fx.repo, &thresholds, &fx.cost);

        let mut a1 = ItemScorerBatchAdapter(&scorer);
        let full = processor
            .execute_batched(&query, &fx.corpus, &cascades, &mut a1,
                &ExecOptions { materialize_all: true })
            .expect("materialize-all executes");
        let mut a2 = ItemScorerBatchAdapter(&scorer);
        let shortcut = processor
            .execute_batched(&query, &fx.corpus, &cascades, &mut a2,
                &ExecOptions { materialize_all: false })
            .expect("short-circuit executes");

        assert_eq!(full.matched_ids, shortcut.matched_ids);
        assert_eq!(full.metadata_survivors, shortcut.metadata_survivors);
        let scored = |r: &QueryResult| -> usize { r.relations.iter().map(|rel| rel.rows.len()).sum() };
        assert!(
            scored(&shortcut) <= scored(&full),
            "short-circuit scored {} items, full {}",
            scored(&shortcut),
            scored(&full)
        );
        // Every short-circuit relation's rows are a subset of the full one's.
        for (f, s) in full.relations.iter().zip(&shortcut.relations) {
            let full_rows: HashSet<u64> = f.rows.iter().map(|r| r.id).collect();
            for row in &s.rows {
                assert!(full_rows.contains(&row.id));
            }
        }
    }
}

//! Integration of the NoScope comparison pipeline (Fig. 8 machinery) at
//! reduced scale.

use tahoma::noscope::{run_with_dd, NoScopeConfig, NoScopeSystem, TahomaDdSystem, VideoDataset};
use tahoma::prelude::*;
use tahoma::video::{DifferenceDetector, FrameSkipper, VideoStream};

fn small_cfg(seed: u64) -> SurrogateBuildConfig {
    SurrogateBuildConfig {
        n_config: 200,
        n_eval: 250,
        seed,
        variants: Some(paper_variants().into_iter().step_by(9).collect()),
        ..Default::default()
    }
}

#[test]
fn full_pipeline_reproduces_fig8_shape() {
    let skipper = FrameSkipper::paper_default();
    let mut results = Vec::new();
    for ds in [
        VideoDataset::coral(3, 24_000),
        VideoDataset::jackson(3, 24_000),
    ] {
        let frames = VideoStream::new(ds.stream.clone()).take_frames(ds.n_frames);
        let noscope = NoScopeSystem::build(&ds, &NoScopeConfig::default());
        let mut dd = DifferenceDetector::new(ds.dd_threshold);
        let ns = run_with_dd(&frames, skipper, &mut dd, &noscope);
        let tahoma = TahomaDdSystem::build(&ds, small_cfg(17), ns.accuracy);
        let mut dd = DifferenceDetector::new(ds.dd_threshold);
        let td = run_with_dd(&frames, skipper, &mut dd, &tahoma);
        results.push((ds.stream.name.clone(), ns, td));
    }
    let (coral_ns, coral_td) = (&results[0].1, &results[0].2);
    let (jackson_ns, jackson_td) = (&results[1].1, &results[1].2);

    // TAHOMA+DD wins on both datasets.
    assert!(coral_td.throughput_fps > coral_ns.throughput_fps);
    assert!(jackson_td.throughput_fps > jackson_ns.throughput_fps);
    // ...and by a much larger factor on jackson (paper: 3.1x vs 27.5x).
    let coral_speedup = coral_td.throughput_fps / coral_ns.throughput_fps;
    let jackson_speedup = jackson_td.throughput_fps / jackson_ns.throughput_fps;
    assert!(
        jackson_speedup > 3.0 * coral_speedup,
        "jackson {jackson_speedup:.1}x vs coral {coral_speedup:.1}x"
    );
    // NoScope itself is far slower on jackson (YOLO fallthrough).
    assert!(coral_ns.throughput_fps > 5.0 * jackson_ns.throughput_fps);
    // Difference-detector reuse ordering (footnote 2).
    assert!(coral_ns.reuse_rate > jackson_ns.reuse_rate);
}

#[test]
fn noscope_accuracy_meets_its_precision_discipline() {
    // With thresholds at 0.95 precision and a strong reference terminal,
    // NoScope's end-to-end accuracy should be high on the easy stream.
    let ds = VideoDataset::coral(5, 15_000);
    let frames = VideoStream::new(ds.stream.clone()).take_frames(ds.n_frames);
    let noscope = NoScopeSystem::build(&ds, &NoScopeConfig::default());
    let mut dd = DifferenceDetector::new(ds.dd_threshold);
    let report = run_with_dd(&frames, FrameSkipper::paper_default(), &mut dd, &noscope);
    assert!(report.accuracy > 0.9, "coral accuracy {}", report.accuracy);
}

#[test]
fn dd_reuse_respects_stream_dynamics_end_to_end() {
    // Identical pipeline, different stream dynamics: reuse tracks drift.
    let skipper = FrameSkipper { stride: 30 };
    let rates: Vec<f64> = [
        VideoDataset::coral(7, 18_000),
        VideoDataset::jackson(7, 18_000),
    ]
    .into_iter()
    .map(|ds| {
        let frames = VideoStream::new(ds.stream.clone()).take_frames(ds.n_frames);
        let noscope = NoScopeSystem::build(&ds, &NoScopeConfig::default());
        let mut dd = DifferenceDetector::new(ds.dd_threshold);
        run_with_dd(&frames, skipper, &mut dd, &noscope).reuse_rate
    })
    .collect();
    assert!(rates[0] > 0.10, "coral reuse {:.3}", rates[0]);
    assert!(rates[1] < rates[0] / 2.0, "jackson reuse {:.3}", rates[1]);
}

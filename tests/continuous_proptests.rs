//! Property tests for continuous sliding-window execution: at EVERY
//! slide, the incrementally maintained window result (only entrants
//! scored, survivor decisions carried over) is identical to a full
//! from-scratch re-evaluation of the window through the PR 5 reference
//! executor — under arbitrary RANGE/STEP shapes (including STEP > RANGE
//! gaps), arbitrary frame arrival orders, cascade depths 1–3, arbitrary
//! threshold tables, NaN scores, and metadata + multi-predicate standing
//! queries. The per-tick `added`/`removed` deltas must also replay the
//! previous matched set into the current one exactly.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::OnceLock;
use tahoma::core::continuous::{ContinuousExecutor, WindowSpec};
use tahoma::core::evaluator::CostContext;
use tahoma::core::exec::ItemScorerBatchAdapter;
use tahoma::core::query::{CorpusItem, ItemScorer, MetaPredicate};
use tahoma::core::thresholds::{DecisionThresholds, ThresholdTable};
use tahoma::core::{Cascade, VectorizedExecutor};
use tahoma::mathx::DetRng;
use tahoma::prelude::*;
use tahoma::zoo::ModelId;

struct Fixture {
    repo: tahoma::zoo::ModelRepository,
    corpus: Corpus,
    cost: CostContext,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let pred = PredicateSpec::for_kind(ObjectKind::Fence);
        let cfg = SurrogateBuildConfig {
            n_config: 150,
            n_eval: 200,
            seed: 0x57E4,
            variants: Some(paper_variants().into_iter().step_by(23).collect()),
            ..Default::default()
        };
        let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
        let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
        let cost = CostContext::build(&repo, &profiler);
        Fixture {
            repo,
            corpus: Corpus::synthetic(320, 0.35, 23),
            cost,
        }
    })
}

/// Deterministic hash scorer with NaN injection; the incremental and
/// rescan sides see bit-identical scores, so any divergence is the
/// window executor's fault.
struct HashScorer {
    seed: u64,
    nan_pct: u8,
}

impl ItemScorer for HashScorer {
    fn score(&self, model: ModelId, item: &CorpusItem) -> f32 {
        let mut rng = DetRng::from_coords(self.seed ^ ((model.0 as u64) << 32), item.id);
        if rng.index(100) < self.nan_pct as usize {
            f32::NAN
        } else {
            rng.uniform() as f32
        }
    }
}

fn random_thresholds(seed: u64, n_models: usize, n_settings: usize) -> ThresholdTable {
    let mut rng = DetRng::new(seed ^ 0x7AB1E);
    let per_model = (0..n_models)
        .map(|_| {
            (0..n_settings)
                .map(|_| {
                    if rng.bernoulli(0.15) {
                        DecisionThresholds::never_decide()
                    } else {
                        DecisionThresholds {
                            p_low: rng.uniform_in(-0.2, 1.0) as f32,
                            p_high: rng.uniform_in(-0.2, 1.3) as f32,
                        }
                    }
                })
                .collect()
        })
        .collect();
    ThresholdTable {
        settings: vec![0.9; n_settings],
        per_model,
    }
}

fn random_cascade(rng: &mut DetRng, depth: usize, n_models: usize, n_settings: usize) -> Cascade {
    let levels: Vec<(u16, u8)> = (0..depth)
        .map(|_| (rng.index(n_models) as u16, rng.index(n_settings) as u8))
        .collect();
    Cascade::new(&levels)
}

/// The corpus in a seeded arbitrary arrival order (Fisher-Yates).
fn arrival_order(corpus: &Corpus, seed: u64) -> Vec<CorpusItem> {
    let mut rng = DetRng::new(seed ^ 0xA441);
    let mut items = corpus.items.clone();
    for i in (1..items.len()).rev() {
        items.swap(i, rng.index(i + 1));
    }
    items
}

/// Drive `n_ticks` slides and, at every one, check the three-way
/// equivalence (incremental == rescan == reference re-execution over the
/// window corpus) plus exact delta replay.
fn check_all_slides(
    query: Query,
    cascades: BTreeMap<ObjectKind, Cascade>,
    window: WindowSpec,
    thresholds: &ThresholdTable,
    scorer: &HashScorer,
    arrivals: &[CorpusItem],
    n_ticks: u64,
) -> Result<(), TestCaseError> {
    let fx = fixture();
    let mut cx =
        ContinuousExecutor::register(query.clone(), cascades.clone(), window).expect("registers");
    let exec = VectorizedExecutor::new(&fx.repo, thresholds, &fx.cost);
    let processor = QueryProcessor::new(&fx.repo, thresholds, &fx.cost);
    let mut feed = arrivals.iter();
    let mut prev: Vec<u64> = Vec::new();
    for tick in 1..=n_ticks {
        for _ in 0..window.step() {
            cx.ingest(feed.next().expect("enough arrivals").clone());
        }
        let mut adapter = ItemScorerBatchAdapter(scorer);
        let d = cx.tick_batched(&exec, &mut adapter).expect("ticks");
        let matched = cx.matched();
        prop_assert_eq!(d.matched, matched.len());

        // Delta replay: previous matched set + this slide's deltas ==
        // current matched set, order included.
        prop_assert!(d.added.iter().all(|id| !prev.contains(id)));
        prop_assert!(d.removed.iter().all(|id| prev.contains(id)));
        let mut rebuilt: Vec<u64> = prev
            .iter()
            .filter(|id| !d.removed.contains(id))
            .copied()
            .collect();
        rebuilt.extend(&d.added);
        prop_assert_eq!(&rebuilt, &matched, "tick {} delta replay", tick);

        // From-scratch rescan through the batched path.
        let mut fresh = ItemScorerBatchAdapter(scorer);
        let rescan = cx.rescan_batched(&exec, &mut fresh).expect("rescan");
        prop_assert_eq!(&rescan, &matched, "tick {} rescan", tick);

        // Full re-evaluation of the window via the reference executor:
        // rebuild the window corpus from the arrival positions alone.
        let end = tick * window.step();
        let start = end.saturating_sub(window.range());
        let window_corpus = Corpus {
            items: arrivals[start as usize..end as usize].to_vec(),
        };
        prop_assert_eq!(window_corpus.items.len(), cx.window_len());
        let reference = processor
            .execute(&query, &window_corpus, &cascades, scorer)
            .expect("reference executes");
        prop_assert_eq!(&reference.matched_ids, &matched, "tick {} reference", tick);
        prev = matched;
    }
    // Incremental work never exceeds arrivals consumed (times predicates).
    let consumed = n_ticks * window.step().min(window.range());
    prop_assert!(cx.scored_total() <= consumed * query.content.len() as u64);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-predicate standing query: incremental == rescan == reference
    /// at every slide, any RANGE/STEP (gaps included), depths 1-3, any
    /// arrival order, NaN scores.
    #[test]
    fn incremental_equals_full_reevaluation_every_slide(
        range in 1u64..40,
        step in 1u64..16,
        depth in 1usize..4,
        cascade_seed in 0u64..1_000_000,
        thr_seed in 0u64..1_000_000,
        arrival_seed in 0u64..1_000_000,
        n_ticks in 1u64..13,
        nan_pct in 0u8..25,
    ) {
        let fx = fixture();
        let thresholds = random_thresholds(thr_seed, fx.repo.len(), 5);
        let mut rng = DetRng::new(cascade_seed);
        let mut cascades = BTreeMap::new();
        cascades.insert(
            ObjectKind::Fence,
            random_cascade(&mut rng, depth, fx.repo.len(), 5),
        );
        let query = Query {
            table: "frames".into(),
            metadata: Vec::new(),
            content: vec![ObjectKind::Fence],
        };
        let window = WindowSpec::new(range, step).expect("valid window");
        let scorer = HashScorer { seed: cascade_seed ^ thr_seed, nan_pct };
        let arrivals = arrival_order(&fx.corpus, arrival_seed);
        check_all_slides(query, cascades, window, &thresholds, &scorer, &arrivals, n_ticks)?;
    }

    /// Metadata + multi-predicate standing query: the short-circuit
    /// conjunction over entrant packs must still match the reference
    /// (materialize-all) execution of the whole window.
    #[test]
    fn multi_predicate_windows_match_reference(
        range in 2u64..32,
        step in 1u64..12,
        n_preds in 1usize..4,
        camera_cut in 1u64..9,
        cascade_seed in 0u64..1_000_000,
        thr_seed in 0u64..1_000_000,
        arrival_seed in 0u64..1_000_000,
        n_ticks in 1u64..9,
        nan_pct in 0u8..20,
    ) {
        let fx = fixture();
        let thresholds = random_thresholds(thr_seed, fx.repo.len(), 5);
        let mut rng = DetRng::new(cascade_seed ^ 0x3B);
        let kinds = [ObjectKind::Fence, ObjectKind::Wallet, ObjectKind::Acorn];
        let mut cascades = BTreeMap::new();
        for &kind in &kinds[..n_preds] {
            let depth = 1 + rng.index(3);
            cascades.insert(kind, random_cascade(&mut rng, depth, fx.repo.len(), 5));
        }
        let query = Query {
            table: "frames".into(),
            metadata: vec![MetaPredicate::Camera(
                tahoma::core::query::CmpOp::Lt,
                camera_cut,
            )],
            content: kinds[..n_preds].to_vec(),
        };
        let window = WindowSpec::new(range, step).expect("valid window");
        let scorer = HashScorer { seed: thr_seed ^ !cascade_seed, nan_pct };
        let arrivals = arrival_order(&fx.corpus, arrival_seed);
        check_all_slides(query, cascades, window, &thresholds, &scorer, &arrivals, n_ticks)?;
    }
}

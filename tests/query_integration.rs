//! Integration of the query layer: SQL parsing, metadata pushdown, cascade
//! execution over a corpus, and cost accounting consistency.

use std::collections::BTreeMap;
use tahoma::core::evaluator::CostContext;
use tahoma::core::query::{QueryResult, SurrogateItemScorer};
use tahoma::prelude::*;

struct Fixture {
    system: tahoma::core::pipeline::TahomaSystem,
    scorer: SurrogateScorer,
    corpus: Corpus,
}

fn fixture(kind: ObjectKind) -> Fixture {
    let pred = PredicateSpec::for_kind(kind);
    let cfg = SurrogateBuildConfig {
        n_config: 250,
        n_eval: 300,
        seed: 20,
        variants: Some(paper_variants().into_iter().step_by(11).collect()),
        ..Default::default()
    };
    let scorer = SurrogateScorer {
        pred,
        params: cfg.params,
        seed: cfg.seed,
    };
    let repo = build_surrogate_repository(pred, &cfg, &DeviceProfile::k80());
    Fixture {
        system: tahoma::core::pipeline::TahomaSystem::initialize_paper_main(repo),
        scorer,
        corpus: Corpus::synthetic(3000, 0.3, 8),
    }
}

fn execute(fx: &Fixture, sql: &str, scenario: Scenario) -> QueryResult {
    let query = Query::parse(sql).expect("parses");
    let profiler = AnalyticProfiler::paper_testbed(scenario);
    let chosen = fx
        .system
        .select(
            &profiler,
            Constraints {
                max_accuracy_loss: Some(0.03),
                max_throughput_loss: None,
            },
        )
        .expect("feasible");
    let cost = CostContext::build(&fx.system.repo, &profiler);
    let processor = QueryProcessor::new(&fx.system.repo, &fx.system.thresholds, &cost);
    let mut cascades = BTreeMap::new();
    for &kind in &query.content {
        cascades.insert(kind, chosen.cascade);
    }
    let scorer = SurrogateItemScorer {
        scorer: &fx.scorer,
        repo: &fx.system.repo,
    };
    processor
        .execute(&query, &fx.corpus, &cascades, &scorer)
        .expect("executes")
}

#[test]
fn metadata_pushdown_reduces_classified_items() {
    let fx = fixture(ObjectKind::Fence);
    let all = execute(
        &fx,
        "SELECT * FROM f WHERE contains_object(fence)",
        Scenario::Ongoing,
    );
    let filtered = execute(
        &fx,
        "SELECT * FROM f WHERE contains_object(fence) AND location = 'Detroit'",
        Scenario::Ongoing,
    );
    assert_eq!(all.metadata_survivors, fx.corpus.len());
    assert!(filtered.metadata_survivors < all.metadata_survivors);
    assert_eq!(
        filtered.relations[0].rows.len(),
        filtered.metadata_survivors
    );
    // The filtered result must be a subset of the unfiltered result.
    let all_set: std::collections::HashSet<u64> = all.matched_ids.iter().copied().collect();
    for id in &filtered.matched_ids {
        assert!(
            all_set.contains(id),
            "id {id} appears only in filtered result"
        );
    }
}

#[test]
fn relation_accuracy_is_high_and_rows_complete() {
    let fx = fixture(ObjectKind::Komondor);
    let r = execute(
        &fx,
        "SELECT * FROM f WHERE contains_object(komondor)",
        Scenario::Camera,
    );
    let rel = &r.relations[0];
    assert_eq!(rel.rows.len(), fx.corpus.len());
    assert!(rel.accuracy > 0.8, "relation accuracy {}", rel.accuracy);
    // Level histogram covers every classified item exactly once.
    let total: u64 = rel.level_histogram.iter().sum();
    assert_eq!(total as usize, rel.rows.len());
}

#[test]
fn simulated_time_respects_scenario_ordering() {
    let fx = fixture(ObjectKind::Scorpion);
    let sql = "SELECT * FROM f WHERE contains_object(scorpion)";
    let infer = execute(&fx, sql, Scenario::InferOnly);
    let ongoing = execute(&fx, sql, Scenario::Ongoing);
    let archive = execute(&fx, sql, Scenario::Archive);
    let t = |r: &QueryResult| r.relations[0].simulated_time_s;
    assert!(t(&infer) < t(&ongoing), "INFER-ONLY should be cheapest");
    assert!(
        t(&ongoing) < t(&archive),
        "ARCHIVE should be most expensive"
    );
}

#[test]
fn query_results_are_deterministic() {
    let fx = fixture(ObjectKind::Wallet);
    let sql = "SELECT * FROM f WHERE contains_object(wallet) AND camera <= 5";
    let a = execute(&fx, sql, Scenario::Ongoing);
    let b = execute(&fx, sql, Scenario::Ongoing);
    assert_eq!(a.matched_ids, b.matched_ids);
    assert_eq!(
        a.relations[0].simulated_time_s,
        b.relations[0].simulated_time_s
    );
}

#[test]
fn planner_short_circuit_strictly_reduces_scored_items() {
    // A two-content-predicate query through the vectorized executor: in
    // short-circuit mode the later predicate evaluates only the earlier
    // one's survivors, so the total scored-item count strictly drops while
    // `matched_ids` stays exactly the same.
    use tahoma::core::exec::{ExecOptions, SurrogateBatchScorer};

    let fx = fixture(ObjectKind::Fence);
    let query =
        Query::parse("SELECT * FROM f WHERE contains_object(fence) AND contains_object(wallet)")
            .unwrap();
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
    let chosen = fx
        .system
        .select(
            &profiler,
            Constraints {
                max_accuracy_loss: Some(0.03),
                max_throughput_loss: None,
            },
        )
        .expect("feasible");
    let cost = CostContext::build(&fx.system.repo, &profiler);
    let processor = QueryProcessor::new(&fx.system.repo, &fx.system.thresholds, &cost);
    let mut cascades = BTreeMap::new();
    for &kind in &query.content {
        cascades.insert(kind, chosen.cascade);
    }

    let mut full_scorer = SurrogateBatchScorer::new(&fx.scorer, &fx.system.repo);
    let full = processor
        .execute_batched(
            &query,
            &fx.corpus,
            &cascades,
            &mut full_scorer,
            &ExecOptions {
                materialize_all: true,
            },
        )
        .expect("materialize-all executes");
    let mut sc_scorer = SurrogateBatchScorer::new(&fx.scorer, &fx.system.repo);
    let shortcut = processor
        .execute_batched(
            &query,
            &fx.corpus,
            &cascades,
            &mut sc_scorer,
            &ExecOptions {
                materialize_all: false,
            },
        )
        .expect("short-circuit executes");

    assert_eq!(full.matched_ids, shortcut.matched_ids);
    assert!(!full.matched_ids.is_empty(), "query should match something");
    let scored = |r: &QueryResult| -> usize { r.relations.iter().map(|rel| rel.rows.len()).sum() };
    let (nf, ns) = (scored(&full), scored(&shortcut));
    assert_eq!(nf, 2 * full.metadata_survivors);
    assert!(
        ns < nf,
        "short-circuit scored {ns} items, full materialization {nf}"
    );
    // The first-executed predicate still covers every survivor; the other
    // covers exactly the conjunction input it received.
    let covered: Vec<usize> = shortcut.relations.iter().map(|r| r.rows.len()).collect();
    assert!(covered.contains(&shortcut.metadata_survivors));
    assert!(covered.iter().any(|&n| n < shortcut.metadata_survivors));
}

#[test]
fn missing_cascade_for_predicate_is_an_error() {
    let fx = fixture(ObjectKind::Fence);
    let query = Query::parse("SELECT * FROM f WHERE contains_object(acorn)").unwrap();
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
    let cost = CostContext::build(&fx.system.repo, &profiler);
    let processor = QueryProcessor::new(&fx.system.repo, &fx.system.thresholds, &cost);
    let scorer = SurrogateItemScorer {
        scorer: &fx.scorer,
        repo: &fx.system.repo,
    };
    let cascades = BTreeMap::new(); // no cascade registered for acorn
    assert!(processor
        .execute(&query, &fx.corpus, &cascades, &scorer)
        .is_err());
}

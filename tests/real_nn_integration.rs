//! Integration of the *real* training path with the optimizer: models
//! trained by `tahoma-nn` on rendered pixels drive the same cascade
//! machinery the surrogate experiments use.

use tahoma::prelude::*;
use tahoma::zoo::trainer::{build_real_repository, RealTrainConfig};
use tahoma::zoo::variant::cross_variants;

fn mini_space() -> Vec<ModelVariant> {
    cross_variants(
        &[
            ArchSpec {
                conv_layers: 1,
                conv_nodes: 4,
                dense_nodes: 8,
            },
            ArchSpec {
                conv_layers: 2,
                conv_nodes: 8,
                dense_nodes: 16,
            },
        ],
        &[
            Representation::new(12, ColorMode::Gray),
            Representation::new(24, ColorMode::Rgb),
        ],
    )
}

fn train_system() -> &'static tahoma::core::pipeline::TahomaSystem {
    // Training real CNNs is the dominant cost here; share one system
    // across the tests in this file.
    use std::sync::OnceLock;
    static SYSTEM: OnceLock<tahoma::core::pipeline::TahomaSystem> = OnceLock::new();
    SYSTEM.get_or_init(build_train_system)
}

fn build_train_system() -> tahoma::core::pipeline::TahomaSystem {
    let spec = DatasetSpec {
        n_train: 160,
        n_config: 80,
        n_eval: 80,
        ..DatasetSpec::tiny(ObjectKind::Komondor, 24, 5)
    };
    let bundle = spec.generate();
    let cfg = RealTrainConfig {
        epochs: 20,
        batch_size: 16,
        lr: 0.01,
        early_stop_loss: 0.08,
        seed: 2,
    };
    let (repo, _) =
        build_real_repository(&bundle, &mini_space(), &cfg, &DeviceProfile::k80()).unwrap();
    let builder = BuilderConfig {
        pool: repo.specialized_ids(),
        reference: None,
        n_settings: 3,
        max_pool_depth: 2,
        with_reference_terminal: false,
    };
    tahoma::core::pipeline::TahomaSystem::initialize(repo, &[0.93, 0.95, 0.99], &builder)
}

#[test]
fn real_models_learn_above_chance_and_form_a_frontier() {
    let system = train_system();
    // At least one real model beats chance clearly on the eval split.
    let best = system
        .repo
        .specialized_ids()
        .into_iter()
        .map(|id| system.repo.eval_accuracy(id))
        .fold(0.0, f64::max);
    assert!(best > 0.75, "best real model accuracy {best}");

    let profiler = AnalyticProfiler::paper_testbed(Scenario::InferOnly);
    let frontier = system.frontier(&profiler);
    assert!(!frontier.points.is_empty());
    // Frontier throughput spans the model cost spread.
    let fastest = frontier.points.first().unwrap().throughput;
    let slowest = frontier.points.last().unwrap().throughput;
    assert!(fastest >= slowest);
}

#[test]
fn richer_inputs_help_real_models_too() {
    // The surrogate family assumes bigger inputs carry more signal; verify
    // the real path agrees in aggregate: the best 24px RGB model is at
    // least as accurate as the best 12px gray model.
    let system = train_system();
    let mut best_small = 0.0f64;
    let mut best_large = 0.0f64;
    for id in system.repo.specialized_ids() {
        let entry = system.repo.entry(id);
        let acc = system.repo.eval_accuracy(id);
        if entry.variant.input.size == 12 {
            best_small = best_small.max(acc);
        } else {
            best_large = best_large.max(acc);
        }
    }
    assert!(
        best_large >= best_small - 0.05,
        "24px rgb best {best_large} unexpectedly far below 12px gray best {best_small}"
    );
}

#[test]
fn thresholds_calibrated_on_real_scores_meet_precision_on_config_split() {
    let system = train_system();
    for (mi, entry) in system.repo.entries.iter().enumerate() {
        for (si, &target) in system.thresholds.settings.iter().enumerate() {
            let thr = system.thresholds.get(mi, si);
            if let Some(p) = tahoma::core::thresholds::positive_precision(
                thr,
                &entry.config_scores,
                &system.repo.config.labels,
            ) {
                assert!(
                    p >= target - 1e-9,
                    "model {mi} setting {si}: precision {p} < {target}"
                );
            }
        }
    }
}

#[test]
fn trained_weights_roundtrip_through_serialization() {
    use tahoma::nn::train::Example;
    use tahoma::nn::{serialize, Adam, CnnSpec, Shape, Trainer};
    // Train one tiny model on rendered data, save, reload, verify identical
    // predictions.
    let bundle = DatasetSpec::tiny(ObjectKind::Acorn, 16, 3).generate();
    let rep = Representation::new(16, ColorMode::Gray);
    let mut model = CnnSpec {
        input: Shape::new(1, 16, 16),
        conv_channels: vec![4],
        kernel: 3,
        dense_units: 8,
    }
    .build(1)
    .unwrap();
    let examples: Vec<Example> = bundle
        .train
        .items
        .iter()
        .take(60)
        .map(|it| Example {
            input: tahoma::imagery::transform::standardize(&rep.apply(&it.image).unwrap())
                .into_data(),
            label: it.label,
        })
        .collect();
    Trainer {
        epochs: 8,
        batch_size: 8,
        early_stop_loss: 0.05,
        seed: 4,
    }
    .train(&mut model, &examples, &mut Adam::new(0.01));
    let bytes = serialize::save(&model).unwrap();
    let mut reloaded = serialize::load(&bytes).unwrap();
    for ex in examples.iter().take(10) {
        assert_eq!(
            model.forward_logit(&ex.input),
            reloaded.forward_logit(&ex.input)
        );
    }
}

//! Integration of the *real* training path with the optimizer: models
//! trained by `tahoma-nn` on rendered pixels drive the same cascade
//! machinery the surrogate experiments use.

use tahoma::prelude::*;
use tahoma::zoo::trainer::{build_real_repository, RealTrainConfig};
use tahoma::zoo::variant::cross_variants;

fn mini_space() -> Vec<ModelVariant> {
    cross_variants(
        &[
            ArchSpec {
                conv_layers: 1,
                conv_nodes: 4,
                dense_nodes: 8,
            },
            ArchSpec {
                conv_layers: 2,
                conv_nodes: 8,
                dense_nodes: 16,
            },
        ],
        &[
            Representation::new(12, ColorMode::Gray),
            Representation::new(24, ColorMode::Rgb),
        ],
    )
}

fn train_system() -> &'static tahoma::core::pipeline::TahomaSystem {
    // Training real CNNs is the dominant cost here; share one system
    // across the tests in this file.
    use std::sync::OnceLock;
    static SYSTEM: OnceLock<tahoma::core::pipeline::TahomaSystem> = OnceLock::new();
    SYSTEM.get_or_init(build_train_system)
}

fn build_train_system() -> tahoma::core::pipeline::TahomaSystem {
    let spec = DatasetSpec {
        n_train: 160,
        n_config: 80,
        n_eval: 80,
        ..DatasetSpec::tiny(ObjectKind::Komondor, 24, 5)
    };
    let bundle = spec.generate();
    let cfg = RealTrainConfig {
        epochs: 20,
        batch_size: 16,
        lr: 0.01,
        early_stop_loss: 0.08,
        seed: 2,
    };
    let (repo, _) =
        build_real_repository(&bundle, &mini_space(), &cfg, &DeviceProfile::k80()).unwrap();
    let builder = BuilderConfig {
        pool: repo.specialized_ids(),
        reference: None,
        n_settings: 3,
        max_pool_depth: 2,
        with_reference_terminal: false,
    };
    tahoma::core::pipeline::TahomaSystem::initialize(repo, &[0.93, 0.95, 0.99], &builder)
}

#[test]
fn real_models_learn_above_chance_and_form_a_frontier() {
    let system = train_system();
    // At least one real model beats chance clearly on the eval split.
    let best = system
        .repo
        .specialized_ids()
        .into_iter()
        .map(|id| system.repo.eval_accuracy(id))
        .fold(0.0, f64::max);
    assert!(best > 0.75, "best real model accuracy {best}");

    let profiler = AnalyticProfiler::paper_testbed(Scenario::InferOnly);
    let frontier = system.frontier(&profiler);
    assert!(!frontier.points.is_empty());
    // Frontier throughput spans the model cost spread.
    let fastest = frontier.points.first().unwrap().throughput;
    let slowest = frontier.points.last().unwrap().throughput;
    assert!(fastest >= slowest);
}

#[test]
fn richer_inputs_help_real_models_too() {
    // The surrogate family assumes bigger inputs carry more signal; verify
    // the real path agrees in aggregate: the best 24px RGB model is at
    // least as accurate as the best 12px gray model.
    let system = train_system();
    let mut best_small = 0.0f64;
    let mut best_large = 0.0f64;
    for id in system.repo.specialized_ids() {
        let entry = system.repo.entry(id);
        let acc = system.repo.eval_accuracy(id);
        if entry.variant.input.size == 12 {
            best_small = best_small.max(acc);
        } else {
            best_large = best_large.max(acc);
        }
    }
    assert!(
        best_large >= best_small - 0.05,
        "24px rgb best {best_large} unexpectedly far below 12px gray best {best_small}"
    );
}

#[test]
fn thresholds_calibrated_on_real_scores_meet_precision_on_config_split() {
    let system = train_system();
    for (mi, entry) in system.repo.entries.iter().enumerate() {
        for (si, &target) in system.thresholds.settings.iter().enumerate() {
            let thr = system.thresholds.get(mi, si);
            if let Some(p) = tahoma::core::thresholds::positive_precision(
                thr,
                &entry.config_scores,
                &system.repo.config.labels,
            ) {
                assert!(
                    p >= target - 1e-9,
                    "model {mi} setting {si}: precision {p} < {target}"
                );
            }
        }
    }
}

#[test]
fn vectorized_executor_serves_real_models_end_to_end() {
    // The whole product path with no surrogate anywhere: train real CNNs,
    // ingest real raster frames into a representation store, and serve a
    // content query through the vectorized executor's NN backend — store
    // fetch → pooled decode → (transcode when the exact representation is
    // not stored) → standardize → `infer_batch` → thresholds.
    use std::collections::BTreeMap;
    use tahoma::core::evaluator::CostContext;
    use tahoma::core::exec::{BatchScorer, ExecOptions, NnBatchScorer};
    use tahoma::core::thresholds::{DecisionThresholds, ThresholdTable};
    use tahoma::core::VectorizedExecutor;
    use tahoma::imagery::RepresentationStore;
    use tahoma::zoo::trainer::build_real_repository_keeping_models;

    let kind = ObjectKind::Komondor;
    let spec = DatasetSpec {
        n_train: 120,
        n_config: 60,
        n_eval: 80,
        ..DatasetSpec::tiny(kind, 24, 9)
    };
    let bundle = spec.generate();
    let rep_gray = Representation::new(12, ColorMode::Gray);
    let rep_rgb = Representation::new(12, ColorMode::Rgb);
    let variants = cross_variants(
        &[ArchSpec {
            conv_layers: 1,
            conv_nodes: 6,
            dense_nodes: 12,
        }],
        &[rep_gray, rep_rgb],
    );
    let cfg = RealTrainConfig {
        epochs: 18,
        batch_size: 16,
        lr: 0.01,
        early_stop_loss: 0.08,
        seed: 5,
    };
    let (repo, _outcomes, mut models) =
        build_real_repository_keeping_models(&bundle, &variants, &cfg, &DeviceProfile::k80())
            .unwrap();
    let thresholds = tahoma::core::thresholds::calibrate_all(&repo, &[0.93]);
    let profiler = AnalyticProfiler::paper_testbed(Scenario::Ongoing);
    let cost = CostContext::build(&repo, &profiler);

    // The corpus mirrors the eval split; the store holds the gray model's
    // exact representation plus the RGB source frame — so one cascade
    // level serves via direct fetch and the other via the transcode
    // fallback.
    let source_rep = Representation::new(24, ColorMode::Rgb);
    let store = RepresentationStore::new(vec![rep_gray, source_rep]);
    let corpus = Corpus {
        items: bundle
            .eval
            .items
            .iter()
            .map(|it| tahoma::core::query::CorpusItem {
                id: it.id,
                location: "Detroit".into(),
                camera: 0,
                timestamp: 0,
                objects: if it.label { vec![kind] } else { Vec::new() },
                difficulty: it.difficulty,
            })
            .collect(),
    };
    for it in &bundle.eval.items {
        store.ingest(it.id, &it.image).unwrap();
    }
    let gray_model = repo
        .entries
        .iter()
        .position(|e| e.variant.input == rep_gray)
        .unwrap() as u16;
    let rgb_model = repo
        .entries
        .iter()
        .position(|e| e.variant.input == rep_rgb)
        .unwrap() as u16;

    // Construction identity: a batch through the scorer equals manual
    // fetch → standardize → `predict_proba_batch` packing, exactly.
    let mut input = Vec::new();
    let mut engine = tahoma::imagery::TranscodeEngine::new();
    for it in &corpus.items {
        let img = store.fetch(it.id, rep_gray, &mut engine).unwrap().unwrap();
        input.extend_from_slice(tahoma::imagery::transform::standardize(&img).data());
    }
    let expected = models[gray_model as usize].predict_proba_batch(&input, corpus.items.len());

    let mut scorer = NnBatchScorer::new(&store).with_source(source_rep);
    scorer.register_repository(&repo, models);
    let items: Vec<&tahoma::core::query::CorpusItem> = corpus.items.iter().collect();
    let mut got = Vec::new();
    scorer.score_batch(
        ModelId(gray_model as u32),
        tahoma::core::exec::ScorePack::standalone(&items),
        &mut got,
    );
    assert_eq!(got, expected, "batched NN scores mismatch manual packing");

    // End-to-end query: gray level via direct fetch, RGB terminal via the
    // transcode fallback. (Executor-vs-reference decision identity is
    // property-tested with batch-size-invariant scorers in
    // exec_proptests.rs; NN scores can differ in final-ulp rounding across
    // GEMM batch shapes, so here we assert the end-to-end semantics.)
    scorer.reset_stats();
    let cascade = Cascade::new(&[(gray_model, 0), (rgb_model, 0)]);
    let mut cascades = BTreeMap::new();
    cascades.insert(kind, cascade);
    let query = Query::parse("SELECT * FROM t WHERE contains_object(komondor)").unwrap();
    let processor = QueryProcessor::new(&repo, &thresholds, &cost);
    let result = processor
        .execute_batched(
            &query,
            &corpus,
            &cascades,
            &mut scorer,
            &ExecOptions::default(),
        )
        .unwrap();
    let rel = &result.relations[0];
    assert_eq!(rel.rows.len(), corpus.items.len());
    assert_eq!(
        rel.level_histogram.iter().sum::<u64>() as usize,
        corpus.items.len()
    );
    assert!(
        rel.accuracy > 0.55,
        "real-NN relation accuracy {} at chance",
        rel.accuracy
    );
    let stats = scorer.stats();
    assert!(stats.fetch_decode_s > 0.0 && stats.infer_s > 0.0 && stats.standardize_s > 0.0);
    assert!(
        stats.items_scored >= corpus.items.len() as u64,
        "every survivor scored at least once"
    );
    if rel.level_histogram[1] > 0 {
        assert!(
            stats.transcode_s > 0.0,
            "terminal level must have exercised the transcode fallback"
        );
    }

    // Shared-representation discount: a cascade reusing one representation
    // across levels materializes it once per item — the second level is
    // all cache hits when nothing decides early.
    let never = ThresholdTable {
        settings: vec![0.0],
        per_model: vec![vec![DecisionThresholds::never_decide()]; repo.len()],
    };
    let executor = VectorizedExecutor::new(&repo, &never, &cost);
    scorer.reset_stats();
    let shared = Cascade::new(&[(gray_model, 0), (gray_model, 0)]);
    let rel2 = executor
        .run_cascade_batched(kind, shared, &items, &mut scorer)
        .unwrap();
    assert_eq!(rel2.rows.len(), items.len());
    let stats2 = scorer.stats();
    assert_eq!(
        stats2.cache_hits,
        items.len() as u64,
        "every level-1 input should come from the shared-representation cache"
    );
}

#[test]
fn trained_weights_roundtrip_through_serialization() {
    use tahoma::nn::train::Example;
    use tahoma::nn::{serialize, Adam, CnnSpec, Shape, Trainer};
    // Train one tiny model on rendered data, save, reload, verify identical
    // predictions.
    let bundle = DatasetSpec::tiny(ObjectKind::Acorn, 16, 3).generate();
    let rep = Representation::new(16, ColorMode::Gray);
    let mut model = CnnSpec {
        input: Shape::new(1, 16, 16),
        conv_channels: vec![4],
        kernel: 3,
        dense_units: 8,
    }
    .build(1)
    .unwrap();
    let examples: Vec<Example> = bundle
        .train
        .items
        .iter()
        .take(60)
        .map(|it| Example {
            input: tahoma::imagery::transform::standardize(&rep.apply(&it.image).unwrap())
                .into_data(),
            label: it.label,
        })
        .collect();
    Trainer {
        epochs: 8,
        batch_size: 8,
        early_stop_loss: 0.05,
        seed: 4,
    }
    .train(&mut model, &examples, &mut Adam::new(0.01));
    let bytes = serialize::save(&model).unwrap();
    let mut reloaded = serialize::load(&bytes).unwrap();
    for ex in examples.iter().take(10) {
        assert_eq!(
            model.forward_logit(&ex.input),
            reloaded.forward_logit(&ex.input)
        );
    }
}
